//! Umbrella crate: re-exports every crate of the `amr-proxy-io` workspace.
//!
//! Downstream users can depend on this single crate; the workspace examples
//! and integration tests are hosted here.

pub use amr_mesh;
pub use amrproxy;
pub use hydro;
pub use io_engine;
pub use iosim;
pub use macsio;
pub use model;
pub use mpi_sim;
pub use plotfile;
