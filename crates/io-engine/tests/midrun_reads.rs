//! Mid-run reads: the scenario plane's io-engine contract.
//!
//! Phase programs interleave restart and analysis reads *with* the write
//! stream — a step is read back while later steps are still being
//! written. These tests pin that contract across the backend matrix:
//! reading step `s` between `end_step(s)` and `begin_step(s + 1)` (or
//! after later steps landed) returns exactly what a post-run read
//! returns, and never disturbs subsequent writes.

use io_engine::{BackendSpec, CodecSpec, IoBackend, Payload, Put, ReadSelection};
use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

fn backends() -> Vec<BackendSpec> {
    vec![
        BackendSpec::FilePerProcess,
        BackendSpec::Aggregated(2),
        BackendSpec::Deferred(1),
    ]
}

fn write_step(backend: &mut dyn IoBackend, step: u32, ntasks: u32) {
    backend.begin_step(step, "/plt");
    for task in 0..ntasks {
        for level in 0..2u32 {
            backend
                .put(Put {
                    key: IoKey { step, level, task },
                    kind: IoKind::Data,
                    path: format!("/plt/s{step}/L{level}/Cell_D_{task:05}"),
                    payload: Payload::Bytes(vec![(step as u8) ^ (task as u8); 96].into()),
                })
                .unwrap();
        }
    }
    backend.end_step().unwrap();
}

#[test]
fn midrun_read_matches_postrun_read_across_backends() {
    for spec in backends() {
        for codec in [CodecSpec::Identity, CodecSpec::Rle(2.0)] {
            // Run A: read step 1 mid-run, right before step 2 is written.
            let fs_a = MemFs::new();
            let tracker_a = IoTracker::new();
            let mut a = spec.build_with_codec(codec, &fs_a as &dyn Vfs, &tracker_a);
            write_step(a.as_mut(), 1, 4);
            let midrun = a
                .read_selection(1, "/plt", &ReadSelection::Level(1))
                .unwrap();
            write_step(a.as_mut(), 2, 4);
            a.close().unwrap();

            // Run B: identical writes, read step 1 only after the run.
            let fs_b = MemFs::new();
            let tracker_b = IoTracker::new();
            let mut b = spec.build_with_codec(codec, &fs_b as &dyn Vfs, &tracker_b);
            write_step(b.as_mut(), 1, 4);
            write_step(b.as_mut(), 2, 4);
            let postrun = b
                .read_selection(1, "/plt", &ReadSelection::Level(1))
                .unwrap();
            b.close().unwrap();

            let label = format!("{}/{}", spec.name(), codec.name());
            assert_eq!(
                midrun.chunks.len(),
                postrun.chunks.len(),
                "{label}: chunk count"
            );
            for (m, p) in midrun.chunks.iter().zip(&postrun.chunks) {
                assert_eq!(m.key, p.key, "{label}");
                assert_eq!(m.path, p.path, "{label}");
                assert_eq!(
                    m.payload.logical_len(),
                    p.payload.logical_len(),
                    "{label}: logical length"
                );
            }
            assert_eq!(
                midrun.stats.logical_bytes, postrun.stats.logical_bytes,
                "{label}: logical read volume is position-invariant"
            );
            assert_eq!(
                midrun.stats.bytes, postrun.stats.bytes,
                "{label}: physical read volume is position-invariant"
            );
            // The mid-run read must not disturb the write plane.
            assert_eq!(
                tracker_a.export(),
                tracker_b.export(),
                "{label}: writes invariant under read position"
            );
        }
    }
}

#[test]
fn every_step_stays_readable_while_later_steps_land() {
    for spec in backends() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut backend = spec.build(&fs as &dyn Vfs, &tracker);
        let mut logical_per_step = Vec::new();
        for step in 1..=3u32 {
            write_step(backend.as_mut(), step, 3);
            // After step `step` lands, every earlier step (and the new
            // one) reads back in full.
            for earlier in 1..=step {
                let read = backend.read_step(earlier, "/plt").unwrap();
                assert_eq!(
                    read.chunks.len(),
                    6,
                    "{}: step {earlier} after step {step}",
                    spec.name()
                );
                if earlier == step {
                    logical_per_step.push(read.stats.logical_bytes);
                }
            }
        }
        assert_eq!(logical_per_step, vec![576, 576, 576]);
        backend.close().unwrap();
    }
}

#[test]
fn midrun_read_of_account_only_steps_is_modeled() {
    // The oracle engine never materializes payloads; mid-run reads must
    // still return modeled chunks with exact physical accounting.
    for spec in backends() {
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let mut backend = spec.build(&fs as &dyn Vfs, &tracker);
        backend.begin_step(1, "/plt");
        backend
            .put(Put {
                key: IoKey {
                    step: 1,
                    level: 0,
                    task: 0,
                },
                kind: IoKind::Data,
                path: "/plt/s1/Cell_D_00000".to_string(),
                payload: Payload::Size(4096),
            })
            .unwrap();
        backend.end_step().unwrap();
        let read = backend.read_step(1, "/plt").unwrap();
        backend.begin_step(2, "/plt");
        backend
            .put(Put {
                key: IoKey {
                    step: 2,
                    level: 0,
                    task: 0,
                },
                kind: IoKind::Data,
                path: "/plt/s2/Cell_D_00000".to_string(),
                payload: Payload::Size(4096),
            })
            .unwrap();
        backend.end_step().unwrap();
        assert_eq!(read.stats.logical_bytes, 4096, "{}", spec.name());
        assert!(
            matches!(read.chunks[0].payload, Payload::Size(4096)),
            "{}: modeled chunk",
            spec.name()
        );
        backend.close().unwrap();
    }
}
