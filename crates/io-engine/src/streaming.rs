//! In-transit streaming backend: steps leave the node over the modeled
//! interconnect instead of through the storage plane.
//!
//! The pre-exascale pattern this reproduces is ADIOS2/SST-style
//! streaming (see "Accelerating WRF I/O with ADIOS2 and network-based
//! streaming", PAPERS.md): producers publish each output step to
//! consumer ranks as point-to-point transfers, and analysis reads are
//! served from the consumers' in-memory window — so an `analyze:SEL`
//! workload touches **zero physical read bytes**, while the tracker's
//! logical planes stay byte-identical to every storage backend.
//!
//! Three planes, kept strictly apart:
//!
//! * **logical** — every put is recorded in the tracker at its logical
//!   length, and window-served chunks are recorded in the read plane,
//!   exactly like `fpp`/`agg`/`deferred` (the backend-equivalence
//!   property suite pins this);
//! * **physical** — always zero: no files, no write/read requests, no
//!   storage bursts;
//! * **network** — a new priced column: shipped bytes cost
//!   [`NetworkModel::transfer_seconds`] on the simulated clock, plus a
//!   producer stall whenever the bounded consumer window is full
//!   (accounted like the deferred backend's `staging_wait`).
//!
//! The consumer window is a fluid model: the consumer drains at a fixed
//! byte rate while the producer pushes at link bandwidth. When the
//! window cap is reached, the producer is throttled to the consumer's
//! rate — the surplus push time is `window_stall`. Occupancy can never
//! exceed the cap by construction, and a consumer at least as fast as
//! the link never stalls the producer (the defaults).

use crate::backend::{
    unsupported_read, ChunkRead, EngineReport, IoBackend, Payload, Put, ReadStats, StepRead,
    StepStats, TrackerHandle,
};
use crate::fpp::{FileBuild, StepBuild};
use crate::selection::ReadSelection;
use mpi_sim::NetworkModel;
use std::collections::HashMap;
use std::io;

/// One shipped step as retained in the consumer window: the finished
/// files of the step (segments + chunk spans), never materialized.
type StepShip = Vec<(String, FileBuild)>;

/// The in-transit streaming backend (see module docs).
pub struct Streaming<'a> {
    tracker: TrackerHandle<'a>,
    net: NetworkModel,
    /// Window capacity in bytes (`u64::MAX` = unbounded).
    window_cap: u64,
    /// Consumer drain rate in bytes/s (`f64::INFINITY` = keeps up).
    consumer_rate: f64,
    cur: Option<StepBuild>,
    /// Shipped steps, retained for window-served analysis reads.
    window: HashMap<u32, StepShip>,
    /// Fluid window occupancy in bytes.
    occupancy: f64,
    peak_occupancy: f64,
    net_bytes: u64,
    net_seconds: f64,
    window_stall: f64,
    report: EngineReport,
}

impl<'a> Streaming<'a> {
    /// A streaming backend publishing over `net` into a consumer window
    /// of `window_cap` bytes (`None` = unbounded), drained at
    /// `consumer_rate` bytes/s (`None` = the consumer always keeps up).
    ///
    /// # Panics
    /// Panics when `window_cap` or `consumer_rate` is zero — a window
    /// that can hold nothing (or a consumer that never drains) deadlocks
    /// the producer by construction.
    pub fn new(
        tracker: impl Into<TrackerHandle<'a>>,
        net: NetworkModel,
        window_cap: Option<u64>,
        consumer_rate: Option<f64>,
    ) -> Self {
        if let Some(cap) = window_cap {
            assert!(cap > 0, "Streaming: zero-byte consumer window");
        }
        if let Some(rate) = consumer_rate {
            assert!(
                rate.is_finite() && rate > 0.0,
                "Streaming: non-positive consumer rate"
            );
        }
        Self {
            tracker: tracker.into(),
            net,
            window_cap: window_cap.unwrap_or(u64::MAX),
            consumer_rate: consumer_rate.unwrap_or(f64::INFINITY),
            cur: None,
            window: HashMap::new(),
            occupancy: 0.0,
            peak_occupancy: 0.0,
            net_bytes: 0,
            net_seconds: 0.0,
            window_stall: 0.0,
            report: EngineReport::default(),
        }
    }

    /// The configured window capacity in bytes (`None` = unbounded).
    pub fn window_cap(&self) -> Option<u64> {
        (self.window_cap != u64::MAX).then_some(self.window_cap)
    }

    /// Peak window occupancy over the run so far, in bytes — never
    /// exceeds the cap (pinned by the property suite).
    pub fn peak_window_bytes(&self) -> u64 {
        self.peak_occupancy.ceil() as u64
    }

    /// Total bytes shipped over the link so far.
    pub fn net_bytes(&self) -> u64 {
        self.net_bytes
    }

    /// Total link-transfer seconds so far.
    pub fn net_seconds(&self) -> f64 {
        self.net_seconds
    }

    /// Total producer stall on window back-pressure so far.
    pub fn window_stall(&self) -> f64 {
        self.window_stall
    }

    /// Ships `bytes` through the bounded window: returns
    /// `(transfer_seconds, stall_seconds)` and updates occupancy.
    ///
    /// Fluid model: the producer pushes at link bandwidth `b`; the
    /// consumer drains concurrently at rate `c`. With `c >= b` the
    /// window only empties — no stall. With `c < b` the window fills at
    /// rate `b - c` until the cap, after which the producer is
    /// throttled to `c`; the extra time past the unthrottled push is
    /// the `window_stall` (the exact analogue of the staged burst's
    /// `staging_wait = handoff - base`).
    fn ship(&mut self, bytes: u64) -> (f64, f64) {
        let b = self.net.link_bandwidth;
        let c = self.consumer_rate;
        let cap = if self.window_cap == u64::MAX {
            f64::INFINITY
        } else {
            self.window_cap as f64
        };
        let push = bytes as f64 / b;
        let transfer = self.net.transfer_seconds(bytes);
        let occ0 = self.occupancy;
        let (stall, occ_end, peak);
        if c >= b {
            // Consumer drains at least as fast as bytes arrive: the
            // window never grows past its starting occupancy.
            let consumed = (c * push).min(occ0 + bytes as f64);
            occ_end = occ0 + bytes as f64 - consumed;
            peak = occ0.max(occ_end);
            stall = 0.0;
        } else {
            let free = cap - occ0;
            let t_fill = free / (b - c);
            if push <= t_fill {
                stall = 0.0;
                occ_end = occ0 + (b - c) * push;
                peak = occ_end;
            } else {
                // Window full mid-push: the rest trickles at the
                // consumer's rate.
                let sent_at_fill = b * t_fill;
                let throttled = (bytes as f64 - sent_at_fill) / c;
                stall = t_fill + throttled - push;
                occ_end = cap;
                peak = cap;
            }
        }
        self.occupancy = occ_end;
        self.peak_occupancy = self.peak_occupancy.max(peak);
        self.net_bytes += bytes;
        self.net_seconds += transfer;
        self.window_stall += stall;
        (transfer, stall)
    }
}

impl IoBackend for Streaming<'_> {
    fn name(&self) -> String {
        "streaming".to_string()
    }

    fn in_transit(&self) -> bool {
        true
    }

    fn attach_network(&mut self, net: NetworkModel) {
        self.net = net;
    }

    fn begin_step(&mut self, step: u32, _container: &str) {
        assert!(self.cur.is_none(), "begin_step: step already open");
        self.cur = Some(StepBuild::new(step));
    }

    fn create_dir_all(&mut self, _path: &str) -> io::Result<()> {
        // Streamed steps have no filesystem footprint; directories are
        // a storage-plane concept.
        Ok(())
    }

    fn put(&mut self, put: Put) -> io::Result<()> {
        let cur = self.cur.as_mut().expect("put: no open step");
        self.tracker
            .record(put.key, put.kind, put.payload.logical_len());
        cur.push(put);
        Ok(())
    }

    fn end_step(&mut self) -> io::Result<StepStats> {
        let cur = self.cur.take().expect("end_step: no open step");
        let step = cur.step;
        let mut stats = StepStats {
            step,
            ..StepStats::default()
        };
        let files = cur.into_files();
        let mut ship_bytes = 0u64;
        for (_, build) in &files {
            stats.logical_bytes += build.logical_bytes;
            ship_bytes += build.bytes;
        }
        let (transfer, stall) = self.ship(ship_bytes);
        stats.net_bytes = ship_bytes;
        stats.net_seconds = transfer;
        stats.window_stall = stall;
        // The storage plane stays untouched: no files, no bytes, no
        // write requests to burst-time.
        self.window.insert(step, files);
        self.report.steps += 1;
        self.report.logical_bytes += stats.logical_bytes;
        Ok(stats)
    }

    fn read_selection(
        &mut self,
        step: u32,
        _container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        assert!(self.cur.is_none(), "read_step: step still open");
        let ship = self
            .window
            .get(&step)
            .ok_or_else(|| unsupported_read(&self.name(), step, sel, "step was never streamed"))?;
        let mut out = StepRead {
            stats: ReadStats {
                step,
                ..ReadStats::default()
            },
            ..StepRead::default()
        };
        for (path, build) in ship {
            // Materialized puts map 1:1 onto retained segments, in
            // submission order; account-only files have spans only.
            let mut seg = 0usize;
            for span in &build.chunks {
                let payload = if build.account_only {
                    Payload::Size(span.logical_len)
                } else {
                    let data = build.segs[seg].clone();
                    seg += 1;
                    if span.len == span.logical_len {
                        Payload::Bytes(data)
                    } else {
                        Payload::Encoded {
                            data,
                            logical: span.logical_len,
                        }
                    }
                };
                if !sel.matches(&span.key, path) {
                    continue;
                }
                // Window-served: logical read plane recorded, physical
                // plane untouched (no files, no bytes, no requests).
                self.tracker
                    .record_read(span.key, span.kind, span.logical_len);
                out.stats.logical_bytes += span.logical_len;
                out.chunks.push(ChunkRead {
                    key: span.key,
                    kind: span.kind,
                    path: path.clone(),
                    payload,
                });
            }
        }
        Ok(out)
    }

    fn close(&mut self) -> io::Result<EngineReport> {
        assert!(self.cur.is_none(), "close: step still open");
        Ok(self.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{IoKey, IoKind, IoTracker};

    fn put(step: u32, level: u32, task: u32, path: &str, data: &[u8]) -> Put {
        Put {
            key: IoKey { step, level, task },
            kind: IoKind::Data,
            path: path.to_string(),
            payload: Payload::Bytes(data.to_vec().into()),
        }
    }

    #[test]
    fn ships_bytes_over_the_link_with_zero_physical_footprint() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        b.begin_step(1, "/");
        b.put(put(1, 0, 0, "/f0", b"aaaa")).unwrap();
        b.put(put(1, 1, 1, "/f1", b"bb")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 0, "no physical files");
        assert_eq!(stats.bytes, 0, "no physical bytes");
        assert!(stats.requests.is_empty(), "no storage bursts");
        assert_eq!(stats.net_bytes, 6);
        assert!((stats.net_seconds - 6.0 / 1e6).abs() < 1e-12);
        assert_eq!(stats.window_stall, 0.0);
        assert_eq!(stats.logical_bytes, 6);
        // Tracker write plane identical to a storage backend's.
        assert_eq!(tracker.total_bytes(), 6);
    }

    #[test]
    fn window_reads_match_storage_semantics_with_zero_physical_bytes() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        b.begin_step(1, "/");
        b.put(put(1, 0, 0, "/group", b"r0r0")).unwrap();
        b.put(put(1, 0, 1, "/group", b"r1")).unwrap();
        b.put(put(1, 1, 2, "/own", b"solo")).unwrap();
        b.end_step().unwrap();

        let read = b.read_step(1, "/").unwrap();
        assert_eq!(read.chunks.len(), 3);
        assert_eq!(read.logical_content("/group"), Some(b"r0r0r1".to_vec()));
        assert_eq!(read.logical_content("/own"), Some(b"solo".to_vec()));
        assert_eq!(read.stats.bytes, 0, "window-served: zero physical");
        assert_eq!(read.stats.files, 0);
        assert!(read.stats.requests.is_empty());
        assert_eq!(read.stats.logical_bytes, 10);
        assert_eq!(tracker.total_read_bytes(), 10);

        let level = b.read_selection(1, "/", &ReadSelection::Level(1)).unwrap();
        assert_eq!(level.chunks.len(), 1);
        assert_eq!(level.logical_content("/own"), Some(b"solo".to_vec()));
        assert_eq!(level.stats.bytes, 0);
    }

    #[test]
    fn slow_consumer_fills_the_window_and_stalls_the_producer() {
        let tracker = IoTracker::new();
        // 1 MB/s link, 10-byte window, 10 B/s consumer: a 100-byte step
        // blows straight past the cap.
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), Some(10), Some(10.0));
        b.begin_step(1, "/");
        b.put(put(1, 0, 0, "/f", &[0u8; 100])).unwrap();
        let stats = b.end_step().unwrap();
        assert!(stats.window_stall > 0.0, "producer must stall");
        assert!(b.peak_window_bytes() <= 10, "cap never exceeded");
        assert!((b.occupancy - 10.0).abs() < 1e-9, "window left full");

        // The unbounded window never stalls.
        let t2 = IoTracker::new();
        let mut free = Streaming::new(&t2, NetworkModel::ideal(1e6), None, Some(10.0));
        free.begin_step(1, "/");
        free.put(put(1, 0, 0, "/f", &[0u8; 100])).unwrap();
        let free_stats = free.end_step().unwrap();
        assert_eq!(free_stats.window_stall, 0.0);
        assert_eq!(free_stats.net_seconds, stats.net_seconds, "same transfer");
    }

    #[test]
    fn fast_consumer_never_stalls_and_drains_the_window() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), Some(1000), Some(2e6));
        for step in 1..=3 {
            b.begin_step(step, "/");
            b.put(put(step, 0, 0, &format!("/s{step}"), &[7u8; 500]))
                .unwrap();
            let stats = b.end_step().unwrap();
            assert_eq!(stats.window_stall, 0.0);
        }
        assert_eq!(b.occupancy, 0.0, "consumer kept up");
        assert!(b.peak_window_bytes() <= 1000);
    }

    #[test]
    fn unstreamed_step_is_a_typed_unsupported_error() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        let err = b
            .read_selection(9, "/", &ReadSelection::Level(1))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        let msg = err.to_string();
        assert!(msg.contains("'streaming'"), "{msg}");
        assert!(msg.contains("level:1"), "{msg}");
    }

    #[test]
    fn account_only_puts_stream_as_modeled_sizes() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        b.begin_step(2, "/");
        b.put(Put {
            key: IoKey {
                step: 2,
                level: 1,
                task: 0,
            },
            kind: IoKind::Data,
            path: "/big".into(),
            payload: Payload::Size(1 << 20),
        })
        .unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.net_bytes, 1 << 20, "modeled bytes still ship");
        assert_eq!(stats.bytes, 0);
        let read = b.read_step(2, "/").unwrap();
        assert!(matches!(read.chunks[0].payload, Payload::Size(n) if n == 1 << 20));
        assert_eq!(read.stats.bytes, 0);
        assert_eq!(tracker.total_read_bytes(), 1 << 20);
    }

    #[test]
    fn close_reports_logical_totals_and_zero_physical() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        for step in 1..=3 {
            b.begin_step(step, "/");
            b.put(put(step, 0, 0, &format!("/s{step}"), b"xy")).unwrap();
            b.end_step().unwrap();
        }
        let report = b.close().unwrap();
        assert_eq!(report.steps, 3);
        assert_eq!(report.files, 0);
        assert_eq!(report.bytes, 0);
        assert_eq!(report.logical_bytes, 6);
        assert_eq!(b.net_bytes(), 6);
    }

    #[test]
    fn attach_network_swaps_the_link() {
        let tracker = IoTracker::new();
        let mut b = Streaming::new(&tracker, NetworkModel::ideal(1e6), None, None);
        b.attach_network(NetworkModel::ideal(2e6));
        b.begin_step(1, "/");
        b.put(put(1, 0, 0, "/f", &[0u8; 100])).unwrap();
        let stats = b.end_step().unwrap();
        assert!((stats.net_seconds - 100.0 / 2e6).abs() < 1e-15);
    }
}
