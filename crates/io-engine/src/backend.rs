//! The backend trait and the types flowing through it.

use crate::selection::ReadSelection;
use bytes::Bytes;
use iosim::{IoKey, IoKind, IoTracker, ReadRequest, Vfs, WriteRequest};
use mpi_sim::NetworkModel;
use std::io;
use std::sync::Arc;

/// Payload of one [`Put`]: real bytes, or a size for account-only runs
/// (the oracle engine sizes terabyte-scale dumps without materializing
/// them; backends then skip physical writes but keep layout, file-count,
/// and request accounting identical).
///
/// Materialized content is held as shared, zero-copy [`Bytes`]: cloning
/// a payload or slicing a chunk back out of a subfile shares the same
/// allocation, so stage → backend → filesystem → read-back never
/// re-copies the buffer (the throughput plane's ownership contract; see
/// `docs/MODEL.md`).
///
/// The `Encoded*` variants are produced by the compression stage and
/// carry **two** byte counts: the *physical* size (what reaches storage,
/// [`Payload::len`]) and the *logical* size the workload produced
/// ([`Payload::logical_len`]). Trackers always account logical bytes, so
/// the `(step, level, task)` samples are codec-invariant; file sizes,
/// write requests, and burst timing use physical bytes.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Materialized content to write (shared, zero-copy).
    Bytes(Bytes),
    /// Exact byte count of content that is not materialized.
    Size(u64),
    /// Compressed materialized content plus its logical byte count.
    Encoded {
        /// The encoded bytes (what is physically written), shared
        /// zero-copy across layer crossings.
        data: Bytes,
        /// Pre-compression byte count.
        logical: u64,
    },
    /// Compressed account-only payload: physical and logical byte counts.
    EncodedSize {
        /// Modeled physical byte count.
        physical: u64,
        /// Pre-compression byte count.
        logical: u64,
    },
}

impl Payload {
    /// Physical payload length in bytes (what reaches storage).
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Size(n) => *n,
            Payload::Encoded { data, .. } => data.len() as u64,
            Payload::EncodedSize { physical, .. } => *physical,
        }
    }

    /// Logical (pre-compression) length in bytes — what the tracker
    /// records. Equals [`Payload::len`] for uncompressed payloads.
    pub fn logical_len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Size(n) => *n,
            Payload::Encoded { logical, .. } => *logical,
            Payload::EncodedSize { logical, .. } => *logical,
        }
    }

    /// True when the payload is zero physical bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One logical write submitted to a backend.
#[derive(Clone, Debug)]
pub struct Put {
    /// Tracker key: `(output step, AMR level, task)`.
    pub key: IoKey,
    /// Data or metadata classification.
    pub kind: IoKind,
    /// Logical file path the producer would write N-to-N.
    pub path: String,
    /// The bytes (or their size).
    pub payload: Payload,
}

/// One logical chunk read back from a step — the read-side mirror of a
/// [`Put`]. The payload is the *logical* view of the chunk:
///
/// * [`Payload::Bytes`] — the chunk's logical bytes (raw on the wire, or
///   already decoded by a [`crate::CompressionStage`]);
/// * [`Payload::Encoded`] — the physical (encoded) bytes plus the logical
///   length, as returned by a bare backend under a chunk that a
///   compression stage encoded (the stage decodes these);
/// * [`Payload::Size`] — logical length only, for account-only writes
///   (nothing was materialized; the read is modeled).
#[derive(Clone, Debug)]
pub struct ChunkRead {
    /// Tracker key the chunk was written under.
    pub key: IoKey,
    /// Data or metadata classification.
    pub kind: IoKind,
    /// Logical file path the producer wrote.
    pub path: String,
    /// The chunk's logical payload (see above).
    pub payload: Payload,
}

/// Physical accounting of one [`IoBackend::read_step`] call, mirroring
/// [`StepStats`] on the read side.
#[derive(Clone, Debug, Default)]
pub struct ReadStats {
    /// The step that was read back.
    pub step: u32,
    /// Physical files opened.
    pub files: u64,
    /// Physical bytes fetched from storage (encoded sizes, index tables,
    /// sidecars).
    pub bytes: u64,
    /// Logical bytes delivered to the workload.
    pub logical_bytes: u64,
    /// Modeled codec CPU seconds spent decoding (0 without a compression
    /// stage).
    pub codec_seconds: f64,
    /// Read requests for burst-timing simulation: one per maximal
    /// contiguous byte range fetched (a seek + transfer). Whole-file
    /// restart reads issue one request per file; selective reads over
    /// scattered layouts issue one per matched range, so contiguity is
    /// a priced quantity.
    pub requests: Vec<ReadRequest>,
}

/// Everything [`IoBackend::read_step`] returns: the logical chunks plus
/// the physical read accounting.
#[derive(Clone, Debug, Default)]
pub struct StepRead {
    /// Chunks of the step. Order groups chunks of one logical path in
    /// their original submission order (so concatenating a path's chunk
    /// payloads reconstructs the path's logical content).
    pub chunks: Vec<ChunkRead>,
    /// Physical read accounting.
    pub stats: ReadStats,
}

impl StepRead {
    /// Concatenated logical bytes of one path, when every chunk of the
    /// path is materialized and decoded (`None` as soon as one chunk is
    /// account-only or still encoded).
    pub fn logical_content(&self, path: &str) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        let mut seen = false;
        for c in self.chunks.iter().filter(|c| c.path == path) {
            seen = true;
            match &c.payload {
                Payload::Bytes(b) => out.extend_from_slice(b),
                _ => return None,
            }
        }
        seen.then_some(out)
    }

    /// Sorted unique logical paths of the step.
    pub fn paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.chunks.iter().map(|c| c.path.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Per-step outcome returned by [`IoBackend::end_step`].
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// The step these stats describe.
    pub step: u32,
    /// Physical files created this step.
    pub files: u64,
    /// Physical bytes written this step (payloads + backend overhead).
    pub bytes: u64,
    /// Logical (pre-compression) payload bytes this step — the tracker's
    /// view. Equals `bytes - overhead_bytes` without compression.
    pub logical_bytes: u64,
    /// Backend bookkeeping bytes (aggregation index tables, compression
    /// sidecars); not part of the workload's tracker accounting.
    pub overhead_bytes: u64,
    /// Modeled codec CPU seconds spent compressing this step's payloads
    /// (0 without a compression stage); charged as application compute
    /// time by the burst scheduler.
    pub codec_seconds: f64,
    /// Write requests for burst-timing simulation, in write order.
    pub requests: Vec<WriteRequest>,
    /// Bytes shipped over the modeled interconnect instead of through
    /// storage this step (0 for storage-backed backends) — the
    /// in-transit plane's priced column.
    pub net_bytes: u64,
    /// Link-transfer seconds for `net_bytes` on the simulated clock
    /// (latency + bytes/bandwidth; 0 for storage-backed backends).
    pub net_seconds: f64,
    /// Producer seconds stalled on consumer-window back-pressure this
    /// step — accounted like `staging_wait`, never negative.
    pub window_stall: f64,
}

/// Whole-run totals returned by [`IoBackend::close`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Steps completed.
    pub steps: u32,
    /// Physical files created.
    pub files: u64,
    /// Physical bytes written (payloads + overhead).
    pub bytes: u64,
    /// Logical (pre-compression) payload bytes across the run.
    pub logical_bytes: u64,
    /// Backend bookkeeping bytes.
    pub overhead_bytes: u64,
}

/// A filesystem handle a backend can hold either borrowed (synchronous
/// backends) or shared (backends that flush from worker threads).
#[derive(Clone)]
pub enum VfsHandle<'a> {
    /// Borrowed from the caller; writes happen on the calling thread.
    Borrowed(&'a dyn Vfs),
    /// Shared ownership; writes may happen on drain threads.
    Shared(Arc<dyn Vfs>),
}

impl VfsHandle<'_> {
    /// Creates a directory and all parents.
    pub fn create_dir_all(&self, path: &str) -> io::Result<()> {
        match self {
            VfsHandle::Borrowed(v) => v.create_dir_all(path),
            VfsHandle::Shared(v) => v.create_dir_all(path),
        }
    }

    /// Creates/overwrites a file, returning the byte count.
    pub fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        match self {
            VfsHandle::Borrowed(v) => v.write_file(path, data),
            VfsHandle::Shared(v) => v.write_file(path, data),
        }
    }

    /// Creates/overwrites a file from ordered segments without
    /// flattening them first — the streaming write path (see
    /// [`Vfs::write_file_concat`]).
    pub fn write_file_concat(&self, path: &str, segs: &[Bytes]) -> io::Result<u64> {
        match self {
            VfsHandle::Borrowed(v) => v.write_file_concat(path, segs),
            VfsHandle::Shared(v) => v.write_file_concat(path, segs),
        }
    }

    /// Retained content as a shared, zero-copy [`Bytes`] handle (see
    /// [`Vfs::read_file_shared`]).
    pub fn read_file_shared(&self, path: &str) -> Option<Bytes> {
        match self {
            VfsHandle::Borrowed(v) => v.read_file_shared(path),
            VfsHandle::Shared(v) => v.read_file_shared(path),
        }
    }

    /// Full content of a file when available (possibly a retained
    /// prefix; see [`iosim::MemFs::with_retention`]).
    pub fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        match self {
            VfsHandle::Borrowed(v) => v.read_file(path),
            VfsHandle::Shared(v) => v.read_file(path),
        }
    }

    /// Size of a file, or `None` when absent.
    pub fn file_size(&self, path: &str) -> Option<u64> {
        match self {
            VfsHandle::Borrowed(v) => v.file_size(path),
            VfsHandle::Shared(v) => v.file_size(path),
        }
    }

    /// Exact full content of a file: `None` when the file is absent *or*
    /// its retained content is truncated below its size (content-limited
    /// in-memory filesystems) — readers then fall back to modeled reads.
    pub fn read_file_exact(&self, path: &str) -> Option<Vec<u8>> {
        let size = self.file_size(path)?;
        let content = self.read_file(path)?;
        (content.len() as u64 == size).then_some(content)
    }

    /// [`VfsHandle::read_file_exact`], but zero-copy: the returned
    /// [`Bytes`] shares the filesystem's stored buffer, and chunk
    /// sub-slices of it share it too.
    pub fn read_file_exact_shared(&self, path: &str) -> Option<Bytes> {
        let size = self.file_size(path)?;
        let content = self.read_file_shared(path)?;
        (content.len() as u64 == size).then_some(content)
    }

    /// The shared handle, when this is one.
    pub fn shared(&self) -> Option<Arc<dyn Vfs>> {
        match self {
            VfsHandle::Borrowed(_) => None,
            VfsHandle::Shared(v) => Some(Arc::clone(v)),
        }
    }
}

impl<'a> From<&'a dyn Vfs> for VfsHandle<'a> {
    fn from(v: &'a dyn Vfs) -> Self {
        VfsHandle::Borrowed(v)
    }
}

impl<'a> From<Arc<dyn Vfs>> for VfsHandle<'a> {
    fn from(v: Arc<dyn Vfs>) -> Self {
        VfsHandle::Shared(v)
    }
}

/// A tracker handle, borrowed or shared (mirrors [`VfsHandle`]).
#[derive(Clone)]
pub enum TrackerHandle<'a> {
    /// Borrowed from the caller.
    Borrowed(&'a IoTracker),
    /// Shared ownership.
    Shared(Arc<IoTracker>),
}

impl TrackerHandle<'_> {
    /// Records bytes for a key.
    pub fn record(&self, key: IoKey, kind: IoKind, bytes: u64) {
        match self {
            TrackerHandle::Borrowed(t) => t.record(key, kind, bytes),
            TrackerHandle::Shared(t) => t.record(key, kind, bytes),
        }
    }

    /// Records bytes read back for a key (the tracker's read plane).
    pub fn record_read(&self, key: IoKey, kind: IoKind, bytes: u64) {
        match self {
            TrackerHandle::Borrowed(t) => t.record_read(key, kind, bytes),
            TrackerHandle::Shared(t) => t.record_read(key, kind, bytes),
        }
    }
}

impl<'a> From<&'a IoTracker> for TrackerHandle<'a> {
    fn from(t: &'a IoTracker) -> Self {
        TrackerHandle::Borrowed(t)
    }
}

impl<'a> From<Arc<IoTracker>> for TrackerHandle<'a> {
    fn from(t: Arc<IoTracker>) -> Self {
        TrackerHandle::Shared(t)
    }
}

/// A pluggable write path: producers open a step, submit [`Put`]s, and
/// close the step; the backend decides the physical file layout, performs
/// (or stages) the writes, and reports the requests to time.
///
/// Contract shared by all implementations:
///
/// * every put is recorded in the tracker with its own key/kind and its
///   **logical** length ([`Payload::logical_len`]), so `(step, level,
///   task)` byte totals are backend- and codec-invariant;
/// * physical accounting (file sizes, [`WriteRequest::bytes`], step and
///   run byte totals) uses [`Payload::len`] — what actually reaches
///   storage after any compression stage;
/// * `end_step` returns one [`WriteRequest`] per physical file created
///   for the step, in write order;
/// * `close` flushes anything still staged and returns run totals.
pub trait IoBackend: Send {
    /// Short human-readable backend name (e.g. `"fpp"`, `"agg:4"`).
    fn name(&self) -> String;

    /// True when the backend drains asynchronously, overlapping the next
    /// compute phase (consumed by `iosim`'s burst scheduler).
    fn overlapped(&self) -> bool {
        false
    }

    /// True when the backend ships steps over the modeled interconnect
    /// instead of through storage (in-transit streaming). Wrapping
    /// stages consult this: a [`crate::CompressionStage`] over an
    /// in-transit backend keeps its sidecar out of the storage plane,
    /// so streamed runs touch zero physical bytes end to end.
    fn in_transit(&self) -> bool {
        false
    }

    /// Replaces the backend's interconnect link (no-op for
    /// storage-backed backends). The fabric uses this to hand streamed
    /// tenants their fair share of a shared link the way stored tenants
    /// share servers; wrappers delegate to their inner backend.
    fn attach_network(&mut self, net: NetworkModel) {
        let _ = net;
    }

    /// Opens a step. `container` is the logical directory of the dump
    /// (e.g. the plotfile directory, or `"/"` for MACSio's flat layout);
    /// aggregating backends place their subfiles under it.
    fn begin_step(&mut self, step: u32, container: &str);

    /// Creates a directory through the backend's filesystem.
    fn create_dir_all(&mut self, path: &str) -> io::Result<()>;

    /// Submits one logical write to the open step.
    fn put(&mut self, put: Put) -> io::Result<()>;

    /// Closes the step: materializes (or stages) the physical files and
    /// returns what was written.
    fn end_step(&mut self) -> io::Result<StepStats>;

    /// Reads back every chunk written for `step` under `container` — the
    /// restart path. Exactly `read_selection` with
    /// [`ReadSelection::Full`]; see there for the contract.
    fn read_step(&mut self, step: u32, container: &str) -> io::Result<StepRead> {
        self.read_selection(step, container, &ReadSelection::Full)
    }

    /// Reads back the chunks of `step` under `container` that belong to
    /// `sel` — the restart/analysis path, generalized over a
    /// [`ReadSelection`]. Callable any time after the step's `end_step`
    /// (no step may be open). Contract shared by all implementations:
    ///
    /// * the returned chunks are exactly the chunks of a full-step read
    ///   for which [`ReadSelection::matches`] holds (on the key the
    ///   chunk was written under and its logical path), in the backend's
    ///   layout order — pinned by property tests across the backend ×
    ///   codec × layout cube;
    /// * chunks carry **logical** payloads: for materialized writes
    ///   without a compression stage, reading back a written chunk
    ///   returns its bytes exactly; with a stage, the stage decodes
    ///   through its codec before returning;
    /// * account-only writes read back as [`Payload::Size`] (modeled
    ///   read, physical request accounting intact);
    /// * every *returned* chunk is recorded in the tracker's *read*
    ///   plane at its logical length, so read totals are backend- and
    ///   codec-invariant like the write totals;
    /// * backends with staged/deferred writes barrier any in-flight
    ///   drain first (read-after-write consistency);
    /// * `stats.requests` holds one [`ReadRequest`] per maximal
    ///   contiguous byte range fetched (whole-file for full reads), for
    ///   `simulate_read_burst` timing. Physical accounting
    ///   is layout-honest: coalesced per-path files are seeked through
    ///   the retained manifest (only matched spans are fetched), while
    ///   the aggregated layout always fetches its whole per-step index
    ///   blob before seeking subfiles — the write-optimized-layout
    ///   penalty the `reorg` module exists to remove. A selection that
    ///   matches nothing fetches no data (index-bearing layouts still
    ///   pay the index fetch that discovered the emptiness).
    ///
    /// The default errors with `Unsupported` so write-only adapters keep
    /// compiling.
    fn read_selection(
        &mut self,
        step: u32,
        container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        let _ = container;
        Err(unsupported_read(
            &self.name(),
            step,
            sel,
            "backend has no read path",
        ))
    }

    /// Flushes staged work and returns run totals.
    fn close(&mut self) -> io::Result<EngineReport>;
}

/// The typed error every backend returns for a selection it cannot
/// serve: [`io::ErrorKind::Unsupported`], naming the backend, the step,
/// the selection, and the reason. One constructor so the driver's
/// `analyze:SEL` error path reads identically across the whole backend
/// matrix (and so tests can pin the shape without string drift).
pub fn unsupported_read(backend: &str, step: u32, sel: &ReadSelection, why: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!(
            "backend '{backend}' cannot serve read selection '{}' for step {step}: {why}",
            sel.name()
        ),
    )
}
