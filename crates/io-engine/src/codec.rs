//! In-situ compression codecs: the data-reduction axis of the engine.
//!
//! AMRIC (Wang et al.) shows in-situ compression of AMR field data is the
//! highest-leverage way to shrink plotfile I/O volume without changing the
//! write topology, and Hercule treats compression as a first-class axis of
//! the I/O stack. A [`Codec`] transforms the *logical* bytes a workload
//! produces into the *physical* bytes a backend ships to storage:
//!
//! * [`Identity`] — pass-through; physical == logical.
//! * [`Rle`] — lossless PackBits-style run-length coding of the raw byte
//!   stream. Real payloads are actually encoded (with a raw fallback when
//!   the data does not compress); account-only payloads use a modeled
//!   ratio, since run lengths cannot be known from a size alone.
//! * [`LossyQuant`] — block-wise lossy quantization of `f64` fields: each
//!   block of values is reduced to a `(min, scale)` header plus `bits`
//!   packed bits per value (the AMRIC-style error-bounded reduction).
//!   The encoded size is a pure function of the logical size, so the
//!   account-only oracle path and the materialized path agree exactly.
//!   Quantization precision can be overridden per AMR level and per field
//!   (path substring), modeling per-level/per-field error bounds.
//!
//! Codecs also carry a modeled CPU cost ([`Codec::cpu_ns_per_byte`], per
//! *logical* byte) which the burst scheduler charges as application
//! compute time before each dump drains — compression trades CPU for wire
//! bytes, and both sides of that trade are simulated.

use crate::backend::Payload;
use iosim::IoKind;
use serde::{Deserialize, Serialize};

/// Everything a codec may condition on when encoding one put.
#[derive(Clone, Copy, Debug)]
pub struct CodecContext<'a> {
    /// AMR refinement level of the put (`0` for MACSio).
    pub level: u32,
    /// Data or metadata classification.
    pub kind: IoKind,
    /// Logical file path of the put (field-specific overrides match on
    /// path substrings).
    pub path: &'a str,
}

/// A compression codec: maps logical payloads to physical payloads.
///
/// Contract shared by all implementations:
///
/// * `encode` never returns more bytes than it was given (implementations
///   with an expanding worst case must fall back to the raw input);
/// * `encoded_size` is the exact size `encode` would produce whenever that
///   size is a pure function of the input length, and a *modeled* size
///   otherwise — in both cases `encoded_size(n) <= n`;
/// * `decode` inverts `encode` given the original logical length and the
///   same context: byte-exact for lossless codecs, a
///   `logical_len`-byte reconstruction within the error bound for lossy
///   ones — and `encode(decode(y)) == y` either way (decode/re-encode is
///   a fixed point);
/// * `cpu_ns_per_byte` is charged per **logical** byte, on both the
///   encode (write) and decode (restart read) sides.
///
/// Implementations must be `Sync`: the compression stage's parallel
/// encode mode shares one codec across rayon workers (per-chunk encode
/// is a pure function of the chunk and its context).
pub trait Codec: Send + Sync {
    /// Short human-readable codec name (e.g. `"rle:2"`, `"quant:8"`).
    fn name(&self) -> String;

    /// True for the pass-through codec (lets callers skip staging).
    fn is_identity(&self) -> bool {
        false
    }

    /// True when `decode(encode(x)) == x` byte-for-byte.
    fn is_lossless(&self) -> bool {
        true
    }

    /// Encodes materialized bytes. Must not expand.
    fn encode(&self, data: &[u8], ctx: &CodecContext<'_>) -> Vec<u8>;

    /// Decodes an encoded stream back to `logical_len` logical bytes
    /// (the length is the reader's record from the sidecar/index — lossy
    /// block formats are not self-delimiting).
    fn decode(&self, data: &[u8], logical_len: u64, ctx: &CodecContext<'_>) -> Vec<u8>;

    /// Physical size for a logical size (exact where derivable, modeled
    /// otherwise). Must satisfy `encoded_size(n, ctx) <= n`.
    fn encoded_size(&self, logical: u64, ctx: &CodecContext<'_>) -> u64;

    /// Modeled CPU cost per logical byte, in nanoseconds.
    fn cpu_ns_per_byte(&self) -> f64;
}

// --------------------------------------------------------------------------
// Identity

/// The pass-through codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl Codec for Identity {
    fn name(&self) -> String {
        "identity".to_string()
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn encode(&self, data: &[u8], _ctx: &CodecContext<'_>) -> Vec<u8> {
        data.to_vec()
    }

    fn decode(&self, data: &[u8], _logical_len: u64, _ctx: &CodecContext<'_>) -> Vec<u8> {
        data.to_vec()
    }

    fn encoded_size(&self, logical: u64, _ctx: &CodecContext<'_>) -> u64 {
        logical
    }

    fn cpu_ns_per_byte(&self) -> f64 {
        0.0
    }
}

// --------------------------------------------------------------------------
// Rle

/// Lossless PackBits-style run-length coding.
///
/// Control byte `n`: `0..=127` means `n + 1` literal bytes follow;
/// `129..=255` means the next byte repeats `257 - n` times; `128` is
/// unused. Worst case expands by 1/128 — the compression stage falls back
/// to the raw payload in that case, so physical bytes never exceed
/// logical bytes.
#[derive(Clone, Copy, Debug)]
pub struct Rle {
    /// Modeled compression ratio for account-only payloads (> 1).
    pub modeled_ratio: f64,
    /// Modeled CPU cost per logical byte (ns).
    pub cpu_ns: f64,
}

impl Default for Rle {
    fn default() -> Self {
        Self {
            modeled_ratio: DEFAULT_RLE_RATIO,
            cpu_ns: 0.8,
        }
    }
}

impl Rle {
    /// An RLE codec with the given modeled ratio for size-only payloads.
    pub fn new(modeled_ratio: f64) -> Self {
        assert!(modeled_ratio >= 1.0, "Rle: modeled ratio must be >= 1");
        Self {
            modeled_ratio,
            ..Self::default()
        }
    }

    /// Decodes a PackBits stream (tests and readers).
    pub fn decode(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut i = 0;
        while i < data.len() {
            let ctl = data[i];
            i += 1;
            if ctl <= 127 {
                let n = ctl as usize + 1;
                out.extend_from_slice(&data[i..i + n]);
                i += n;
            } else if ctl >= 129 {
                let n = 257 - ctl as usize;
                out.extend(std::iter::repeat_n(data[i], n));
                i += 1;
            }
        }
        out
    }
}

impl Codec for Rle {
    fn name(&self) -> String {
        format!("rle:{}", self.modeled_ratio)
    }

    fn encode(&self, data: &[u8], _ctx: &CodecContext<'_>) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 2);
        let mut i = 0;
        while i < data.len() {
            // Measure the run starting at i (capped at 128).
            let b = data[i];
            let mut run = 1usize;
            while run < 128 && i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            if run >= 3 {
                out.push((257 - run) as u8);
                out.push(b);
                i += run;
            } else {
                // Literal stretch: until the next run of >= 3 (max 128).
                // The first position can never start such a run (the outer
                // measurement just found run < 3 here), so the loop always
                // emits at least one literal byte.
                let start = i;
                let mut len = 0usize;
                while len < 128 && i < data.len() {
                    let c = data[i];
                    let mut r = 1usize;
                    while r < 3 && i + r < data.len() && data[i + r] == c {
                        r += 1;
                    }
                    if r >= 3 {
                        break;
                    }
                    i += 1;
                    len += 1;
                }
                out.push((len - 1) as u8);
                out.extend_from_slice(&data[start..start + len]);
            }
        }
        out
    }

    fn decode(&self, data: &[u8], logical_len: u64, _ctx: &CodecContext<'_>) -> Vec<u8> {
        let out = Rle::decode(data);
        debug_assert_eq!(out.len() as u64, logical_len, "Rle: length mismatch");
        out
    }

    fn encoded_size(&self, logical: u64, _ctx: &CodecContext<'_>) -> u64 {
        // Modeled: run-lengths are unknowable from a size alone.
        ((logical as f64 / self.modeled_ratio).round() as u64).min(logical)
    }

    fn cpu_ns_per_byte(&self) -> f64 {
        self.cpu_ns
    }
}

// --------------------------------------------------------------------------
// LossyQuant

/// Values per quantization block.
pub const QUANT_BLOCK_VALUES: u64 = 256;
/// Per-block header: `min: f64` + `scale: f64`, little-endian.
pub const QUANT_BLOCK_HEADER: u64 = 16;

/// Block-wise lossy quantization of `f64` fields (see module docs).
#[derive(Clone, Debug)]
pub struct LossyQuant {
    /// Default packed bits per value (1..=16).
    pub bits: u8,
    /// Per-level overrides, indexed by AMR level (last entry repeats for
    /// deeper levels). Empty means "use `bits` everywhere".
    pub level_bits: Vec<u8>,
    /// Per-field overrides: `(path substring, bits)` — first match wins.
    pub field_bits: Vec<(String, u8)>,
    /// Modeled CPU cost per logical byte (ns).
    pub cpu_ns: f64,
}

impl LossyQuant {
    /// A quantizer packing `bits` bits per value everywhere.
    pub fn new(bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "LossyQuant: bits must be 1..=16");
        Self {
            bits,
            level_bits: Vec::new(),
            field_bits: Vec::new(),
            cpu_ns: 1.5,
        }
    }

    /// Sets per-level precisions (index = level; last repeats).
    pub fn with_level_bits(mut self, level_bits: &[u8]) -> Self {
        assert!(
            level_bits.iter().all(|b| (1..=16).contains(b)),
            "LossyQuant: level bits must be 1..=16"
        );
        self.level_bits = level_bits.to_vec();
        self
    }

    /// Adds a per-field precision override matched as a path substring.
    pub fn with_field_bits(mut self, field: impl Into<String>, bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "LossyQuant: bits must be 1..=16");
        self.field_bits.push((field.into(), bits));
        self
    }

    /// The precision used for one put.
    pub fn bits_for(&self, ctx: &CodecContext<'_>) -> u8 {
        for (field, bits) in &self.field_bits {
            if ctx.path.contains(field.as_str()) {
                return *bits;
            }
        }
        if self.level_bits.is_empty() {
            self.bits
        } else {
            let idx = (ctx.level as usize).min(self.level_bits.len() - 1);
            self.level_bits[idx]
        }
    }

    /// Exact encoded size of `nvals` values plus `tail` raw bytes.
    fn size_for(bits: u8, nvals: u64, tail: u64) -> u64 {
        let full = nvals / QUANT_BLOCK_VALUES;
        let rem = nvals % QUANT_BLOCK_VALUES;
        let mut size = full * (QUANT_BLOCK_HEADER + (QUANT_BLOCK_VALUES * bits as u64).div_ceil(8));
        if rem > 0 {
            size += QUANT_BLOCK_HEADER + (rem * bits as u64).div_ceil(8);
        }
        size + tail
    }
}

impl Codec for LossyQuant {
    fn name(&self) -> String {
        format!("quant:{}", self.bits)
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn encode(&self, data: &[u8], ctx: &CodecContext<'_>) -> Vec<u8> {
        let bits = self.bits_for(ctx) as u32;
        let nvals = (data.len() / 8) as u64;
        let tail = data.len() - nvals as usize * 8;
        let mut out = Vec::with_capacity(Self::size_for(bits as u8, nvals, tail as u64) as usize);
        for block in data[..nvals as usize * 8].chunks(QUANT_BLOCK_VALUES as usize * 8) {
            let vals: Vec<f64> = block
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let levels = ((1u64 << bits) - 1) as f64;
            // Degenerate blocks get an explicit zero scale: constant
            // blocks (max == min, where (v - min) / scale would be 0/0 =
            // NaN and silently cast to index 0), ranges so extreme that
            // max - min overflows to infinity, and subnormal ranges whose
            // scale underflows. A zero scale means "every value decodes
            // to min" — exact for constant blocks, clamped otherwise.
            let range = max - min;
            let scale = if range > 0.0 && range.is_finite() {
                range / levels
            } else {
                0.0
            };
            out.extend_from_slice(&min.to_le_bytes());
            out.extend_from_slice(&scale.to_le_bytes());
            // Pack quantized values little-endian, LSB first.
            let mut acc: u64 = 0;
            let mut nbits: u32 = 0;
            for v in &vals {
                let q = if scale > 0.0 {
                    let t = (v - min) / scale;
                    // Non-finite values (NaN/inf inputs) clamp to index 0
                    // explicitly instead of through a silent NaN cast.
                    if t.is_finite() {
                        (t.round() as u64).min(levels as u64)
                    } else {
                        0
                    }
                } else {
                    0
                };
                acc |= q << nbits;
                nbits += bits;
                while nbits >= 8 {
                    out.push((acc & 0xFF) as u8);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            if nbits > 0 {
                out.push((acc & 0xFF) as u8);
            }
        }
        out.extend_from_slice(&data[nvals as usize * 8..]);
        out
    }

    fn decode(&self, data: &[u8], logical_len: u64, ctx: &CodecContext<'_>) -> Vec<u8> {
        let bits = self.bits_for(ctx) as u32;
        let nvals = (logical_len / 8) as usize;
        let tail = (logical_len % 8) as usize;
        let mut out = Vec::with_capacity(logical_len as usize);
        let mut pos = 0usize;
        let mut remaining = nvals;
        while remaining > 0 {
            let block_vals = remaining.min(QUANT_BLOCK_VALUES as usize);
            let min = f64::from_le_bytes(data[pos..pos + 8].try_into().expect("block header"));
            let scale =
                f64::from_le_bytes(data[pos + 8..pos + 16].try_into().expect("block header"));
            pos += 16;
            // Unpack little-endian, LSB first — the mirror of encode.
            let mut acc: u64 = 0;
            let mut nbits: u32 = 0;
            let mask: u64 = (1u64 << bits) - 1;
            for _ in 0..block_vals {
                while nbits < bits {
                    acc |= (data[pos] as u64) << nbits;
                    pos += 1;
                    nbits += 8;
                }
                let q = acc & mask;
                acc >>= bits;
                nbits -= bits;
                let v = min + q as f64 * scale;
                out.extend_from_slice(&v.to_le_bytes());
            }
            remaining -= block_vals;
        }
        out.extend_from_slice(&data[pos..pos + tail]);
        debug_assert_eq!(out.len() as u64, logical_len);
        out
    }

    fn encoded_size(&self, logical: u64, ctx: &CodecContext<'_>) -> u64 {
        let bits = self.bits_for(ctx);
        let nvals = logical / 8;
        let tail = logical % 8;
        Self::size_for(bits, nvals, tail).min(logical)
    }

    fn cpu_ns_per_byte(&self) -> f64 {
        self.cpu_ns
    }
}

// --------------------------------------------------------------------------
// CodecSpec

/// Default modeled ratio for [`Rle`] account-only payloads: AMR field
/// dumps are dominated by near-constant regions (the unshocked ambient
/// state), which byte-level RLE collapses well.
pub const DEFAULT_RLE_RATIO: f64 = 2.0;

/// Default quantization precision (bits per `f64` value).
pub const DEFAULT_QUANT_BITS: u8 = 8;

/// Which compression codec a run writes through — the serializable spec
/// CLIs and campaign configs carry (mirrors [`crate::BackendSpec`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum CodecSpec {
    /// Pass-through (physical == logical).
    #[default]
    Identity,
    /// Lossless RLE with the given modeled ratio for size-only payloads.
    Rle(f64),
    /// Block-wise lossy quantization at the given bits per value.
    LossyQuant(u8),
}

impl CodecSpec {
    /// Parses a CLI spelling:
    /// `none` | `identity` | `rle[:<ratio>]` | `quant[:<bits>]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match head {
            "none" | "identity" => match arg {
                None => Ok(CodecSpec::Identity),
                Some(a) => Err(format!("codec 'identity' takes no argument, got '{a}'")),
            },
            "rle" => {
                let ratio = match arg {
                    None => DEFAULT_RLE_RATIO,
                    Some(a) => a
                        .parse::<f64>()
                        .map_err(|_| format!("bad rle ratio '{a}'"))?,
                };
                if !ratio.is_finite() || ratio < 1.0 {
                    return Err("rle ratio must be >= 1".to_string());
                }
                Ok(CodecSpec::Rle(ratio))
            }
            "quant" | "lossy" => {
                let bits = match arg {
                    None => DEFAULT_QUANT_BITS,
                    Some(a) => a
                        .parse::<u8>()
                        .map_err(|_| format!("bad quant bits '{a}'"))?,
                };
                if !(1..=16).contains(&bits) {
                    return Err("quant bits must be 1..=16".to_string());
                }
                Ok(CodecSpec::LossyQuant(bits))
            }
            other => Err(format!(
                "unknown codec '{other}' (expected identity, rle[:<ratio>], or quant[:<bits>])"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> String {
        match self {
            CodecSpec::Identity => "identity".to_string(),
            CodecSpec::Rle(r) => format!("rle:{r}"),
            CodecSpec::LossyQuant(b) => format!("quant:{b}"),
        }
    }

    /// True for the pass-through spec.
    pub fn is_identity(&self) -> bool {
        matches!(self, CodecSpec::Identity)
    }

    /// Builds the live codec.
    pub fn build(&self) -> Box<dyn Codec> {
        match *self {
            CodecSpec::Identity => Box::new(Identity),
            CodecSpec::Rle(ratio) => Box::new(Rle::new(ratio)),
            CodecSpec::LossyQuant(bits) => Box::new(LossyQuant::new(bits)),
        }
    }
}

/// Applies a codec to one logical payload, never expanding: materialized
/// bytes that fail to compress stay raw (the sidecar records the method),
/// size-only payloads use the codec's modeled/exact size. Returns the
/// physical payload and whether encoding was applied.
pub fn encode_payload(
    codec: &dyn Codec,
    payload: Payload,
    ctx: &CodecContext<'_>,
) -> (Payload, bool) {
    match payload {
        Payload::Bytes(b) => {
            let logical = b.len() as u64;
            let encoded = codec.encode(&b, ctx);
            if (encoded.len() as u64) < logical {
                (
                    Payload::Encoded {
                        data: encoded.into(),
                        logical,
                    },
                    true,
                )
            } else {
                // Raw fallback: the original shared buffer flows on
                // untouched (never-expand keeps it zero-copy too).
                (Payload::Bytes(b), false)
            }
        }
        Payload::Size(n) => {
            let physical = codec.encoded_size(n, ctx).min(n);
            if physical < n {
                (
                    Payload::EncodedSize {
                        physical,
                        logical: n,
                    },
                    true,
                )
            } else {
                (Payload::Size(n), false)
            }
        }
        already @ (Payload::Encoded { .. } | Payload::EncodedSize { .. }) => (already, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(level: u32, path: &'static str) -> CodecContext<'static> {
        CodecContext {
            level,
            kind: IoKind::Data,
            path,
        }
    }

    #[test]
    fn identity_is_exact() {
        let c = Identity;
        assert!(c.is_identity());
        assert_eq!(c.encode(b"abc", &ctx(0, "/f")), b"abc");
        assert_eq!(c.encoded_size(1234, &ctx(0, "/f")), 1234);
        assert_eq!(c.cpu_ns_per_byte(), 0.0);
    }

    #[test]
    fn rle_round_trips() {
        let c = Rle::default();
        for data in [
            b"aaaaaaaaaabbbbbbbbbb".to_vec(),
            b"abcdefgh".to_vec(),
            vec![0u8; 1000],
            (0..=255u8).collect::<Vec<u8>>(),
            b"aaabccc".to_vec(),
            Vec::new(),
            vec![7u8; 129], // run longer than the 128 cap
        ] {
            let enc = c.encode(&data, &ctx(0, "/f"));
            assert_eq!(Rle::decode(&enc), data, "round trip for {data:?}");
        }
    }

    #[test]
    fn rle_compresses_runs_and_models_sizes() {
        let c = Rle::new(4.0);
        let runs = vec![0u8; 4096];
        let enc = c.encode(&runs, &ctx(0, "/f"));
        // Runs cap at 128 bytes per control pair: 4096 / 128 * 2 = 64.
        assert_eq!(enc.len(), 64, "runs collapse");
        // Modeled size-only path.
        assert_eq!(c.encoded_size(4000, &ctx(0, "/f")), 1000);
        assert!(c.encoded_size(10, &ctx(0, "/f")) <= 10);
    }

    #[test]
    fn quant_size_matches_encode_exactly() {
        let c = LossyQuant::new(8);
        for nvals in [0usize, 1, 255, 256, 257, 1000] {
            for tail in [0usize, 3] {
                let mut data = Vec::new();
                for i in 0..nvals {
                    data.extend_from_slice(&(i as f64).sin().to_le_bytes());
                }
                data.extend(std::iter::repeat_n(9u8, tail));
                // encode() realizes exactly the size the formula predicts
                // (the raw fallback for tiny expanding inputs lives in
                // `encode_payload`, not in the codec itself) ...
                let enc = c.encode(&data, &ctx(0, "/f"));
                assert_eq!(
                    enc.len() as u64,
                    LossyQuant::size_for(8, nvals as u64, tail as u64),
                    "nvals {nvals} tail {tail}"
                );
                // ... while encoded_size never exceeds the logical size.
                let modeled = c.encoded_size(data.len() as u64, &ctx(0, "/f"));
                assert!(modeled <= data.len() as u64);
                assert_eq!(modeled, (enc.len() as u64).min(data.len() as u64));
            }
        }
    }

    #[test]
    fn quant_ratio_tracks_bits() {
        let big = 256_000u64; // 32k values
        let r8 = big as f64 / LossyQuant::new(8).encoded_size(big, &ctx(0, "/f")) as f64;
        let r4 = big as f64 / LossyQuant::new(4).encoded_size(big, &ctx(0, "/f")) as f64;
        assert!(r8 > 6.0 && r8 < 8.0, "8-bit ratio {r8}");
        assert!(r4 > 11.0 && r4 < 16.0, "4-bit ratio {r4}");
    }

    #[test]
    fn quant_error_is_bounded_by_scale() {
        let c = LossyQuant::new(8);
        let vals: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let enc = c.encode(&data, &ctx(0, "/f"));
        let min = f64::from_le_bytes(enc[0..8].try_into().unwrap());
        let scale = f64::from_le_bytes(enc[8..16].try_into().unwrap());
        // Decode value 0 from the packed stream (8 bits -> one byte each).
        let q0 = enc[16] as f64;
        let v0 = min + q0 * scale;
        assert!((v0 - vals[0]).abs() <= scale / 2.0 + 1e-12);
    }

    #[test]
    fn quant_decode_reconstructs_within_scale() {
        let c = LossyQuant::new(8);
        for nvals in [1usize, 255, 256, 300, 1000] {
            for tail in [0usize, 5] {
                let mut data = Vec::new();
                for i in 0..nvals {
                    data.extend_from_slice(&((i as f64 * 0.37).sin() * 3.0).to_le_bytes());
                }
                data.extend((0..tail).map(|i| i as u8));
                let enc = c.encode(&data, &ctx(0, "/f"));
                let dec = c.decode(&enc, data.len() as u64, &ctx(0, "/f"));
                assert_eq!(dec.len(), data.len(), "nvals {nvals} tail {tail}");
                // Tail bytes pass through raw.
                assert_eq!(&dec[nvals * 8..], &data[nvals * 8..]);
                // Values reconstruct within half a quantization step.
                for (d, o) in dec[..nvals * 8].chunks_exact(8).zip(data.chunks_exact(8)) {
                    let dv = f64::from_le_bytes(d.try_into().unwrap());
                    let ov = f64::from_le_bytes(o.try_into().unwrap());
                    assert!((dv - ov).abs() <= 6.0 / 255.0 / 2.0 + 1e-12, "{dv} vs {ov}");
                }
                // Decode/re-encode is a fixed point of the format.
                assert_eq!(c.encode(&dec, &ctx(0, "/f")), enc);
            }
        }
    }

    #[test]
    fn quant_constant_block_round_trips_exactly() {
        // Regression: a constant-valued block has max == min; the scale
        // must be an explicit 0 (not a 0/0 NaN silently cast to index 0),
        // and the decode must reproduce the constant bit-exactly.
        let c = LossyQuant::new(8);
        for value in [0.0f64, -3.25, 1e300, f64::MIN_POSITIVE] {
            let data: Vec<u8> = std::iter::repeat_n(value, 500)
                .flat_map(f64::to_le_bytes)
                .collect();
            let enc = c.encode(&data, &ctx(0, "/f"));
            let scale = f64::from_le_bytes(enc[8..16].try_into().unwrap());
            assert_eq!(scale, 0.0, "constant block stores zero scale");
            let dec = c.decode(&enc, data.len() as u64, &ctx(0, "/f"));
            assert_eq!(dec, data, "constant field must restart bit-exactly");
        }
    }

    #[test]
    fn quant_degenerate_blocks_never_emit_nan() {
        let c = LossyQuant::new(8);
        // Range overflowing to infinity, and non-finite inputs.
        for vals in [
            vec![f64::MAX, -f64::MAX, 0.0, 1.0],
            vec![f64::NAN, 1.0, 2.0, 3.0],
            vec![f64::INFINITY, 0.5, -0.5, 0.0],
        ] {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let enc = c.encode(&data, &ctx(0, "/f"));
            let scale = f64::from_le_bytes(enc[8..16].try_into().unwrap());
            assert!(scale.is_finite(), "scale stays finite: {scale}");
            let dec = c.decode(&enc, data.len() as u64, &ctx(0, "/f"));
            // min + q * scale with finite scale: finite whenever the
            // block min is finite.
            if vals.iter().all(|v| v.is_finite()) {
                for chunk in dec.chunks_exact(8) {
                    let v = f64::from_le_bytes(chunk.try_into().unwrap());
                    assert!(v.is_finite(), "decoded NaN/inf from finite input");
                }
            }
        }
    }

    #[test]
    fn quant_lattice_fields_round_trip_bit_exactly() {
        // Integer-valued fields anchored at 0 and 255 quantize with
        // scale 1.0 at 8 bits: q == v exactly, so even the lossy codec
        // restarts bit-exactly on lattice data.
        let c = LossyQuant::new(8);
        let vals: Vec<f64> = (0..512).map(|i| (i * 7 % 256) as f64).collect();
        let mut vals = vals;
        for block in vals.chunks_mut(256) {
            block[0] = 0.0;
            let last = block.len() - 1;
            block[last] = 255.0;
        }
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let enc = c.encode(&data, &ctx(0, "/f"));
        assert!(enc.len() < data.len());
        assert_eq!(c.decode(&enc, data.len() as u64, &ctx(0, "/f")), data);
    }

    #[test]
    fn lossless_flags() {
        assert!(Identity.is_lossless());
        assert!(Rle::default().is_lossless());
        assert!(!LossyQuant::new(8).is_lossless());
    }

    #[test]
    fn rle_codec_decode_matches_static_decode() {
        let c = Rle::default();
        let data = b"aaaaaabcdefggggggg".to_vec();
        let enc = c.encode(&data, &ctx(0, "/f"));
        assert_eq!(
            Codec::decode(&c, &enc, data.len() as u64, &ctx(0, "/f")),
            data
        );
    }

    #[test]
    fn quant_per_level_and_per_field_overrides() {
        let c = LossyQuant::new(8)
            .with_level_bits(&[12, 8, 4])
            .with_field_bits("density", 16);
        assert_eq!(c.bits_for(&ctx(0, "/p/L0/a")), 12);
        assert_eq!(c.bits_for(&ctx(1, "/p/L1/a")), 8);
        assert_eq!(c.bits_for(&ctx(5, "/p/L5/a")), 4, "last entry repeats");
        assert_eq!(c.bits_for(&ctx(0, "/p/density_0")), 16, "field wins");
        // Deeper levels produce smaller physical sizes for the same bytes.
        let logical = 80_000u64;
        let l0 = c.encoded_size(logical, &ctx(0, "/p/L0/a"));
        let l2 = c.encoded_size(logical, &ctx(2, "/p/L2/a"));
        assert!(l2 < l0);
    }

    #[test]
    fn encode_payload_never_expands() {
        let c = Rle::default();
        // Incompressible bytes stay raw.
        let noise: Vec<u8> = (0..997u32).map(|i| (i * 131 % 251) as u8).collect();
        let (p, encoded) = encode_payload(&c, Payload::Bytes(noise.clone().into()), &ctx(0, "/f"));
        assert!(!encoded);
        assert_eq!(p.len(), noise.len() as u64);
        assert_eq!(p.logical_len(), noise.len() as u64);
        // Compressible bytes shrink, logical length preserved.
        let (p, encoded) = encode_payload(&c, Payload::Bytes(vec![0; 1000].into()), &ctx(0, "/f"));
        assert!(encoded);
        assert!(p.len() < 1000);
        assert_eq!(p.logical_len(), 1000);
        // Size-only payloads use the model.
        let (p, encoded) = encode_payload(&c, Payload::Size(1000), &ctx(0, "/f"));
        assert!(encoded);
        assert_eq!(p.len(), 500);
        assert_eq!(p.logical_len(), 1000);
    }

    #[test]
    fn spec_parse_spellings() {
        assert_eq!(CodecSpec::parse("identity").unwrap(), CodecSpec::Identity);
        assert_eq!(CodecSpec::parse("none").unwrap(), CodecSpec::Identity);
        assert_eq!(CodecSpec::parse("rle").unwrap(), CodecSpec::Rle(2.0));
        assert_eq!(CodecSpec::parse("rle:3.5").unwrap(), CodecSpec::Rle(3.5));
        assert_eq!(CodecSpec::parse("quant").unwrap(), CodecSpec::LossyQuant(8));
        assert_eq!(
            CodecSpec::parse("quant:4").unwrap(),
            CodecSpec::LossyQuant(4)
        );
        assert!(CodecSpec::parse("quant:0").is_err());
        assert!(CodecSpec::parse("quant:17").is_err());
        assert!(CodecSpec::parse("rle:0.5").is_err());
        assert!(CodecSpec::parse("zstd").is_err());
    }

    #[test]
    fn spec_name_round_trips() {
        for spec in [
            CodecSpec::Identity,
            CodecSpec::Rle(2.5),
            CodecSpec::LossyQuant(12),
        ] {
            assert_eq!(CodecSpec::parse(&spec.name()).unwrap(), spec);
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(8),
        ] {
            let v = spec.to_value();
            assert_eq!(CodecSpec::from_value(&v).unwrap(), spec);
        }
    }
}
