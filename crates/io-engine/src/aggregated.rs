//! Two-level aggregation backend, modelled on ADIOS2's BP format.
//!
//! Data puts from N producer tasks funnel into `A = ceil(N / ratio)`
//! aggregator subfiles per step (aggregator of task `t` is `t / ratio`),
//! with chunks coalesced in arrival order — the "data layout
//! reorganization" of Wan et al. Metadata puts and the chunk index land
//! in one per-step index file, so a step with data on `A` aggregators
//! creates exactly `A + 1` physical files:
//!
//! ```text
//! <container>/bp00001/data.0       aggregator subfile (coalesced chunks)
//! <container>/bp00001/data.1
//! <container>/bp00001/md.idx       chunk table + embedded metadata puts
//! ```
//!
//! The index file holds a plain-text chunk table (one line per chunk:
//! subfile, offset, physical length, logical length, key, logical path)
//! followed by the raw bytes of every metadata put. Table bytes are
//! counted as backend *overhead*; payload bytes keep their producer
//! attribution in the tracker — at *logical* (pre-compression) size — so
//! byte accounting at `(step, level, task)` granularity is identical to
//! the other backends and invariant under the compression stage. The
//! per-chunk logical column lets readers recover pre-compression sizes
//! (the format a golden-file test pins byte-exactly).

use crate::backend::{
    unsupported_read, ChunkRead, EngineReport, IoBackend, Payload, Put, ReadStats, StepRead,
    StepStats, TrackerHandle, VfsHandle,
};
use crate::selection::ReadSelection;
use bytes::Bytes;
use iosim::{IoKey, IoKind, ReadRequest, WriteRequest};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;

/// One coalesced chunk inside an aggregator subfile.
#[derive(Clone)]
struct Chunk {
    path: String,
    step: u32,
    level: u32,
    task: u32,
    offset: u64,
    len: u64,
    logical_len: u64,
}

impl Chunk {
    fn key(&self) -> IoKey {
        IoKey {
            step: self.step,
            level: self.level,
            task: self.task,
        }
    }
}

/// One aggregator subfile being assembled. Payload bytes are adopted as
/// shared segments (no coalescing copy), and the subfile's slice of the
/// index chunk table is appended **incrementally at put time** — sealing
/// a step streams directory + table segments instead of rebuilding the
/// whole `md.idx` table in one buffer.
#[derive(Default)]
struct AggBuild {
    segs: Vec<Bytes>,
    /// This subfile's rows of the index chunk table, grown per put.
    table: String,
    bytes: u64,
    logical_bytes: u64,
    account_only: bool,
    chunks: Vec<Chunk>,
}

/// One metadata put retained for the read path (boundaries inside the
/// index file's embedded metadata blob).
#[derive(Clone)]
struct MetaChunk {
    key: IoKey,
    path: String,
    offset: u64,
    len: u64,
    logical_len: u64,
}

struct AggStep {
    step: u32,
    dir: String,
    aggs: BTreeMap<usize, AggBuild>,
    meta_segs: Vec<Bytes>,
    meta_bytes: u64,
    meta_logical_bytes: u64,
    meta_account_only: bool,
    meta_chunks: Vec<MetaChunk>,
}

/// What the backend remembers about a finished step so `read_step` can
/// serve it: the chunk *data* comes back from the on-disk `md.idx` index
/// whenever it was materialized; the retained copy is the fallback for
/// account-only (modeled) steps and carries the metadata boundaries the
/// flat index format does not store. Retained for every step (wr-mode
/// reads all dumps back) — spans and paths only, never content.
#[derive(Clone)]
struct RetainedStep {
    dir: String,
    /// Byte length of the chunk table inside the index file (the
    /// embedded metadata blob starts there).
    table_len: u64,
    index_bytes: u64,
    index_written: bool,
    /// `(physical bytes, account_only)` per aggregator id.
    subfiles: BTreeMap<usize, (u64, bool)>,
    /// Fallback chunk table for steps whose index never materialized.
    data_chunks: Vec<(usize, Chunk)>,
    meta_chunks: Vec<MetaChunk>,
    meta_account_only: bool,
}

/// The aggregating backend (see module docs).
pub struct Aggregated<'a> {
    vfs: VfsHandle<'a>,
    tracker: TrackerHandle<'a>,
    /// Producer tasks per aggregator (>= 1).
    ratio: usize,
    cur: Option<AggStep>,
    retained: HashMap<u32, RetainedStep>,
    report: EngineReport,
}

impl<'a> Aggregated<'a> {
    /// A backend aggregating `ratio` producer tasks per subfile.
    pub fn new(
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
        ratio: usize,
    ) -> Self {
        Self {
            vfs: vfs.into(),
            tracker: tracker.into(),
            ratio: ratio.max(1),
            cur: None,
            retained: HashMap::new(),
            report: EngineReport::default(),
        }
    }

    /// The configured aggregation ratio.
    pub fn ratio(&self) -> usize {
        self.ratio
    }

    fn step_dir(container: &str, step: u32) -> String {
        let base = container.trim_end_matches('/');
        format!("{base}/bp{step:05}")
    }

    /// Parses the plain-text chunk table of an index file back into
    /// `(aggregator id, chunk)` rows. Returns `None` on any malformed
    /// line (the caller then falls back to its retained copy).
    fn parse_index_table(table: &str) -> Option<Vec<(usize, Chunk)>> {
        let mut out = Vec::new();
        for line in table.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            // The logical path is the *last* column and may contain
            // spaces: split off exactly the 7 leading fixed fields and
            // keep the remainder verbatim.
            let mut f = line.splitn(8, ' ');
            let subfile = f.next()?;
            let agg: usize = subfile.rsplit_once('.')?.1.parse().ok()?;
            let offset: u64 = f.next()?.parse().ok()?;
            let len: u64 = f.next()?.parse().ok()?;
            let logical_len: u64 = f.next()?.parse().ok()?;
            let step: u32 = f.next()?.parse().ok()?;
            let level: u32 = f.next()?.parse().ok()?;
            let task: u32 = f.next()?.parse().ok()?;
            let path = f.next()?.to_string();
            out.push((
                agg,
                Chunk {
                    path,
                    step,
                    level,
                    task,
                    offset,
                    len,
                    logical_len,
                },
            ));
        }
        Some(out)
    }
}

impl IoBackend for Aggregated<'_> {
    fn name(&self) -> String {
        format!("agg:{}", self.ratio)
    }

    fn begin_step(&mut self, step: u32, container: &str) {
        assert!(self.cur.is_none(), "begin_step: step already open");
        self.cur = Some(AggStep {
            step,
            dir: Self::step_dir(container, step),
            aggs: BTreeMap::new(),
            meta_segs: Vec::new(),
            meta_bytes: 0,
            meta_logical_bytes: 0,
            meta_account_only: false,
            meta_chunks: Vec::new(),
        });
    }

    fn create_dir_all(&mut self, path: &str) -> io::Result<()> {
        self.vfs.create_dir_all(path)
    }

    fn put(&mut self, put: Put) -> io::Result<()> {
        let cur = self.cur.as_mut().expect("put: no open step");
        let len = put.payload.len();
        let logical = put.payload.logical_len();
        self.tracker.record(put.key, put.kind, logical);
        match put.kind {
            IoKind::Data => {
                let agg = put.key.task as usize / self.ratio;
                let build = cur.aggs.entry(agg).or_default();
                // Stream this chunk's index-table row now — the subfile
                // path, offset, and spans are all known at put time, so
                // end_step only concatenates per-subfile table segments.
                let _ = writeln!(
                    build.table,
                    "{dir}/data.{agg} {offset} {len} {logical_len} {step} {level} {task} {logical}",
                    dir = cur.dir,
                    offset = build.bytes,
                    logical_len = logical,
                    step = put.key.step,
                    level = put.key.level,
                    task = put.key.task,
                    logical = put.path,
                );
                build.chunks.push(Chunk {
                    path: put.path,
                    step: put.key.step,
                    level: put.key.level,
                    task: put.key.task,
                    offset: build.bytes,
                    len,
                    logical_len: logical,
                });
                build.bytes += len;
                build.logical_bytes += logical;
                match put.payload {
                    Payload::Bytes(b) | Payload::Encoded { data: b, .. } => build.segs.push(b),
                    Payload::Size(_) | Payload::EncodedSize { .. } => build.account_only = true,
                }
            }
            IoKind::Metadata => {
                cur.meta_chunks.push(MetaChunk {
                    key: put.key,
                    path: put.path,
                    offset: cur.meta_bytes,
                    len,
                    logical_len: logical,
                });
                cur.meta_bytes += len;
                cur.meta_logical_bytes += logical;
                match put.payload {
                    Payload::Bytes(b) | Payload::Encoded { data: b, .. } => cur.meta_segs.push(b),
                    Payload::Size(_) | Payload::EncodedSize { .. } => cur.meta_account_only = true,
                }
            }
        }
        Ok(())
    }

    fn end_step(&mut self) -> io::Result<StepStats> {
        let cur = self.cur.take().expect("end_step: no open step");
        let mut stats = StepStats {
            step: cur.step,
            ..StepStats::default()
        };

        // Index segments: header line, then each subfile's table rows
        // (already formatted incrementally at put time), then the raw
        // metadata payload segments — streamed to the filesystem without
        // ever assembling one contiguous index buffer.
        let header = format!("# io-engine BP-style index, step {}\n", cur.step);
        let table_len =
            header.len() as u64 + cur.aggs.values().map(|b| b.table.len() as u64).sum::<u64>();

        for (agg, build) in &cur.aggs {
            let path = format!("{}/data.{agg}", cur.dir);
            // Account-only is decided per subfile (a size-only chunk makes
            // that subfile's coalesced content incomplete), mirroring the
            // per-file handling of the file-per-process backend.
            if !build.account_only {
                let written = self.vfs.write_file_concat(&path, &build.segs)?;
                debug_assert_eq!(written, build.bytes);
            }
            stats.files += 1;
            stats.bytes += build.bytes;
            stats.logical_bytes += build.logical_bytes;
            stats.requests.push(WriteRequest {
                // Attributed to the aggregator's lowest producer task.
                rank: agg * self.ratio,
                path,
                bytes: build.bytes,
                start: 0.0,
            });
        }

        // Index file: chunk table + embedded metadata payloads.
        let index_path = format!("{}/md.idx", cur.dir);
        let index_bytes = table_len + cur.meta_bytes;
        // The index is physically written only when the step materialized
        // content: metadata payloads must all be real bytes, and a step
        // whose every put was size-only stays write-free end to end.
        let wrote_any_data = cur.aggs.values().any(|a| !a.account_only);
        let index_written = !cur.meta_account_only && (wrote_any_data || cur.meta_bytes > 0);
        if index_written {
            let mut segs = Vec::with_capacity(1 + cur.aggs.len() + cur.meta_segs.len());
            segs.push(Bytes::from(header));
            for build in cur.aggs.values() {
                if !build.table.is_empty() {
                    segs.push(Bytes::from(build.table.clone()));
                }
            }
            segs.extend(cur.meta_segs.iter().cloned());
            let written = self.vfs.write_file_concat(&index_path, &segs)?;
            debug_assert_eq!(written, index_bytes);
        }
        stats.files += 1;
        stats.bytes += index_bytes;
        stats.logical_bytes += cur.meta_logical_bytes;
        stats.overhead_bytes += table_len;
        stats.requests.push(WriteRequest {
            rank: 0,
            path: index_path,
            bytes: index_bytes,
            start: 0.0,
        });

        // Retain what the read path needs (chunk data itself is re-read
        // from md.idx whenever it was materialized).
        self.retained.insert(
            cur.step,
            RetainedStep {
                dir: cur.dir.clone(),
                table_len,
                index_bytes,
                index_written,
                subfiles: cur
                    .aggs
                    .iter()
                    .map(|(&agg, b)| (agg, (b.bytes, b.account_only)))
                    .collect(),
                data_chunks: cur
                    .aggs
                    .iter()
                    .flat_map(|(&agg, b)| b.chunks.iter().map(move |c| (agg, c.clone())))
                    .collect(),
                meta_chunks: cur.meta_chunks.clone(),
                meta_account_only: cur.meta_account_only,
            },
        );

        self.report.steps += 1;
        self.report.files += stats.files;
        self.report.bytes += stats.bytes;
        self.report.logical_bytes += stats.logical_bytes;
        self.report.overhead_bytes += stats.overhead_bytes;
        Ok(stats)
    }

    fn read_selection(
        &mut self,
        step: u32,
        _container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        assert!(self.cur.is_none(), "read_step: step still open");
        let info = self
            .retained
            .get(&step)
            .ok_or_else(|| unsupported_read(&self.name(), step, sel, "step was never written"))?;
        let mut out = StepRead {
            stats: ReadStats {
                step,
                ..ReadStats::default()
            },
            ..StepRead::default()
        };

        // Resolve the chunk table: seek through the on-disk md.idx when
        // the step materialized one (the honest restart path), falling
        // back to the retained copy for account-only (modeled) steps.
        let index_path = format!("{}/md.idx", info.dir);
        let index_content = info
            .index_written
            .then(|| self.vfs.read_file_exact_shared(&index_path))
            .flatten();
        let (chunks, meta_blob) = match &index_content {
            Some(content) => {
                let table = std::str::from_utf8(&content[..info.table_len as usize])
                    .ok()
                    .and_then(Self::parse_index_table);
                (
                    table.unwrap_or_else(|| info.data_chunks.clone()),
                    // Zero-copy view of the embedded metadata blob.
                    Some(content.slice(info.table_len as usize..)),
                )
            }
            None => (info.data_chunks.clone(), None),
        };
        // One read request for the index itself (table + embedded
        // metadata), modeled at its declared size when not materialized.
        // The whole index is fetched regardless of the selection: the
        // write-optimized BP layout stores one monolithic index blob, and
        // a reader must pull it in full to locate *any* chunk — the
        // per-query penalty the reorg module's rewritten index removes.
        out.stats.files += 1;
        out.stats.bytes += info.index_bytes;
        out.stats.requests.push(ReadRequest {
            rank: 0,
            path: index_path,
            bytes: info.index_bytes,
            start: 0.0,
        });

        // Data chunks: seek into each aggregator subfile by the index's
        // (offset, len) ranges for the chunks the selection touches; one
        // read request per maximal *contiguous* matched range (a seek +
        // fetch), counting only the fetched bytes — scattered selections
        // over the arrival-ordered layout cost more requests than
        // clustered ones. Subfiles none of whose chunks match stay
        // unopened.
        let mut per_subfile_ranges: BTreeMap<usize, crate::fpp::RangeCoalescer> = BTreeMap::new();
        let mut subfile_content: BTreeMap<usize, Option<Bytes>> = BTreeMap::new();
        for (agg, chunk) in &chunks {
            if !sel.matches(&chunk.key(), &chunk.path) {
                continue;
            }
            let (_, account_only) = *info.subfiles.get(agg).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("read_step: unknown subfile data.{agg} in index"),
                )
            })?;
            if !subfile_content.contains_key(agg) {
                let loaded = if account_only {
                    // Modeled (size-only) subfile: nothing on disk by
                    // design.
                    None
                } else {
                    let path = format!("{}/data.{agg}", info.dir);
                    if self.vfs.file_size(&path).is_none() {
                        // A materialized subfile must be present — a
                        // missing one is a lost write, not a modeled
                        // read (mirrors the fpp/deferred path).
                        return Err(io::Error::new(
                            io::ErrorKind::NotFound,
                            format!("read_step: missing subfile '{path}'"),
                        ));
                    }
                    // Present but content-truncated retention degrades
                    // to a modeled read.
                    self.vfs.read_file_exact_shared(&path)
                };
                subfile_content.insert(*agg, loaded);
            }
            let content = subfile_content.get(agg).expect("just inserted");
            let payload = match content {
                Some(bytes) => {
                    // O(1) sub-view into the subfile's shared buffer.
                    let slice =
                        bytes.slice(chunk.offset as usize..(chunk.offset + chunk.len) as usize);
                    if chunk.len == chunk.logical_len {
                        Payload::Bytes(slice)
                    } else {
                        Payload::Encoded {
                            data: slice,
                            logical: chunk.logical_len,
                        }
                    }
                }
                None => Payload::Size(chunk.logical_len),
            };
            self.tracker
                .record_read(chunk.key(), IoKind::Data, chunk.logical_len);
            per_subfile_ranges
                .entry(*agg)
                .or_insert_with(crate::fpp::RangeCoalescer::new)
                .push(chunk.offset, chunk.len);
            out.stats.logical_bytes += chunk.logical_len;
            out.chunks.push(ChunkRead {
                key: chunk.key(),
                kind: IoKind::Data,
                path: chunk.path.clone(),
                payload,
            });
        }
        for (agg, ranges) in per_subfile_ranges {
            out.stats.files += 1;
            out.stats.bytes += ranges.bytes();
            ranges.requests_into(
                agg * self.ratio,
                &format!("{}/data.{agg}", info.dir),
                &mut out.stats.requests,
            );
        }

        // Metadata chunks: sliced out of the index file's embedded blob
        // (already fetched with the index request), filtered like data.
        for mc in &info.meta_chunks {
            if !sel.matches(&mc.key, &mc.path) {
                continue;
            }
            let payload = match &meta_blob {
                Some(blob) if !info.meta_account_only => {
                    let slice = blob.slice(mc.offset as usize..(mc.offset + mc.len) as usize);
                    if mc.len == mc.logical_len {
                        Payload::Bytes(slice)
                    } else {
                        Payload::Encoded {
                            data: slice,
                            logical: mc.logical_len,
                        }
                    }
                }
                _ => Payload::Size(mc.logical_len),
            };
            self.tracker
                .record_read(mc.key, IoKind::Metadata, mc.logical_len);
            out.stats.logical_bytes += mc.logical_len;
            out.chunks.push(ChunkRead {
                key: mc.key,
                kind: IoKind::Metadata,
                path: mc.path.clone(),
                payload,
            });
        }
        Ok(out)
    }

    fn close(&mut self) -> io::Result<EngineReport> {
        assert!(self.cur.is_none(), "close: step still open");
        Ok(self.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

    fn put(task: u32, kind: IoKind, path: &str, data: &[u8]) -> Put {
        Put {
            key: IoKey {
                step: 1,
                level: 0,
                task,
            },
            kind,
            path: path.to_string(),
            payload: Payload::Bytes(data.to_vec().into()),
        }
    }

    #[test]
    fn files_equal_aggregators_plus_one() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 4);
        b.begin_step(1, "/");
        for task in 0..16u32 {
            b.put(put(task, IoKind::Data, &format!("/f{task}"), b"datadata"))
                .unwrap();
        }
        b.put(put(0, IoKind::Metadata, "/root", b"meta")).unwrap();
        let stats = b.end_step().unwrap();
        // 16 tasks / ratio 4 = 4 aggregators, + 1 index.
        assert_eq!(stats.files, 4 + 1);
        assert_eq!(fs.nfiles(), 5);
        assert!(fs.file_size("/bp00001/data.0").is_some());
        assert!(fs.file_size("/bp00001/data.3").is_some());
        assert!(fs.file_size("/bp00001/md.idx").is_some());
    }

    /// Regression: a ratio of 0 must clamp to 1 at construction — a
    /// zero ratio would divide by zero when mapping tasks to
    /// aggregators. `BackendSpec::parse` rejects `agg:0`, but specs
    /// built programmatically (or deserialized from a config) bypass
    /// that validation and still must not panic.
    #[test]
    fn ratio_zero_clamps_to_one() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 0);
        assert_eq!(b.ratio(), 1);
        b.begin_step(1, "/");
        for task in 0..3u32 {
            b.put(put(task, IoKind::Data, &format!("/f{task}"), b"dddd"))
                .unwrap();
        }
        let stats = b.end_step().unwrap();
        // Clamped to ratio 1: one subfile per task, plus the index.
        assert_eq!(stats.files, 3 + 1);
    }

    /// Same clamp through the spec layer: a directly-constructed
    /// `Aggregated(0)` spec (which `parse` — and therefore serde, which
    /// round-trips through the CLI spelling — would have rejected)
    /// builds a working ratio-1 backend instead of panicking.
    #[test]
    fn spec_built_ratio_zero_does_not_panic() {
        let spec = crate::BackendSpec::Aggregated(0);
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = spec.build(&fs as &dyn Vfs, &tracker);
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/f0", b"dddd")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 1 + 1);
        assert_eq!(b.read_step(1, "/").unwrap().chunks.len(), 1);
    }

    #[test]
    fn chunks_coalesce_in_arrival_order() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/plt");
        b.put(put(0, IoKind::Data, "/plt/L0/a", b"AA")).unwrap();
        b.put(put(1, IoKind::Data, "/plt/L0/b", b"BB")).unwrap();
        b.put(put(0, IoKind::Data, "/plt/L1/a", b"CC")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 2); // one aggregator + index
        assert_eq!(
            fs.read_file("/plt/bp00001/data.0"),
            Some(b"AABBCC".to_vec())
        );
        // The index names every logical path with its offset.
        let idx = String::from_utf8(fs.read_file("/plt/bp00001/md.idx").unwrap()).unwrap();
        assert!(idx.contains("/plt/L0/a"));
        assert!(idx.contains("/plt/L1/a"));
        assert!(idx.contains(" 2 2 2 "), "offset 2, len 2, logical 2: {idx}");
    }

    #[test]
    fn tracker_attribution_is_backend_invariant() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 8);
        b.begin_step(1, "/");
        b.put(put(3, IoKind::Data, "/f3", b"12345")).unwrap();
        b.put(put(0, IoKind::Metadata, "/h", b"67")).unwrap();
        b.end_step().unwrap();
        assert_eq!(tracker.total_bytes_of(IoKind::Data), 5);
        assert_eq!(tracker.total_bytes_of(IoKind::Metadata), 2);
        assert_eq!(tracker.bytes_per_task(1, 0), vec![2, 0, 0, 5]);
    }

    #[test]
    fn overhead_is_separated_from_payload() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 1);
        b.begin_step(2, "/");
        b.put(put(0, IoKind::Data, "/f", b"xyz")).unwrap();
        let stats = b.end_step().unwrap();
        assert!(stats.overhead_bytes > 0);
        assert_eq!(stats.bytes, 3 + stats.overhead_bytes);
        assert_eq!(tracker.total_bytes(), 3, "tracker sees payload only");
    }

    #[test]
    fn mixed_payloads_write_materialized_subfiles() {
        // One aggregator gets real bytes, another only a size: the real
        // subfile and the index must still land on the filesystem.
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 1);
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/real", b"bytes")).unwrap();
        b.put(Put {
            key: IoKey {
                step: 1,
                level: 0,
                task: 1,
            },
            kind: IoKind::Data,
            path: "/sized".into(),
            payload: Payload::Size(999),
        })
        .unwrap();
        b.put(put(0, IoKind::Metadata, "/h", b"meta")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 3); // 2 aggregators + index
        assert_eq!(fs.read_file("/bp00001/data.0"), Some(b"bytes".to_vec()));
        assert!(fs.file_size("/bp00001/data.1").is_none(), "size-only");
        assert!(fs.file_size("/bp00001/md.idx").is_some());
    }

    #[test]
    fn read_step_seeks_through_the_index() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/plt");
        b.put(put(0, IoKind::Data, "/plt/L0/a", b"AA")).unwrap();
        b.put(put(1, IoKind::Data, "/plt/L0/b", b"BBB")).unwrap();
        b.put(put(2, IoKind::Data, "/plt/L1/c", b"CCCC")).unwrap();
        b.put(put(0, IoKind::Metadata, "/plt/Header", b"hdr1"))
            .unwrap();
        b.put(put(0, IoKind::Metadata, "/plt/job_info", b"jobinfo"))
            .unwrap();
        b.end_step().unwrap();

        let read = b.read_step(1, "/plt").unwrap();
        // Every logical path round-trips byte-exactly, with keys intact.
        assert_eq!(read.logical_content("/plt/L0/a"), Some(b"AA".to_vec()));
        assert_eq!(read.logical_content("/plt/L0/b"), Some(b"BBB".to_vec()));
        assert_eq!(read.logical_content("/plt/L1/c"), Some(b"CCCC".to_vec()));
        assert_eq!(
            read.logical_content("/plt/Header"),
            Some(b"hdr1".to_vec()),
            "metadata comes back out of the index blob"
        );
        assert_eq!(
            read.logical_content("/plt/job_info"),
            Some(b"jobinfo".to_vec())
        );
        // Physical accounting: index + two touched subfiles, seeked bytes.
        assert_eq!(read.stats.files, 3);
        assert_eq!(read.stats.requests.len(), 3);
        assert!(read
            .stats
            .requests
            .iter()
            .any(|r| r.path == "/plt/bp00001/md.idx"));
        // The tracker read plane sees logical bytes only (no table).
        assert_eq!(tracker.total_read_bytes_of(IoKind::Data), 9);
        assert_eq!(tracker.total_read_bytes_of(IoKind::Metadata), 11);
    }

    #[test]
    fn read_step_errors_on_missing_materialized_subfile() {
        // A lost write must surface as NotFound, not silently degrade to
        // a modeled read (mirrors the fpp/deferred behaviour).
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/f", b"bytes")).unwrap();
        b.end_step().unwrap();
        // Simulate the loss: a filesystem holding the index but not the
        // subfile (MemFs has no delete), served to a reader that carries
        // the writer's retained step state.
        let empty = MemFs::new();
        let idx = fs.read_file("/bp00001/md.idx").unwrap();
        empty.write_file("/bp00001/md.idx", &idx).unwrap();
        let mut reader = Aggregated::new(&empty as &dyn Vfs, &tracker, 2);
        reader.retained = b.retained.clone();
        let err = reader.read_step(1, "/").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "{err}");
    }

    #[test]
    fn index_paths_with_spaces_round_trip() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/run 1/Cell D", b"spaced"))
            .unwrap();
        b.end_step().unwrap();
        let read = b.read_step(1, "/").unwrap();
        assert_eq!(
            read.logical_content("/run 1/Cell D"),
            Some(b"spaced".to_vec())
        );
    }

    #[test]
    fn read_step_models_account_only_steps() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/");
        for task in 0..4u32 {
            b.put(Put {
                key: IoKey {
                    step: 1,
                    level: 0,
                    task,
                },
                kind: IoKind::Data,
                path: format!("/f{task}"),
                payload: Payload::Size(1000),
            })
            .unwrap();
        }
        b.end_step().unwrap();
        assert_eq!(fs.nfiles(), 0);
        let read = b.read_step(1, "/").unwrap();
        assert_eq!(read.chunks.len(), 4);
        assert!(read
            .chunks
            .iter()
            .all(|c| matches!(c.payload, Payload::Size(1000))));
        // Index + 2 subfiles, all modeled.
        assert_eq!(read.stats.files, 3);
        assert_eq!(tracker.total_read_bytes(), 4000);
    }

    #[test]
    fn account_only_step_writes_nothing() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Aggregated::new(&fs as &dyn Vfs, &tracker, 2);
        b.begin_step(1, "/");
        for task in 0..4u32 {
            b.put(Put {
                key: IoKey {
                    step: 1,
                    level: 0,
                    task,
                },
                kind: IoKind::Data,
                path: format!("/f{task}"),
                payload: Payload::Size(1000),
            })
            .unwrap();
        }
        let stats = b.end_step().unwrap();
        assert_eq!(fs.nfiles(), 0);
        assert_eq!(stats.files, 3); // 2 aggregators + index
        assert_eq!(stats.requests.len(), 3);
        assert_eq!(tracker.total_bytes(), 4000);
    }
}
