//! File-per-process backend: the workspace's original N-to-N write path,
//! refactored behind [`IoBackend`].
//!
//! Every distinct put path in a step becomes one physical file whose
//! content is the concatenation of its puts in submission order. That
//! single rule reproduces both prior behaviours: AMReX plotfile writers
//! choose one path per `(rank, level)` (true N-to-N), and MACSio's MIF
//! mode points the ranks of a file group at one shared group path
//! (baton-passing appends).

use crate::backend::{
    unsupported_read, ChunkRead, EngineReport, IoBackend, Payload, Put, ReadStats, StepRead,
    StepStats, TrackerHandle, VfsHandle,
};
use crate::selection::ReadSelection;
use bytes::Bytes;
use iosim::{IoKey, IoKind, ReadRequest, WriteRequest};
use std::collections::HashMap;
use std::io;

/// Boundaries of one put inside a coalesced physical file — what a
/// restart reader needs to slice the file back into logical chunks.
#[derive(Clone, Debug)]
pub(crate) struct ChunkSpan {
    pub key: IoKey,
    pub kind: IoKind,
    /// Physical offset inside the file.
    pub offset: u64,
    /// Physical length.
    pub len: u64,
    /// Logical (pre-compression) length.
    pub logical_len: u64,
}

/// One physical file being assembled for the open step.
#[derive(Debug, Default)]
pub(crate) struct FileBuild {
    /// Rank attributed to the write request (first producer).
    pub rank: usize,
    /// Materialized content as shared segments in submission order
    /// (empty in account-only mode) — adopted zero-copy from the puts.
    pub segs: Vec<Bytes>,
    /// Total physical payload bytes (tracks `content.len()` unless
    /// account-only).
    pub bytes: u64,
    /// Total logical (pre-compression) payload bytes.
    pub logical_bytes: u64,
    /// True when any payload arrived as a bare size.
    pub account_only: bool,
    /// Per-put boundaries, in submission order.
    pub chunks: Vec<ChunkSpan>,
}

/// Coalesces puts by path, preserving first-put order.
#[derive(Debug, Default)]
pub(crate) struct StepBuild {
    pub step: u32,
    order: Vec<String>,
    files: HashMap<String, FileBuild>,
}

impl StepBuild {
    pub fn new(step: u32) -> Self {
        Self {
            step,
            order: Vec::new(),
            files: HashMap::new(),
        }
    }

    /// Appends a put to its file, creating the file on first use.
    pub fn push(&mut self, put: Put) {
        let build = match self.files.get_mut(&put.path) {
            Some(b) => b,
            None => {
                self.order.push(put.path.clone());
                self.files.entry(put.path.clone()).or_insert(FileBuild {
                    rank: put.key.task as usize,
                    ..FileBuild::default()
                })
            }
        };
        build.chunks.push(ChunkSpan {
            key: put.key,
            kind: put.kind,
            offset: build.bytes,
            len: put.payload.len(),
            logical_len: put.payload.logical_len(),
        });
        build.bytes += put.payload.len();
        build.logical_bytes += put.payload.logical_len();
        match put.payload {
            Payload::Bytes(b) | Payload::Encoded { data: b, .. } => build.segs.push(b),
            Payload::Size(_) | Payload::EncodedSize { .. } => build.account_only = true,
        }
    }

    /// Finished files in first-put order.
    pub fn into_files(mut self) -> Vec<(String, FileBuild)> {
        self.order
            .drain(..)
            .map(|path| {
                let build = self.files.remove(&path).expect("ordered path exists");
                (path, build)
            })
            .collect()
    }
}

/// One written file as remembered for the read path (no content; byte
/// totals derive from the chunk spans).
#[derive(Clone, Debug)]
pub(crate) struct ManifestFile {
    pub path: String,
    pub rank: usize,
    pub account_only: bool,
    pub chunks: Vec<ChunkSpan>,
}

/// Per-step manifest of the N-to-N layout, retained so `read_step` can
/// slice the coalesced files back into logical chunks (the file format
/// itself stores no boundaries — exactly like the original writers).
///
/// Manifests are kept for *every* step because wr-mode workloads read
/// all dumps back, and they hold only spans and paths (tens of bytes per
/// put), never payload content — a deliberate memory-for-readability
/// trade even in write-only runs.
pub(crate) type StepManifest = Vec<ManifestFile>;

/// Reads one step back through its manifest: the shared read path of the
/// [`FilePerProcess`] and [`crate::Deferred`] backends (identical
/// physical layout, different write timing). Materialized files must be
/// on the filesystem; truncated retained content (content-limited
/// [`iosim::MemFs`]) degrades to a modeled size-only read.
///
/// Only chunks matching `sel` are returned and fetched: a file none of
/// whose chunks match is not opened at all, and a partially matching
/// file is seeked through the manifest's spans, so its read request
/// carries only the matched bytes (the manifest is what makes the
/// write-optimized N-to-N layout selectively readable — the file format
/// itself stores no boundaries).
pub(crate) fn read_manifest_step(
    vfs: &VfsHandle<'_>,
    tracker: &TrackerHandle<'_>,
    manifest: &StepManifest,
    step: u32,
    sel: &ReadSelection,
) -> io::Result<StepRead> {
    let mut out = StepRead {
        stats: ReadStats {
            step,
            ..ReadStats::default()
        },
        ..StepRead::default()
    };
    for file in manifest {
        let matched: Vec<&ChunkSpan> = file
            .chunks
            .iter()
            .filter(|span| sel.matches(&span.key, &file.path))
            .collect();
        if matched.is_empty() {
            continue; // file untouched: no open, no bytes
        }
        let content = if file.account_only {
            None
        } else {
            let c = vfs.read_file_exact_shared(&file.path);
            if c.is_none() && vfs.file_size(&file.path).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("read_step: missing file '{}'", file.path),
                ));
            }
            c
        };
        let mut ranges = RangeCoalescer::new();
        for span in &matched {
            let payload = match &content {
                Some(bytes) => {
                    // O(1) sub-view sharing the file's stored buffer.
                    let slice =
                        bytes.slice(span.offset as usize..(span.offset + span.len) as usize);
                    if span.len == span.logical_len {
                        Payload::Bytes(slice)
                    } else {
                        // Encoded by a compression stage; the stage (or
                        // the caller) decodes with the logical length.
                        Payload::Encoded {
                            data: slice,
                            logical: span.logical_len,
                        }
                    }
                }
                None => Payload::Size(span.logical_len),
            };
            tracker.record_read(span.key, span.kind, span.logical_len);
            ranges.push(span.offset, span.len);
            out.stats.logical_bytes += span.logical_len;
            out.chunks.push(ChunkRead {
                key: span.key,
                kind: span.kind,
                path: file.path.clone(),
                payload,
            });
        }
        out.stats.files += 1;
        out.stats.bytes += ranges.bytes();
        ranges.requests_into(file.rank, &file.path, &mut out.stats.requests);
    }
    Ok(out)
}

/// Coalesces byte spans of one file into maximal contiguous ranges — a
/// selective reader issues one request (one seek + fetch) per range, so
/// scattered matches cost more opens than clustered ones. This is the
/// accounting that makes layout *contiguity*, not just byte volume, a
/// simulated quantity (the lever online reorganization pulls).
pub(crate) struct RangeCoalescer {
    ranges: Vec<(u64, u64)>,
}

impl RangeCoalescer {
    pub fn new() -> Self {
        Self { ranges: Vec::new() }
    }

    /// Adds a span, merging it into the previous range when contiguous.
    /// Spans must arrive in non-decreasing offset order (read paths walk
    /// their chunk tables in layout order).
    pub fn push(&mut self, offset: u64, len: u64) {
        match self.ranges.last_mut() {
            Some((start, rlen)) if *start + *rlen == offset => *rlen += len,
            _ => self.ranges.push((offset, len)),
        }
    }

    /// Total bytes across all ranges.
    pub fn bytes(&self) -> u64 {
        self.ranges.iter().map(|(_, l)| *l).sum()
    }

    /// Emits one [`ReadRequest`] per contiguous range.
    pub fn requests_into(&self, rank: usize, path: &str, out: &mut Vec<ReadRequest>) {
        for &(_, len) in &self.ranges {
            out.push(ReadRequest {
                rank,
                path: path.to_string(),
                bytes: len,
                start: 0.0,
            });
        }
    }
}

/// Builds the retained manifest from a step's finished files.
pub(crate) fn manifest_of(files: &[(String, FileBuild)]) -> StepManifest {
    files
        .iter()
        .map(|(path, build)| ManifestFile {
            path: path.clone(),
            rank: build.rank,
            account_only: build.account_only,
            chunks: build.chunks.clone(),
        })
        .collect()
}

/// The N-to-N backend (see module docs).
pub struct FilePerProcess<'a> {
    vfs: VfsHandle<'a>,
    tracker: TrackerHandle<'a>,
    cur: Option<StepBuild>,
    /// Per-step layout manifests for the read path.
    manifests: HashMap<u32, StepManifest>,
    report: EngineReport,
}

impl<'a> FilePerProcess<'a> {
    /// A backend writing through `vfs` and recording into `tracker`.
    pub fn new(vfs: impl Into<VfsHandle<'a>>, tracker: impl Into<TrackerHandle<'a>>) -> Self {
        Self {
            vfs: vfs.into(),
            tracker: tracker.into(),
            cur: None,
            manifests: HashMap::new(),
            report: EngineReport::default(),
        }
    }
}

impl IoBackend for FilePerProcess<'_> {
    fn name(&self) -> String {
        "fpp".to_string()
    }

    fn begin_step(&mut self, step: u32, _container: &str) {
        assert!(self.cur.is_none(), "begin_step: step already open");
        self.cur = Some(StepBuild::new(step));
    }

    fn create_dir_all(&mut self, path: &str) -> io::Result<()> {
        self.vfs.create_dir_all(path)
    }

    fn put(&mut self, put: Put) -> io::Result<()> {
        let cur = self.cur.as_mut().expect("put: no open step");
        self.tracker
            .record(put.key, put.kind, put.payload.logical_len());
        cur.push(put);
        Ok(())
    }

    fn end_step(&mut self) -> io::Result<StepStats> {
        let cur = self.cur.take().expect("end_step: no open step");
        let step = cur.step;
        let mut stats = StepStats {
            step,
            ..StepStats::default()
        };
        let files = cur.into_files();
        self.manifests.insert(step, manifest_of(&files));
        for (path, build) in files {
            if !build.account_only {
                let written = self.vfs.write_file_concat(&path, &build.segs)?;
                debug_assert_eq!(written, build.bytes);
            }
            stats.files += 1;
            stats.bytes += build.bytes;
            stats.logical_bytes += build.logical_bytes;
            stats.requests.push(WriteRequest {
                rank: build.rank,
                path,
                bytes: build.bytes,
                start: 0.0,
            });
        }
        self.report.steps += 1;
        self.report.files += stats.files;
        self.report.bytes += stats.bytes;
        self.report.logical_bytes += stats.logical_bytes;
        Ok(stats)
    }

    fn read_selection(
        &mut self,
        step: u32,
        _container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        assert!(self.cur.is_none(), "read_step: step still open");
        let manifest = self
            .manifests
            .get(&step)
            .ok_or_else(|| unsupported_read(&self.name(), step, sel, "step was never written"))?;
        read_manifest_step(&self.vfs, &self.tracker, manifest, step, sel)
    }

    fn close(&mut self) -> io::Result<EngineReport> {
        assert!(self.cur.is_none(), "close: step still open");
        Ok(self.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

    fn put(step: u32, task: u32, path: &str, data: &[u8]) -> Put {
        Put {
            key: IoKey {
                step,
                level: 0,
                task,
            },
            kind: IoKind::Data,
            path: path.to_string(),
            payload: Payload::Bytes(data.to_vec().into()),
        }
    }

    #[test]
    fn one_file_per_distinct_path() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        b.begin_step(1, "/");
        b.put(put(1, 0, "/f0", b"aa")).unwrap();
        b.put(put(1, 1, "/f1", b"bbb")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.bytes, 5);
        assert_eq!(fs.nfiles(), 2);
        assert_eq!(fs.read_file("/f1"), Some(b"bbb".to_vec()));
        assert_eq!(stats.requests[0].rank, 0);
        assert_eq!(stats.requests[1].rank, 1);
    }

    #[test]
    fn shared_path_coalesces_like_mif_baton_passing() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        b.begin_step(1, "/");
        b.put(put(1, 0, "/group0", b"r0")).unwrap();
        b.put(put(1, 1, "/group0", b"r1")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 1);
        assert_eq!(fs.read_file("/group0"), Some(b"r0r1".to_vec()));
        // Request attributed to the first rank in the group.
        assert_eq!(stats.requests[0].rank, 0);
        // Tracker still records per-rank bytes.
        assert_eq!(tracker.bytes_per_task(1, 0), vec![2, 2]);
    }

    #[test]
    fn account_only_skips_physical_writes() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        b.begin_step(3, "/");
        b.put(Put {
            key: IoKey {
                step: 3,
                level: 1,
                task: 2,
            },
            kind: IoKind::Data,
            path: "/big".into(),
            payload: Payload::Size(1 << 30),
        })
        .unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(fs.nfiles(), 0, "no physical write");
        assert_eq!(stats.bytes, 1 << 30);
        assert_eq!(stats.requests[0].bytes, 1 << 30);
        assert_eq!(tracker.total_bytes(), 1 << 30);
    }

    #[test]
    fn read_step_round_trips_written_chunks() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        b.begin_step(1, "/");
        b.put(put(1, 0, "/group", b"r0r0")).unwrap();
        b.put(put(1, 1, "/group", b"r1")).unwrap();
        b.put(put(1, 2, "/own", b"solo")).unwrap();
        b.end_step().unwrap();

        let read = b.read_step(1, "/").unwrap();
        // Chunk-level round trip with keys intact.
        assert_eq!(read.chunks.len(), 3);
        assert_eq!(read.logical_content("/group"), Some(b"r0r0r1".to_vec()));
        assert_eq!(read.logical_content("/own"), Some(b"solo".to_vec()));
        assert_eq!(read.chunks[1].key.task, 1);
        // Physical accounting: one request per file, whole-file bytes.
        assert_eq!(read.stats.files, 2);
        assert_eq!(read.stats.bytes, 10);
        assert_eq!(read.stats.logical_bytes, 10);
        assert_eq!(read.stats.requests.len(), 2);
        // The tracker's read plane mirrors the write plane.
        assert_eq!(tracker.total_read_bytes(), 10);
        assert_eq!(tracker.total_bytes(), 10, "writes untouched");
    }

    #[test]
    fn read_step_models_account_only_chunks() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        b.begin_step(2, "/");
        b.put(Put {
            key: IoKey {
                step: 2,
                level: 1,
                task: 0,
            },
            kind: IoKind::Data,
            path: "/big".into(),
            payload: Payload::Size(1 << 20),
        })
        .unwrap();
        b.end_step().unwrap();
        let read = b.read_step(2, "/").unwrap();
        assert!(matches!(read.chunks[0].payload, Payload::Size(n) if n == 1 << 20));
        assert_eq!(read.stats.bytes, 1 << 20, "modeled physical read");
        assert_eq!(read.stats.requests[0].bytes, 1 << 20);
        assert_eq!(tracker.total_read_bytes(), 1 << 20);
    }

    #[test]
    fn read_step_of_unwritten_step_errors() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        assert!(b.read_step(9, "/").is_err());
    }

    #[test]
    fn close_reports_run_totals() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = FilePerProcess::new(&fs as &dyn Vfs, &tracker);
        for step in 1..=3 {
            b.begin_step(step, "/");
            b.put(put(step, 0, &format!("/s{step}"), b"xy")).unwrap();
            b.end_step().unwrap();
        }
        let report = b.close().unwrap();
        assert_eq!(report.steps, 3);
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, 6);
        assert_eq!(report.logical_bytes, 6, "no codec: physical == logical");
        assert_eq!(report.overhead_bytes, 0);
    }
}
