//! Online data-layout reorganization: rewriting a written step from its
//! write-optimized layout into a read-optimized one.
//!
//! Wan et al. ("Improving I/O Performance for Exascale Applications
//! through Online Data Layout Reorganization") show that the layout a
//! parallel writer produces — per-rank coalesced files, BP-style
//! aggregator subfiles with one monolithic index — is the wrong layout
//! for the selective reads post-hoc analysis issues, and that rewriting
//! the data *online* (while it is still hot, charged like any other I/O)
//! makes those reads cheap. This module is that pass:
//!
//! 1. [`Reorganizer::reorganize`] reads a finished step back through its
//!    source backend (the full stack, so compressed chunks arrive
//!    decoded), re-clusters the data chunks **by level, then by logical
//!    path** (the field axis), re-encodes them through the
//!    reorganizer's own codec, and writes one coalesced file per level
//!    plus a rewritten, *segmented* index:
//!
//!    ```text
//!    <container>/reorg00004/level.0     level-0 chunks, path-sorted
//!    <container>/reorg00004/level.1
//!    <container>/reorg00004/reorg.idx   directory + per-level chunk
//!                                       tables + metadata blob
//!    ```
//!
//! 2. [`Reorganizer::read_selection`] then serves analysis reads from
//!    the new layout. Where the write-optimized layouts pay a
//!    whole-index fetch and touch every subfile a selection's chunks
//!    were scattered across, the reorganized reader fetches the small
//!    index *directory*, only the chunk-table segments of the levels
//!    the selection can touch ([`ReadSelection::level_range`]), the
//!    matched metadata bytes, and one contiguous run per touched level
//!    file — strictly fewer physical bytes and fewer file opens for
//!    by-level and by-field queries (the `analysis_sweep` example and
//!    regression tests pin the inequality).
//!
//! Both sides of the trade are priced: [`ReorgStats`] carries the source
//! read's accounting, the rewrite's write requests, and the
//! decode+re-encode CPU, so a campaign can answer "how many selective
//! reads amortize one reorganization?" with simulated numbers instead
//! of an assumption. Reorganization I/O flows through the same tracker
//! read plane and burst scheduler as every other phase.
//!
//! One modeled trade to know about: clustering concentrates a level's
//! bytes into one file, and `iosim`'s storage model assigns whole files
//! to single servers — so on wide stripes the raw layout's scatter can
//! buy back transfer parallelism that the clustered layout gives up.
//! The byte-volume and open-count wins are unconditional; the
//! wall-clock win is cleanest on bandwidth-bound (few-server) storage,
//! which is where the examples and regression tests pin it.

use crate::backend::{
    ChunkRead, IoBackend, Payload, ReadStats, StepRead, TrackerHandle, VfsHandle,
};
use crate::codec::{encode_payload, Codec, CodecContext, CodecSpec};
use crate::selection::ReadSelection;
use iosim::{IoKey, IoKind, ReadRequest, WriteRequest};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;

/// One chunk retained in a reorganized level cluster (physical spans
/// inside the level file).
#[derive(Clone)]
struct ReorgChunk {
    key: IoKey,
    path: String,
    offset: u64,
    len: u64,
    logical_len: u64,
}

/// One level cluster of a reorganized step.
struct LevelCluster {
    /// Physical path of the coalesced level file.
    file: String,
    /// Total physical bytes of the level file.
    bytes: u64,
    /// True when any chunk was account-only (the file is then modeled,
    /// never materialized — mirroring the backends' per-file rule).
    account_only: bool,
    /// Byte length of this level's chunk-table segment in the index.
    table_bytes: u64,
    /// Chunks in cluster order (path-sorted, stable).
    chunks: Vec<ReorgChunk>,
}

/// One metadata chunk retained in the index's embedded blob.
struct MetaEntry {
    key: IoKey,
    path: String,
    /// Offset inside the metadata blob.
    offset: u64,
    len: u64,
    logical_len: u64,
}

/// Everything retained about one reorganized step.
struct ReorgStep {
    /// Physical path of the rewritten index.
    index_path: String,
    /// Directory header bytes (always fetched by a reader).
    header_bytes: u64,
    /// Byte length of the metadata table segment.
    meta_table_bytes: u64,
    /// Offset of the metadata blob inside the index file.
    blob_offset: u64,
    /// True when the index was physically written.
    index_written: bool,
    /// Level clusters, coarsest first.
    levels: BTreeMap<u32, LevelCluster>,
    /// Metadata entries in submission order.
    meta: Vec<MetaEntry>,
    /// True when any metadata payload was account-only.
    meta_account_only: bool,
}

/// Accounting of one [`Reorganizer::reorganize`] pass: what the rewrite
/// cost, on both planes, so callers can charge it to the simulated
/// clock like any other burst.
#[derive(Clone, Debug, Default)]
pub struct ReorgStats {
    /// The step that was reorganized.
    pub step: u32,
    /// The source fetch: a full-step read through the source backend
    /// (its requests time the read burst; its `codec_seconds` is the
    /// decode CPU of the source's compression stage).
    pub read: ReadStats,
    /// Physical files written in the read-optimized layout (level
    /// clusters + index).
    pub files: u64,
    /// Physical bytes written (cluster payloads + index).
    pub bytes: u64,
    /// Index bytes inside `bytes` (directory, tables, metadata blob —
    /// bookkeeping, like the aggregation index).
    pub overhead_bytes: u64,
    /// Modeled CPU seconds spent *re-encoding* chunks into the new
    /// layout (the decode side is in `read.codec_seconds`).
    pub codec_seconds: f64,
    /// Write requests of the rewrite, for burst timing.
    pub requests: Vec<WriteRequest>,
}

/// The online reorganization pass and the read-optimized layout it
/// produces (see module docs).
pub struct Reorganizer<'a> {
    vfs: VfsHandle<'a>,
    tracker: TrackerHandle<'a>,
    codec: Box<dyn Codec>,
    steps: HashMap<u32, ReorgStep>,
}

impl<'a> Reorganizer<'a> {
    /// A reorganizer writing through `vfs`, recording its analysis reads
    /// into `tracker`'s read plane, and re-encoding data chunks through
    /// `codec` (pass the run's codec to keep the reorganized layout at
    /// wire size; [`CodecSpec::Identity`] stores logical bytes).
    pub fn new(
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
        codec: CodecSpec,
    ) -> Self {
        Self {
            vfs: vfs.into(),
            tracker: tracker.into(),
            codec: codec.build(),
            steps: HashMap::new(),
        }
    }

    fn step_dir(container: &str, step: u32) -> String {
        let base = container.trim_end_matches('/');
        format!("{base}/reorg{step:05}")
    }

    /// Rewrites `step` (already written under `container` through
    /// `source`) into the read-optimized layout. The source read goes
    /// through `source`'s full read path — deferred backends barrier
    /// their drains, compression stages decode — and its accounting is
    /// returned in [`ReorgStats::read`] so the caller can price the
    /// fetch; the rewrite's files land next to the originals under
    /// `<container>/reorg<step>/`.
    pub fn reorganize(
        &mut self,
        source: &mut dyn IoBackend,
        step: u32,
        container: &str,
    ) -> io::Result<ReorgStats> {
        let src = source.read_step(step, container)?;
        let dir = Self::step_dir(container, step);
        self.vfs.create_dir_all(&dir)?;
        let mut stats = ReorgStats {
            step,
            read: src.stats.clone(),
            ..ReorgStats::default()
        };

        // Split and re-cluster: data by (level, path) — stable sort, so
        // chunks of one path keep their submission order and concatenate
        // back to the path's logical content — metadata into the index
        // blob in submission order.
        let mut data: Vec<&ChunkRead> = Vec::new();
        let mut meta_src: Vec<&ChunkRead> = Vec::new();
        for c in &src.chunks {
            match c.kind {
                IoKind::Data => data.push(c),
                IoKind::Metadata => meta_src.push(c),
            }
        }
        data.sort_by(|a, b| a.key.level.cmp(&b.key.level).then(a.path.cmp(&b.path)));

        let mut levels: BTreeMap<u32, LevelCluster> = BTreeMap::new();
        let mut encode_ns = 0.0f64;
        let mut contents: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        for c in &data {
            let level = c.key.level;
            let cluster = levels.entry(level).or_insert_with(|| LevelCluster {
                file: format!("{dir}/level.{level}"),
                bytes: 0,
                account_only: false,
                table_bytes: 0,
                chunks: Vec::new(),
            });
            let ctx = CodecContext {
                level,
                kind: c.kind,
                path: &c.path,
            };
            // Re-encode through the reorganizer's codec: the source stack
            // delivered logical bytes (or a logical size), and the new
            // layout should cost what the old one did on the wire.
            let logical = c.payload.logical_len();
            encode_ns += logical as f64 * self.codec.cpu_ns_per_byte();
            let (encoded, _) = encode_payload(self.codec.as_ref(), c.payload.clone(), &ctx);
            let len = encoded.len();
            match encoded {
                Payload::Bytes(b) | Payload::Encoded { data: b, .. } => {
                    contents.entry(level).or_default().extend_from_slice(&b);
                }
                Payload::Size(_) | Payload::EncodedSize { .. } => cluster.account_only = true,
            }
            cluster.chunks.push(ReorgChunk {
                key: c.key,
                path: c.path.clone(),
                offset: cluster.bytes,
                len,
                logical_len: logical,
            });
            cluster.bytes += len;
        }
        stats.codec_seconds = encode_ns / 1e9;

        // Metadata blob (uncompressed, like the compression stage).
        let mut meta = Vec::new();
        let mut blob = Vec::new();
        let mut meta_account_only = false;
        for c in &meta_src {
            let len = c.payload.len();
            match &c.payload {
                Payload::Bytes(b) => blob.extend_from_slice(b),
                Payload::Encoded { data, .. } => blob.extend_from_slice(data),
                Payload::Size(_) | Payload::EncodedSize { .. } => meta_account_only = true,
            }
            meta.push(MetaEntry {
                key: c.key,
                path: c.path.clone(),
                offset: meta
                    .last()
                    .map(|m: &MetaEntry| m.offset + m.len)
                    .unwrap_or(0),
                len,
                logical_len: c.payload.logical_len(),
            });
        }

        // The rewritten index: a small directory (one line per segment)
        // followed by per-level chunk tables, the metadata table, and the
        // metadata blob. The directory is what makes the index
        // *partially* fetchable — a selective reader pulls the directory
        // plus only the segments its level range touches, instead of the
        // monolithic blob the write-optimized layouts store.
        let mut tables: BTreeMap<u32, String> = BTreeMap::new();
        for (&level, cluster) in &levels {
            let mut t = String::new();
            for c in &cluster.chunks {
                let _ = writeln!(
                    t,
                    "{offset} {len} {logical_len} {step} {level} {task} {path}",
                    offset = c.offset,
                    len = c.len,
                    logical_len = c.logical_len,
                    step = c.key.step,
                    level = c.key.level,
                    task = c.key.task,
                    path = c.path,
                );
            }
            tables.insert(level, t);
        }
        let mut meta_table = String::new();
        for m in &meta {
            let _ = writeln!(
                meta_table,
                "{offset} {len} {logical_len} {step} {level} {task} {path}",
                offset = m.offset,
                len = m.len,
                logical_len = m.logical_len,
                step = m.key.step,
                level = m.key.level,
                task = m.key.task,
                path = m.path,
            );
        }
        let mut header = format!(
            "# io-engine reorg index, step {step}, codec {}\n",
            self.codec.name()
        );
        for (&level, cluster) in &levels {
            let _ = writeln!(
                header,
                "L {level} {file} {bytes} {table} {n}",
                file = cluster.file,
                bytes = cluster.bytes,
                table = tables[&level].len(),
                n = cluster.chunks.len(),
            );
        }
        let _ = writeln!(
            header,
            "M {n} {table} {blob}",
            n = meta.len(),
            table = meta_table.len(),
            blob = blob.len(),
        );

        let header_bytes = header.len() as u64;
        let mut index = header.into_bytes();
        for (&level, cluster) in levels.iter_mut() {
            cluster.table_bytes = tables[&level].len() as u64;
            index.extend_from_slice(tables[&level].as_bytes());
        }
        let meta_table_bytes = meta_table.len() as u64;
        index.extend_from_slice(meta_table.as_bytes());
        let blob_offset = index.len() as u64;
        index.extend_from_slice(&blob);
        let index_path = format!("{dir}/reorg.idx");
        let index_bytes = index.len() as u64;

        // Physical writes: level files whose content fully materialized,
        // and the index whenever anything did (mirrors the backends'
        // account-only rule: a fully modeled step stays write-free).
        let any_materialized =
            levels.values().any(|c| !c.account_only && c.bytes > 0) || !blob.is_empty();
        for (&level, cluster) in &levels {
            if !cluster.account_only {
                let written = self
                    .vfs
                    .write_file(&cluster.file, contents.get(&level).map_or(&[], |v| &v[..]))?;
                debug_assert_eq!(written, cluster.bytes);
            }
            stats.files += 1;
            stats.bytes += cluster.bytes;
            stats.requests.push(WriteRequest {
                // Attributed to the lowest task with data at this level.
                rank: cluster.chunks.iter().map(|c| c.key.task).min().unwrap_or(0) as usize,
                path: cluster.file.clone(),
                bytes: cluster.bytes,
                start: 0.0,
            });
        }
        let index_written = any_materialized && !meta_account_only;
        if index_written {
            let written = self.vfs.write_file(&index_path, &index)?;
            debug_assert_eq!(written, index_bytes);
        }
        stats.files += 1;
        stats.bytes += index_bytes;
        stats.overhead_bytes += index_bytes;
        stats.requests.push(WriteRequest {
            rank: 0,
            path: index_path.clone(),
            bytes: index_bytes,
            start: 0.0,
        });

        self.steps.insert(
            step,
            ReorgStep {
                index_path,
                header_bytes,
                meta_table_bytes,
                blob_offset,
                index_written,
                levels,
                meta,
                meta_account_only,
            },
        );
        Ok(stats)
    }

    /// Serves an analysis read from the reorganized layout of `step`.
    ///
    /// Physical accounting, per the layout's design:
    ///
    /// * one index request covering the directory, the chunk-table
    ///   segments of the levels the selection can touch, the metadata
    ///   table, and the *matched* metadata bytes (sliced out of the
    ///   blob at directory-known offsets);
    /// * one request per touched level file carrying only the matched
    ///   chunk bytes (matched chunks of one path are contiguous by
    ///   construction); level files outside the selection's
    ///   [`ReadSelection::level_range`] — and level files with no
    ///   matching chunk — are not opened.
    ///
    /// Returned chunks are the same set a source-backend
    /// `read_selection` would return (data re-clustered in layout
    /// order), decoded through the reorganizer's codec, and recorded in
    /// the tracker's read plane at logical size.
    pub fn read_selection(&self, step: u32, sel: &ReadSelection) -> io::Result<StepRead> {
        let info = self.steps.get(&step).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("reorg read: step {step} was never reorganized"),
            )
        })?;
        let mut out = StepRead {
            stats: ReadStats {
                step,
                ..ReadStats::default()
            },
            ..StepRead::default()
        };

        // Index fetch: directory + touched table segments + metadata
        // table + matched metadata bytes.
        let level_range = sel.level_range();
        let in_range = |level: u32| match level_range {
            None => true,
            Some((lo, hi)) => (lo..=hi).contains(&level),
        };
        let mut index_fetch = info.header_bytes + info.meta_table_bytes;
        for (&level, cluster) in &info.levels {
            if in_range(level) {
                index_fetch += cluster.table_bytes;
            }
        }
        let matched_meta: Vec<&MetaEntry> = info
            .meta
            .iter()
            .filter(|m| sel.matches(&m.key, &m.path))
            .collect();
        index_fetch += matched_meta.iter().map(|m| m.len).sum::<u64>();
        out.stats.files += 1;
        out.stats.bytes += index_fetch;
        out.stats.requests.push(ReadRequest {
            rank: 0,
            path: info.index_path.clone(),
            bytes: index_fetch,
            start: 0.0,
        });

        // The on-disk index content, for slicing materialized metadata —
        // loaded only when a matched metadata entry will consume it
        // (data-only queries, the common analysis case, skip the copy).
        let index_content =
            (!matched_meta.is_empty() && !info.meta_account_only && info.index_written)
                .then(|| self.vfs.read_file_exact_shared(&info.index_path))
                .flatten();

        // Data: matched chunks per level cluster, decoded.
        let mut decode_ns = 0.0f64;
        for (&level, cluster) in &info.levels {
            if !in_range(level) {
                continue;
            }
            let matched: Vec<&ReorgChunk> = cluster
                .chunks
                .iter()
                .filter(|c| sel.matches(&c.key, &c.path))
                .collect();
            if matched.is_empty() {
                continue;
            }
            let content = if cluster.account_only {
                None
            } else {
                let c = self.vfs.read_file_exact_shared(&cluster.file);
                if c.is_none() && self.vfs.file_size(&cluster.file).is_none() {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("reorg read: missing level file '{}'", cluster.file),
                    ));
                }
                c
            };
            let mut ranges = crate::fpp::RangeCoalescer::new();
            for chunk in matched {
                decode_ns += chunk.logical_len as f64 * self.codec.cpu_ns_per_byte();
                let payload = match &content {
                    Some(bytes) => {
                        // Zero-copy view into the level file; decode only
                        // when the chunk was actually encoded.
                        let slice =
                            bytes.slice(chunk.offset as usize..(chunk.offset + chunk.len) as usize);
                        if chunk.len == chunk.logical_len {
                            Payload::Bytes(slice)
                        } else {
                            let ctx = CodecContext {
                                level,
                                kind: IoKind::Data,
                                path: &chunk.path,
                            };
                            Payload::Bytes(
                                self.codec.decode(&slice, chunk.logical_len, &ctx).into(),
                            )
                        }
                    }
                    None => Payload::Size(chunk.logical_len),
                };
                self.tracker
                    .record_read(chunk.key, IoKind::Data, chunk.logical_len);
                ranges.push(chunk.offset, chunk.len);
                out.stats.logical_bytes += chunk.logical_len;
                out.chunks.push(ChunkRead {
                    key: chunk.key,
                    kind: IoKind::Data,
                    path: chunk.path.clone(),
                    payload,
                });
            }
            out.stats.files += 1;
            out.stats.bytes += ranges.bytes();
            ranges.requests_into(
                cluster.chunks.iter().map(|c| c.key.task).min().unwrap_or(0) as usize,
                &cluster.file,
                &mut out.stats.requests,
            );
        }
        out.stats.codec_seconds += decode_ns / 1e9;

        // Matched metadata, sliced out of the index blob.
        for m in matched_meta {
            let payload = match &index_content {
                Some(content) if !info.meta_account_only => {
                    let start = (info.blob_offset + m.offset) as usize;
                    Payload::Bytes(content.slice(start..start + m.len as usize))
                }
                _ => Payload::Size(m.logical_len),
            };
            self.tracker
                .record_read(m.key, IoKind::Metadata, m.logical_len);
            out.stats.logical_bytes += m.logical_len;
            out.chunks.push(ChunkRead {
                key: m.key,
                kind: IoKind::Metadata,
                path: m.path.clone(),
                payload,
            });
        }
        Ok(out)
    }

    /// Whole-step read from the reorganized layout
    /// ([`ReadSelection::Full`]).
    pub fn read_step(&self, step: u32) -> io::Result<StepRead> {
        self.read_selection(step, &ReadSelection::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Put;
    use crate::spec::BackendSpec;
    use iosim::{IoTracker, MemFs, Vfs};

    const FIELDS: [&str; 3] = ["density", "pressure", "velocity"];

    /// Writes a 3-level, 3-field synthetic AMR step through the given
    /// stack and returns the backend for reading.
    fn write_step<'a>(
        fs: &'a MemFs,
        tracker: &'a IoTracker,
        backend: BackendSpec,
        codec: CodecSpec,
        ntasks: u32,
    ) -> Box<dyn IoBackend + 'a> {
        let mut b = backend.build_with_codec(codec, fs as &dyn Vfs, tracker);
        b.begin_step(1, "/plt");
        b.create_dir_all("/plt").unwrap();
        for level in 0..3u32 {
            for task in 0..ntasks {
                for field in FIELDS {
                    let data: Vec<u8> = (0..64u32)
                        .flat_map(|i| ((i + task + level) as f64).to_le_bytes())
                        .collect();
                    b.put(Put {
                        key: IoKey {
                            step: 1,
                            level,
                            task,
                        },
                        kind: IoKind::Data,
                        path: format!("/plt/L{level}/{field}_{task:05}"),
                        payload: Payload::Bytes(data.into()),
                    })
                    .unwrap();
                }
            }
        }
        b.put(Put {
            key: IoKey {
                step: 1,
                level: 0,
                task: 0,
            },
            kind: IoKind::Metadata,
            path: "/plt/Header".to_string(),
            payload: Payload::Bytes(vec![b'h'; 400].into()),
        })
        .unwrap();
        b.end_step().unwrap();
        b
    }

    /// Canonical identity of a chunk: `(step, level, task, is_meta, path)`.
    type ChunkId = (u32, u32, u32, u8, String);

    fn chunk_key(c: &ChunkRead) -> ChunkId {
        (
            c.key.step,
            c.key.level,
            c.key.task,
            matches!(c.kind, IoKind::Metadata) as u8,
            c.path.clone(),
        )
    }

    fn sorted_contents(read: &StepRead) -> Vec<(ChunkId, Vec<u8>)> {
        let mut v: Vec<_> = read
            .chunks
            .iter()
            .map(|c| {
                let bytes = match &c.payload {
                    Payload::Bytes(b) => b.to_vec(),
                    Payload::Size(n) => format!("size:{n}").into_bytes(),
                    other => panic!("undecoded payload in read: {other:?}"),
                };
                (chunk_key(c), bytes)
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn reorganized_reads_return_the_same_chunks() {
        for codec in [CodecSpec::Identity, CodecSpec::Rle(2.0)] {
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let mut src = write_step(&fs, &tracker, BackendSpec::Aggregated(2), codec, 4);
            let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, codec);
            reorg.reorganize(src.as_mut(), 1, "/plt").unwrap();
            for sel in [
                ReadSelection::Full,
                ReadSelection::Level(1),
                ReadSelection::Field("pressure".into()),
                ReadSelection::parse("box:0-1,1-2").unwrap(),
            ] {
                let raw = src.read_selection(1, "/plt", &sel).unwrap();
                let reorganized = reorg.read_selection(1, &sel).unwrap();
                assert_eq!(
                    sorted_contents(&raw),
                    sorted_contents(&reorganized),
                    "codec {} sel {}",
                    codec.name(),
                    sel.name()
                );
                assert_eq!(raw.stats.logical_bytes, reorganized.stats.logical_bytes);
            }
        }
    }

    #[test]
    fn selective_reads_fetch_fewer_bytes_and_files_than_raw() {
        // The Wan et al. claim, as a regression: by-level and by-field
        // reads of the reorganized layout beat the same selection on the
        // raw aggregated layout on physical bytes AND file opens.
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut src = write_step(
            &fs,
            &tracker,
            BackendSpec::Aggregated(2),
            CodecSpec::Identity,
            8,
        );
        let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, CodecSpec::Identity);
        reorg.reorganize(src.as_mut(), 1, "/plt").unwrap();
        for sel in [
            ReadSelection::Level(1),
            ReadSelection::Field("density".into()),
        ] {
            let raw = src.read_selection(1, "/plt", &sel).unwrap();
            let opt = reorg.read_selection(1, &sel).unwrap();
            assert!(
                opt.stats.bytes < raw.stats.bytes,
                "{}: reorg {} must beat raw {}",
                sel.name(),
                opt.stats.bytes,
                raw.stats.bytes
            );
            assert!(
                opt.stats.files <= raw.stats.files,
                "{}: reorg opens {} vs raw {}",
                sel.name(),
                opt.stats.files,
                raw.stats.files
            );
            assert_eq!(opt.stats.logical_bytes, raw.stats.logical_bytes);
        }
    }

    #[test]
    fn level_files_cluster_chunks_by_path() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut src = write_step(
            &fs,
            &tracker,
            BackendSpec::FilePerProcess,
            CodecSpec::Identity,
            2,
        );
        let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, CodecSpec::Identity);
        let stats = reorg.reorganize(src.as_mut(), 1, "/plt").unwrap();
        // 3 level files + 1 index.
        assert_eq!(stats.files, 4);
        assert!(fs.file_size("/plt/reorg00001/level.0").is_some());
        assert!(fs.file_size("/plt/reorg00001/level.2").is_some());
        let idx = String::from_utf8(fs.read_file("/plt/reorg00001/reorg.idx").unwrap()).unwrap();
        assert!(idx.starts_with("# io-engine reorg index, step 1"));
        assert!(idx.contains("L 0 /plt/reorg00001/level.0"), "{idx}");
        assert!(idx.contains("M 1 "), "metadata directory line: {idx}");
        // Within the level file, the two density chunks precede pressure
        // (path-sorted clustering).
        let full = reorg.read_step(1).unwrap();
        let level0: Vec<&ChunkRead> = full
            .chunks
            .iter()
            .filter(|c| c.kind == IoKind::Data && c.key.level == 0)
            .collect();
        let paths: Vec<&str> = level0.iter().map(|c| c.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "cluster order is path-sorted");
        // The rewrite priced both planes.
        assert!(stats.read.bytes > 0);
        assert!(stats.bytes > 0);
        assert!(!stats.requests.is_empty());
    }

    #[test]
    fn account_only_steps_reorganize_as_modeled_layouts() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = BackendSpec::Aggregated(2).build_with_codec(
            CodecSpec::Identity,
            &fs as &dyn Vfs,
            &tracker,
        );
        b.begin_step(1, "/plt");
        for task in 0..4u32 {
            b.put(Put {
                key: IoKey {
                    step: 1,
                    level: task % 2,
                    task,
                },
                kind: IoKind::Data,
                path: format!("/plt/f{task}"),
                payload: Payload::Size(1000),
            })
            .unwrap();
        }
        b.end_step().unwrap();
        let before = fs.nfiles();
        let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, CodecSpec::Identity);
        let stats = reorg.reorganize(b.as_mut(), 1, "/plt").unwrap();
        assert_eq!(fs.nfiles(), before, "modeled rewrite stays write-free");
        assert_eq!(stats.files, 3, "2 level clusters + index, all modeled");
        let read = reorg.read_selection(1, &ReadSelection::Level(1)).unwrap();
        assert_eq!(read.chunks.len(), 2);
        assert!(read
            .chunks
            .iter()
            .all(|c| matches!(c.payload, Payload::Size(1000))));
        assert!(read.stats.bytes > 0, "modeled fetch is still accounted");
    }

    #[test]
    fn quant_reorg_round_trips_the_reconstruction() {
        // Lossy pipeline: the reorganized read must return the *same*
        // reconstruction the raw read returns (decode∘encode is a fixed
        // point), at the same wire size.
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let codec = CodecSpec::LossyQuant(8);
        let mut src = write_step(&fs, &tracker, BackendSpec::FilePerProcess, codec, 2);
        let mut reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, codec);
        let stats = reorg.reorganize(src.as_mut(), 1, "/plt").unwrap();
        let sel = ReadSelection::Field("velocity".into());
        let raw = src.read_selection(1, "/plt", &sel).unwrap();
        let opt = reorg.read_selection(1, &sel).unwrap();
        assert_eq!(sorted_contents(&raw), sorted_contents(&opt));
        assert!(stats.codec_seconds > 0.0, "re-encode CPU charged");
        assert!(opt.stats.codec_seconds > 0.0, "decode CPU charged");
        // Wire stays compressed: the level files hold encoded bytes.
        let level_bytes: u64 = (0..3)
            .filter_map(|l| fs.file_size(&format!("/plt/reorg00001/level.{l}")))
            .sum();
        let logical: u64 = reorg.read_step(1).unwrap().stats.logical_bytes;
        assert!(level_bytes < logical, "{level_bytes} vs {logical}");
    }

    #[test]
    fn unreorganized_step_errors() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let reorg = Reorganizer::new(&fs as &dyn Vfs, &tracker, CodecSpec::Identity);
        assert!(reorg.read_step(7).is_err());
    }
}
