//! Read selections: the query language of the analysis read plane.
//!
//! A restart reads a whole step back; post-hoc analysis almost never
//! does. The paper's AMR campaigns are written once and then read many
//! times by tools that want a *subset* — one refinement level for
//! visualization, one field for a time series, one spatial region around
//! a feature (Wan et al.; Strafella & Chapon make the same case for AMR
//! visualization reads). A [`ReadSelection`] names such a subset in
//! terms every backend retains about its chunks: the `(step, level,
//! task)` [`IoKey`] and the logical path.
//!
//! * [`ReadSelection::Full`] — everything; `read_selection` with `Full`
//!   is exactly [`crate::IoBackend::read_step`].
//! * [`ReadSelection::Level`] — chunks of one AMR level.
//! * [`ReadSelection::Field`] — chunks whose logical path contains a
//!   substring (the same matching rule the codec's per-field overrides
//!   use; for workloads that name fields in their paths this is a
//!   by-variable query).
//! * [`ReadSelection::Box`] — a rectangular box in the retained key
//!   space: an inclusive `(level, task)` range. Spatial queries lower to
//!   this through mesh-aware helpers (`plotfile::region_selection`) that
//!   map a region of index space to the ranks owning intersecting grids.
//!
//! The selection travels as a small string spec (`full`, `level:1`,
//! `field:density`, `box:0-1,2-5`), so CLIs (`macsio --read_pattern`)
//! and campaign configs carry it the same way they carry
//! [`crate::BackendSpec`] and [`crate::CodecSpec`].

use iosim::IoKey;
use serde::{Deserialize, Serialize};

/// An inclusive rectangle in the retained chunk-key space: levels
/// `level_lo..=level_hi` crossed with tasks `task_lo..=task_hi`.
///
/// This is how a *spatial* query reaches the io-engine: a layer that
/// knows the mesh (e.g. `plotfile::region_selection`) maps a box of
/// index space to the ranks whose grids intersect it and emits the
/// covering key box. The cover is conservative — a superset of the
/// exact owner set — which only ever over-fetches, never misses data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyBox {
    /// Lowest AMR level included.
    pub level_lo: u32,
    /// Highest AMR level included.
    pub level_hi: u32,
    /// Lowest task included.
    pub task_lo: u32,
    /// Highest task included.
    pub task_hi: u32,
}

impl KeyBox {
    /// True when `key` lies inside the box.
    pub fn contains(&self, key: &IoKey) -> bool {
        (self.level_lo..=self.level_hi).contains(&key.level)
            && (self.task_lo..=self.task_hi).contains(&key.task)
    }
}

/// Which chunks of a step an analysis read fetches (see module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ReadSelection {
    /// Every chunk — the restart semantics of `read_step`.
    #[default]
    Full,
    /// Chunks of one AMR level.
    Level(u32),
    /// Chunks whose logical path contains this substring.
    Field(String),
    /// Chunks whose key lies in an inclusive `(level, task)` box.
    Box(KeyBox),
}

impl ReadSelection {
    /// Parses a CLI spelling:
    /// `full` | `level:<l>` | `field:<substring>` |
    /// `box:<l0>[-<l1>],<t0>[-<t1>]` (inclusive ranges; a single value
    /// means a one-wide range).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match head {
            "full" | "all" => match arg {
                None => Ok(ReadSelection::Full),
                Some(a) => Err(format!("pattern 'full' takes no argument, got '{a}'")),
            },
            "level" => {
                let a = arg.ok_or("pattern 'level' needs a level number")?;
                let l = a.parse::<u32>().map_err(|_| format!("bad level '{a}'"))?;
                Ok(ReadSelection::Level(l))
            }
            "field" => {
                let a = arg.ok_or("pattern 'field' needs a path substring")?;
                if a.is_empty() {
                    return Err("pattern 'field' needs a non-empty substring".to_string());
                }
                Ok(ReadSelection::Field(a.to_string()))
            }
            "box" => {
                let a = arg.ok_or("pattern 'box' needs '<levels>,<tasks>'")?;
                let (levels, tasks) = a
                    .split_once(',')
                    .ok_or_else(|| format!("bad box '{a}' (expected '<levels>,<tasks>')"))?;
                let (level_lo, level_hi) = parse_range(levels)?;
                let (task_lo, task_hi) = parse_range(tasks)?;
                Ok(ReadSelection::Box(KeyBox {
                    level_lo,
                    level_hi,
                    task_lo,
                    task_hi,
                }))
            }
            other => Err(format!(
                "unknown read pattern '{other}' (expected full, level:<l>, field:<f>, or \
                 box:<l0>-<l1>,<t0>-<t1>)"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> String {
        match self {
            ReadSelection::Full => "full".to_string(),
            ReadSelection::Level(l) => format!("level:{l}"),
            ReadSelection::Field(f) => format!("field:{f}"),
            ReadSelection::Box(b) => format!(
                "box:{}-{},{}-{}",
                b.level_lo, b.level_hi, b.task_lo, b.task_hi
            ),
        }
    }

    /// True for the whole-step selection (lets callers keep the plain
    /// restart path).
    pub fn is_full(&self) -> bool {
        matches!(self, ReadSelection::Full)
    }

    /// True when a chunk written under `key` at logical `path` belongs to
    /// the selection. This one predicate defines the read contract: for
    /// any selection, `read_selection` returns exactly the chunks of a
    /// full read for which `matches` holds, in the backend's layout
    /// order (pinned by property tests across the backend × codec ×
    /// layout cube).
    pub fn matches(&self, key: &IoKey, path: &str) -> bool {
        match self {
            ReadSelection::Full => true,
            ReadSelection::Level(l) => key.level == *l,
            ReadSelection::Field(f) => path.contains(f.as_str()),
            ReadSelection::Box(b) => b.contains(key),
        }
    }

    /// The inclusive level range a selection can touch, when one is
    /// derivable from the selection alone (`None` means "any level" —
    /// field matching is path-based, so every level's chunks must be
    /// consulted). Read-optimized layouts use this to skip whole
    /// level clusters without consulting their chunk tables.
    pub fn level_range(&self) -> Option<(u32, u32)> {
        match self {
            ReadSelection::Full | ReadSelection::Field(_) => None,
            ReadSelection::Level(l) => Some((*l, *l)),
            ReadSelection::Box(b) => Some((b.level_lo, b.level_hi)),
        }
    }
}

fn parse_range(s: &str) -> Result<(u32, u32), String> {
    let (lo, hi) = match s.split_once('-') {
        Some((a, b)) => (a, b),
        None => (s, s),
    };
    let lo = lo
        .parse::<u32>()
        .map_err(|_| format!("bad range bound '{lo}'"))?;
    let hi = hi
        .parse::<u32>()
        .map_err(|_| format!("bad range bound '{hi}'"))?;
    if lo > hi {
        return Err(format!("empty range '{s}' (lo > hi)"));
    }
    Ok((lo, hi))
}

// Hand-written serde: the selection round-trips as its CLI spelling, so
// configs stay readable and the enum's payloads (strings, boxes) never
// leak a format of their own (mirrors `macsio::FileMode`).
impl Serialize for ReadSelection {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name())
    }
}

impl Deserialize for ReadSelection {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected a read-pattern string"))?;
        ReadSelection::parse(s).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(level: u32, task: u32) -> IoKey {
        IoKey {
            step: 1,
            level,
            task,
        }
    }

    #[test]
    fn parse_spellings() {
        assert_eq!(ReadSelection::parse("full").unwrap(), ReadSelection::Full);
        assert_eq!(
            ReadSelection::parse("level:2").unwrap(),
            ReadSelection::Level(2)
        );
        assert_eq!(
            ReadSelection::parse("field:density").unwrap(),
            ReadSelection::Field("density".into())
        );
        assert_eq!(
            ReadSelection::parse("box:0-1,2-5").unwrap(),
            ReadSelection::Box(KeyBox {
                level_lo: 0,
                level_hi: 1,
                task_lo: 2,
                task_hi: 5,
            })
        );
        // Single values are one-wide ranges.
        assert_eq!(
            ReadSelection::parse("box:1,3").unwrap(),
            ReadSelection::Box(KeyBox {
                level_lo: 1,
                level_hi: 1,
                task_lo: 3,
                task_hi: 3,
            })
        );
        assert!(ReadSelection::parse("level").is_err());
        assert!(ReadSelection::parse("field:").is_err());
        assert!(ReadSelection::parse("box:2-1,0-0").is_err(), "lo > hi");
        assert!(ReadSelection::parse("box:0-1").is_err(), "missing tasks");
        assert!(ReadSelection::parse("stripe:3").is_err());
    }

    #[test]
    fn name_round_trips() {
        for sel in [
            ReadSelection::Full,
            ReadSelection::Level(3),
            ReadSelection::Field("Cell_D".into()),
            ReadSelection::Box(KeyBox {
                level_lo: 0,
                level_hi: 2,
                task_lo: 4,
                task_hi: 7,
            }),
        ] {
            assert_eq!(ReadSelection::parse(&sel.name()).unwrap(), sel);
        }
    }

    #[test]
    fn matches_implements_the_predicate() {
        let full = ReadSelection::Full;
        assert!(full.matches(&key(9, 9), "/anything"));

        let level = ReadSelection::Level(1);
        assert!(level.matches(&key(1, 0), "/x"));
        assert!(!level.matches(&key(0, 0), "/x"));

        let field = ReadSelection::Field("density".into());
        assert!(field.matches(&key(0, 0), "/plt/L0/density_00001"));
        assert!(!field.matches(&key(0, 0), "/plt/L0/pressure_00001"));

        let boxed = ReadSelection::Box(KeyBox {
            level_lo: 0,
            level_hi: 1,
            task_lo: 2,
            task_hi: 3,
        });
        assert!(boxed.matches(&key(1, 2), "/x"));
        assert!(!boxed.matches(&key(2, 2), "/x"), "level outside");
        assert!(!boxed.matches(&key(1, 4), "/x"), "task outside");
    }

    #[test]
    fn level_range_narrows_where_derivable() {
        assert_eq!(ReadSelection::Full.level_range(), None);
        assert_eq!(ReadSelection::Field("x".into()).level_range(), None);
        assert_eq!(ReadSelection::Level(2).level_range(), Some((2, 2)));
        assert_eq!(
            ReadSelection::parse("box:1-3,0-9").unwrap().level_range(),
            Some((1, 3))
        );
    }

    #[test]
    fn serde_round_trips_as_the_cli_spelling() {
        use serde::{Deserialize as _, Serialize as _};
        for sel in [
            ReadSelection::Full,
            ReadSelection::Level(1),
            ReadSelection::Field("Cell_D".into()),
            ReadSelection::parse("box:0-1,0-15").unwrap(),
        ] {
            let v = sel.to_value();
            assert_eq!(v.as_str(), Some(sel.name().as_str()));
            assert_eq!(ReadSelection::from_value(&v).unwrap(), sel);
        }
    }
}
