//! The compression stage: a [`Codec`] applied in front of any
//! [`IoBackend`].
//!
//! The stage intercepts every data put, encodes its payload (real bytes
//! are actually compressed, account-only sizes use the codec's modeled
//! size), and forwards a [`Payload::Encoded`]/[`Payload::EncodedSize`]
//! carrying *both* byte counts downstream. The inner backend records the
//! **logical** length in the tracker and ships the **physical** length to
//! storage, so:
//!
//! * `(step, level, task)` tracker samples are codec-invariant (the
//!   paper's Eq. (1)/(2) model sees the workload, not the wire format);
//! * file sizes, write requests, and burst timing shrink with the codec's
//!   real or modeled ratio.
//!
//! Metadata puts pass through uncompressed — headers stay readable, as in
//! AMRIC, where only field blocks are compressed. Payloads that fail to
//! compress are forwarded raw (the stage never expands data); the
//! per-chunk method lands in the *sidecar*: one small
//! `compression_<step>.csc` file per step recording
//! `logical physical method path` for every data chunk, the
//! uncompressed-logical-size record a reader needs to undo the stage.
//! Sidecar bytes are counted as backend overhead, like the aggregation
//! index — they never enter the tracker.
//!
//! ## Parallel encode
//!
//! By default the stage buffers the open step's puts and encodes every
//! data chunk **in parallel** at seal time (per-chunk encode is a pure
//! function of the chunk and its [`CodecContext`]), then forwards all
//! puts to the inner backend in their original submission order. Output
//! is therefore byte-identical to the serial reference mode
//! ([`CompressionStage::serial`]) — file contents, sidecar line order,
//! and modeled `codec_seconds` alike — which a 3×3 backend × codec
//! property test pins.
//!
//! The seal-time buffers form a reused *encode arena*: the pending-put
//! list, the per-put result slots, the chunk records, and the sidecar
//! body all keep their capacity from step to step, so a steady-state
//! step allocates only the encoded payloads themselves.

use crate::backend::{EngineReport, IoBackend, Payload, Put, StepRead, StepStats, VfsHandle};
use crate::codec::{encode_payload, Codec, CodecContext};
use crate::selection::ReadSelection;
use iosim::{IoKind, ReadRequest, WriteRequest};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;

/// One data chunk the stage processed in the open step.
struct ChunkRec {
    path: String,
    logical: u64,
    physical: u64,
    encoded: bool,
}

struct StageStep {
    step: u32,
    dir: String,
    chunks: Vec<ChunkRec>,
    any_materialized: bool,
    codec_ns: f64,
}

/// Per-step sidecar record retained for the read path.
struct SidecarInfo {
    dir: String,
    bytes: u64,
}

/// A codec in front of an inner backend (see module docs).
pub struct CompressionStage<'a> {
    inner: Box<dyn IoBackend + 'a>,
    codec: Box<dyn Codec>,
    vfs: VfsHandle<'a>,
    /// Encode data chunks in parallel at seal time (the default); the
    /// serial mode is the byte-identical reference implementation.
    parallel: bool,
    /// Buffered puts of the open step (parallel mode only), in
    /// submission order.
    pending: Vec<Put>,
    /// Seal-time encode results, one slot per buffered put (`None` =
    /// metadata, forwarded untouched). Part of the reused encode arena:
    /// `pending`, `results`, the chunk records, and the sidecar body all
    /// keep their capacity across steps, so a steady-state step
    /// allocates only the encoded payloads themselves.
    results: Vec<Option<(Payload, bool)>>,
    /// Recycled chunk-record buffer handed to each step's `StageStep`.
    chunk_pool: Vec<ChunkRec>,
    /// Recycled sidecar body.
    sidecar_buf: String,
    cur: Option<StageStep>,
    /// Steps that wrote (or modeled) a sidecar, for read accounting.
    sidecars: HashMap<u32, SidecarInfo>,
    /// Sidecar files written across the run (added to the close report).
    sidecar_files: u64,
    /// Sidecar bytes written across the run.
    sidecar_bytes: u64,
}

impl<'a> CompressionStage<'a> {
    /// Wraps `inner` with `codec`, writing sidecars through `vfs` (the
    /// same filesystem the inner backend writes to). Data chunks are
    /// encoded in parallel at seal time; use
    /// [`CompressionStage::serial`] for the reference serial mode.
    pub fn new(
        inner: Box<dyn IoBackend + 'a>,
        codec: Box<dyn Codec>,
        vfs: impl Into<VfsHandle<'a>>,
    ) -> Self {
        Self::with_parallel(inner, codec, vfs, true)
    }

    /// The serial reference stage: encodes each put inline on the
    /// calling thread. Byte-identical output to the parallel default —
    /// kept for the property tests that pin that equivalence.
    pub fn serial(
        inner: Box<dyn IoBackend + 'a>,
        codec: Box<dyn Codec>,
        vfs: impl Into<VfsHandle<'a>>,
    ) -> Self {
        Self::with_parallel(inner, codec, vfs, false)
    }

    fn with_parallel(
        inner: Box<dyn IoBackend + 'a>,
        codec: Box<dyn Codec>,
        vfs: impl Into<VfsHandle<'a>>,
        parallel: bool,
    ) -> Self {
        Self {
            inner,
            codec,
            vfs: vfs.into(),
            parallel,
            pending: Vec::new(),
            results: Vec::new(),
            chunk_pool: Vec::new(),
            sidecar_buf: String::new(),
            cur: None,
            sidecars: HashMap::new(),
            sidecar_files: 0,
            sidecar_bytes: 0,
        }
    }

    /// True when the stage encodes in parallel at seal time.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Sidecar path for a step under `container`.
    fn sidecar_path(container: &str, step: u32) -> String {
        let base = container.trim_end_matches('/');
        format!("{base}/compression_{step:05}.csc")
    }

    /// Books one encoded data chunk and forwards it to the inner
    /// backend — the common tail of the serial and parallel paths, so
    /// chunk records, codec-time accumulation (same f64 summation
    /// order), and forwarding order are identical by construction.
    fn forward_encoded(
        cur: &mut StageStep,
        inner: &mut (dyn IoBackend + 'a),
        codec_ns_per_byte: f64,
        put: Put,
        payload: Payload,
        encoded: bool,
    ) -> io::Result<()> {
        let logical = put.payload.logical_len();
        let materialized = matches!(put.payload, Payload::Bytes(_) | Payload::Encoded { .. });
        cur.codec_ns += logical as f64 * codec_ns_per_byte;
        cur.any_materialized |= materialized;
        cur.chunks.push(ChunkRec {
            path: put.path.clone(),
            logical,
            physical: payload.len(),
            encoded,
        });
        inner.put(Put { payload, ..put })
    }
}

impl IoBackend for CompressionStage<'_> {
    fn name(&self) -> String {
        format!("{}+{}", self.inner.name(), self.codec.name())
    }

    fn overlapped(&self) -> bool {
        self.inner.overlapped()
    }

    fn in_transit(&self) -> bool {
        self.inner.in_transit()
    }

    fn attach_network(&mut self, net: mpi_sim::NetworkModel) {
        self.inner.attach_network(net);
    }

    fn begin_step(&mut self, step: u32, container: &str) {
        assert!(self.cur.is_none(), "begin_step: step already open");
        self.cur = Some(StageStep {
            step,
            dir: container.to_string(),
            chunks: std::mem::take(&mut self.chunk_pool),
            any_materialized: false,
            codec_ns: 0.0,
        });
        self.inner.begin_step(step, container);
    }

    fn create_dir_all(&mut self, path: &str) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn put(&mut self, put: Put) -> io::Result<()> {
        let cur = self.cur.as_mut().expect("put: no open step");
        if self.parallel {
            // Defer: the whole step encodes in parallel at seal time,
            // then forwards in this submission order.
            self.pending.push(put);
            return Ok(());
        }
        if put.kind != IoKind::Data {
            // Metadata stays uncompressed and readable.
            return self.inner.put(put);
        }
        let ctx = CodecContext {
            level: put.key.level,
            kind: put.kind,
            path: &put.path,
        };
        let (payload, encoded) = encode_payload(self.codec.as_ref(), put.payload.clone(), &ctx);
        Self::forward_encoded(
            cur,
            self.inner.as_mut(),
            self.codec.cpu_ns_per_byte(),
            put,
            payload,
            encoded,
        )
    }

    fn end_step(&mut self) -> io::Result<StepStats> {
        let mut cur = self.cur.take().expect("end_step: no open step");
        if self.parallel {
            // Parallel map over the buffered puts: each data chunk is
            // encoded independently (payload clones are O(1) shared
            // views, not copies) into its slot of the reused result
            // table, so results line up with submissions and the arena
            // keeps its capacity across steps.
            let codec = self.codec.as_ref();
            self.results.clear();
            self.results.resize_with(self.pending.len(), || None);
            let encode_slot = |p: &Put, out: &mut Option<(Payload, bool)>| {
                if p.kind != IoKind::Data {
                    return;
                }
                let ctx = CodecContext {
                    level: p.key.level,
                    kind: p.kind,
                    path: &p.path,
                };
                *out = Some(encode_payload(codec, p.payload.clone(), &ctx));
            };
            let threads = rayon::current_num_threads().min(self.pending.len()).max(1);
            if threads <= 1 {
                for (p, out) in self.pending.iter().zip(self.results.iter_mut()) {
                    encode_slot(p, out);
                }
            } else {
                let chunk_len = self.pending.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for (puts, outs) in self
                        .pending
                        .chunks(chunk_len)
                        .zip(self.results.chunks_mut(chunk_len))
                    {
                        let encode_slot = &encode_slot;
                        scope.spawn(move || {
                            for (p, out) in puts.iter().zip(outs) {
                                encode_slot(p, out);
                            }
                        });
                    }
                });
            }
            // Serial drain in submission order: bookkeeping and the
            // forwarding sequence the inner backend sees are exactly the
            // serial mode's.
            let ns_per_byte = self.codec.cpu_ns_per_byte();
            for (put, result) in self.pending.drain(..).zip(self.results.drain(..)) {
                match result {
                    Some((payload, encoded)) => Self::forward_encoded(
                        &mut cur,
                        self.inner.as_mut(),
                        ns_per_byte,
                        put,
                        payload,
                        encoded,
                    )?,
                    // Metadata stays uncompressed and readable.
                    None => self.inner.put(put)?,
                }
            }
        }
        let mut stats = self.inner.end_step()?;
        stats.codec_seconds += cur.codec_ns / 1e9;
        // In-transit backends never touch the storage plane: the stream
        // carries each chunk's logical/physical framing in-band (the
        // consumer window retains the spans), so no sidecar exists to
        // write — or to fetch back on the read side.
        if !cur.chunks.is_empty() && !self.inner.in_transit() {
            // The uncompressed-logical-size sidecar, composed in the
            // recycled body buffer.
            let codec_name = self.codec.name();
            self.sidecar_buf.clear();
            let body = &mut self.sidecar_buf;
            let _ = writeln!(
                body,
                "# io-engine compression sidecar, codec {codec_name}, step {}",
                cur.step
            );
            for c in &cur.chunks {
                let _ = writeln!(
                    body,
                    "{logical} {physical} {method} {path}",
                    logical = c.logical,
                    physical = c.physical,
                    method = if c.encoded { &codec_name } else { "raw" },
                    path = c.path,
                );
            }
            let path = Self::sidecar_path(&cur.dir, cur.step);
            let bytes = body.len() as u64;
            self.sidecars.insert(
                cur.step,
                SidecarInfo {
                    dir: cur.dir.clone(),
                    bytes,
                },
            );
            // Mirror the backends' account-only handling: a step whose
            // data never materialized stays write-free end to end.
            if cur.any_materialized {
                let written = self.vfs.write_file(&path, body.as_bytes())?;
                debug_assert_eq!(written, bytes);
            }
            stats.files += 1;
            stats.bytes += bytes;
            stats.overhead_bytes += bytes;
            self.sidecar_files += 1;
            self.sidecar_bytes += bytes;
            stats.requests.push(WriteRequest {
                rank: 0,
                path,
                bytes,
                start: 0.0,
            });
        }
        // Recycle the step's chunk records into the arena.
        cur.chunks.clear();
        self.chunk_pool = cur.chunks;
        Ok(stats)
    }

    fn read_selection(
        &mut self,
        step: u32,
        container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        assert!(self.cur.is_none(), "read_step: step still open");
        let mut read = self.inner.read_selection(step, container, sel)?;
        // Decode every returned data chunk the write side encoded back to
        // its logical bytes; raw-fallback chunks come back as `Bytes`
        // already (physical == logical) and pass through untouched. The
        // decode CPU cost mirrors the encode side: charged per logical
        // byte of every returned data chunk.
        let mut decode_ns = 0.0f64;
        for chunk in &mut read.chunks {
            if chunk.kind != IoKind::Data {
                continue;
            }
            decode_ns += chunk.payload.logical_len() as f64 * self.codec.cpu_ns_per_byte();
            if let Payload::Encoded { data, logical } = &chunk.payload {
                let ctx = CodecContext {
                    level: chunk.key.level,
                    kind: chunk.kind,
                    path: &chunk.path,
                };
                let decoded = self.codec.decode(data, *logical, &ctx);
                debug_assert_eq!(decoded.len() as u64, *logical, "decode length");
                chunk.payload = Payload::Bytes(decoded.into());
            }
        }
        read.stats.codec_seconds += decode_ns / 1e9;
        // A reader consults the uncompressed-logical-size sidecar before
        // touching data: account its fetch. The sidecar is one small flat
        // file fetched whole even for narrow selections (it has no
        // per-chunk directory of its own).
        if let Some(info) = self.sidecars.get(&step) {
            let path = Self::sidecar_path(&info.dir, step);
            read.stats.files += 1;
            read.stats.bytes += info.bytes;
            read.stats.requests.push(ReadRequest {
                rank: 0,
                path,
                bytes: info.bytes,
                start: 0.0,
            });
        }
        Ok(read)
    }

    fn close(&mut self) -> io::Result<EngineReport> {
        assert!(self.cur.is_none(), "close: step still open");
        let mut report = self.inner.close()?;
        // The inner backend never saw the sidecars; fold them into the
        // run totals so per-step stats and the close report agree.
        report.files += self.sidecar_files;
        report.bytes += self.sidecar_bytes;
        report.overhead_bytes += self.sidecar_bytes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{LossyQuant, Rle};
    use crate::FilePerProcess;
    use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

    fn put(task: u32, kind: IoKind, path: &str, payload: Payload) -> Put {
        Put {
            key: IoKey {
                step: 1,
                level: 0,
                task,
            },
            kind,
            path: path.to_string(),
            payload,
        }
    }

    fn stage<'a>(
        fs: &'a MemFs,
        tracker: &'a IoTracker,
        codec: Box<dyn Codec>,
    ) -> CompressionStage<'a> {
        let inner = Box::new(FilePerProcess::new(fs as &dyn Vfs, tracker));
        CompressionStage::new(inner, codec, fs as &dyn Vfs)
    }

    #[test]
    fn tracker_sees_logical_files_see_physical() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(Rle::default()));
        b.begin_step(1, "/");
        b.put(put(
            0,
            IoKind::Data,
            "/f",
            Payload::Bytes(vec![0u8; 4096].into()),
        ))
        .unwrap();
        let stats = b.end_step().unwrap();
        b.close().unwrap();
        // Logical accounting is codec-invariant.
        assert_eq!(tracker.total_bytes(), 4096);
        assert_eq!(stats.logical_bytes, 4096);
        // Physical bytes shrink; the file on disk is the encoded stream.
        let on_disk = fs.file_size("/f").unwrap();
        assert!(on_disk < 4096, "on disk: {on_disk}");
        assert_eq!(
            stats.bytes,
            on_disk + stats.overhead_bytes,
            "stats cover file + sidecar"
        );
        // The encoded file round-trips.
        assert_eq!(Rle::decode(&fs.read_file("/f").unwrap()), vec![0u8; 4096]);
    }

    #[test]
    fn sidecar_records_logical_physical_and_method() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(Rle::default()));
        b.begin_step(3, "/plt");
        b.put(put(
            0,
            IoKind::Data,
            "/plt/a",
            Payload::Bytes(vec![1u8; 500].into()),
        ))
        .unwrap();
        // Incompressible payload falls back to raw.
        let noise: Vec<u8> = (0..500u32).map(|i| (i * 131 % 251) as u8).collect();
        b.put(put(
            1,
            IoKind::Data,
            "/plt/b",
            Payload::Bytes(noise.clone().into()),
        ))
        .unwrap();
        b.end_step().unwrap();
        let sc = String::from_utf8(fs.read_file("/plt/compression_00003.csc").unwrap()).unwrap();
        assert!(sc.starts_with("# io-engine compression sidecar, codec rle:2"));
        assert!(sc.contains(" /plt/a"));
        assert!(sc.contains("500 500 raw /plt/b"), "{sc}");
        // The raw file is byte-identical to its logical payload.
        assert_eq!(fs.read_file("/plt/b"), Some(noise));
    }

    #[test]
    fn metadata_passes_through_uncompressed() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(Rle::default()));
        b.begin_step(1, "/");
        b.put(put(
            0,
            IoKind::Metadata,
            "/hdr",
            Payload::Bytes(vec![7u8; 300].into()),
        ))
        .unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(fs.read_file("/hdr"), Some(vec![7u8; 300]));
        // No data chunks: no sidecar either.
        assert_eq!(stats.files, 1);
        assert_eq!(fs.nfiles(), 1);
        assert_eq!(stats.codec_seconds, 0.0);
    }

    #[test]
    fn account_only_steps_stay_write_free() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(LossyQuant::new(8)));
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/big", Payload::Size(1 << 20)))
            .unwrap();
        let stats = b.end_step().unwrap();
        b.close().unwrap();
        assert_eq!(fs.nfiles(), 0, "nothing materialized");
        // Accounting still covers the modeled physical file + sidecar.
        assert_eq!(stats.files, 2);
        assert_eq!(stats.logical_bytes, 1 << 20);
        assert!(
            stats.bytes - stats.overhead_bytes < 1 << 20,
            "modeled ratio"
        );
        assert_eq!(tracker.total_bytes(), 1 << 20);
        assert!(stats.codec_seconds > 0.0, "cpu cost charged");
    }

    #[test]
    fn quant_materialized_size_matches_account_only_size() {
        // The same logical payload must cost the same physical bytes
        // whether materialized or size-only (oracle-path equivalence).
        let data: Vec<u8> = (0..2048u32)
            .flat_map(|i| (i as f64).cos().to_le_bytes())
            .collect();
        let run = |payload: Payload| {
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let mut b = stage(&fs, &tracker, Box::new(LossyQuant::new(8)));
            b.begin_step(1, "/");
            b.put(put(0, IoKind::Data, "/f", payload)).unwrap();
            let stats = b.end_step().unwrap();
            stats.bytes - stats.overhead_bytes
        };
        assert_eq!(
            run(Payload::Bytes(data.clone().into())),
            run(Payload::Size(data.len() as u64))
        );
    }

    #[test]
    fn close_report_includes_sidecars() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(Rle::default()));
        let mut step_files = 0u64;
        let mut step_bytes = 0u64;
        for step in 1..=3u32 {
            b.begin_step(step, "/");
            b.put(put(
                0,
                IoKind::Data,
                &format!("/f{step}"),
                Payload::Bytes(vec![0u8; 600].into()),
            ))
            .unwrap();
            let stats = b.end_step().unwrap();
            step_files += stats.files;
            step_bytes += stats.bytes;
        }
        let report = b.close().unwrap();
        assert_eq!(report.files, step_files, "per-step and run totals agree");
        assert_eq!(report.bytes, step_bytes);
        assert_eq!(report.logical_bytes, 3 * 600);
        assert!(report.overhead_bytes > 0, "sidecars are overhead");
    }

    #[test]
    fn read_step_decodes_back_to_logical_bytes() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(Rle::default()));
        let compressible = vec![3u8; 4096];
        let noise: Vec<u8> = (0..500u32).map(|i| (i * 131 % 251) as u8).collect();
        b.begin_step(1, "/");
        b.put(put(
            0,
            IoKind::Data,
            "/a",
            Payload::Bytes(compressible.clone().into()),
        ))
        .unwrap();
        b.put(put(
            1,
            IoKind::Data,
            "/b",
            Payload::Bytes(noise.clone().into()),
        ))
        .unwrap();
        b.put(put(
            0,
            IoKind::Metadata,
            "/hdr",
            Payload::Bytes(vec![7u8; 64].into()),
        ))
        .unwrap();
        b.end_step().unwrap();

        let read = b.read_step(1, "/").unwrap();
        // Compressed chunk decodes to the exact logical bytes; the raw
        // fallback and metadata pass through.
        assert_eq!(read.logical_content("/a"), Some(compressible));
        assert_eq!(read.logical_content("/b"), Some(noise));
        assert_eq!(read.logical_content("/hdr"), Some(vec![7u8; 64]));
        // Physical read bytes < logical bytes (the wire was compressed),
        // and the sidecar fetch is accounted.
        assert!(read.stats.bytes < read.stats.logical_bytes + 64);
        assert!(read
            .stats
            .requests
            .iter()
            .any(|r| r.path.contains("compression_00001.csc")));
        assert!(read.stats.codec_seconds > 0.0, "decode CPU charged");
        // Tracker read plane is codec-invariant: logical bytes only.
        assert_eq!(tracker.total_read_bytes(), 4096 + 500 + 64);
    }

    #[test]
    fn read_step_models_account_only_chunks() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = stage(&fs, &tracker, Box::new(LossyQuant::new(8)));
        b.begin_step(1, "/");
        b.put(put(0, IoKind::Data, "/big", Payload::Size(1 << 20)))
            .unwrap();
        b.end_step().unwrap();
        let read = b.read_step(1, "/").unwrap();
        assert!(matches!(read.chunks[0].payload, Payload::Size(n) if n == 1 << 20));
        assert_eq!(read.stats.logical_bytes, 1 << 20);
        assert!(
            read.stats.bytes < 1 << 20,
            "physical read is the modeled encoded size"
        );
        assert!(read.stats.codec_seconds > 0.0);
    }

    /// Parallel encode must not let worker scheduling leak into the
    /// sidecar: chunk lines appear in submission order, every run, and
    /// match the serial reference byte for byte.
    #[test]
    fn sidecar_chunk_order_is_deterministic_under_parallel_encode() {
        let run = |parallel: bool| {
            let fs = MemFs::new();
            let tracker = IoTracker::new();
            let inner = Box::new(FilePerProcess::new(&fs as &dyn Vfs, &tracker));
            let codec: Box<dyn Codec> = Box::new(Rle::default());
            let mut b = if parallel {
                CompressionStage::new(inner, codec, &fs as &dyn Vfs)
            } else {
                CompressionStage::serial(inner, codec, &fs as &dyn Vfs)
            };
            b.begin_step(1, "/plt");
            // Mix of compressible and raw-fallback chunks, sizes varied
            // so encode times differ across workers.
            for task in 0..32u32 {
                let data: Vec<u8> = if task % 3 == 0 {
                    (0..(200 + task * 37))
                        .map(|i| (i * 131 % 251) as u8)
                        .collect()
                } else {
                    vec![task as u8; (64 + task * 97) as usize]
                };
                b.put(put(
                    task,
                    IoKind::Data,
                    &format!("/plt/L{}/f_{task:05}", task % 4),
                    Payload::Bytes(data.into()),
                ))
                .unwrap();
            }
            b.end_step().unwrap();
            String::from_utf8(fs.read_file("/plt/compression_00001.csc").unwrap()).unwrap()
        };
        let parallel_a = run(true);
        let parallel_b = run(true);
        let serial = run(false);
        assert_eq!(parallel_a, parallel_b, "repeat runs agree");
        assert_eq!(parallel_a, serial, "parallel matches serial reference");
        // Lines after the header follow submission order.
        for (i, line) in parallel_a.lines().skip(1).enumerate() {
            assert!(
                line.ends_with(&format!("/f_{i:05}")),
                "line {i} out of order: {line}"
            );
        }
    }

    #[test]
    fn stage_names_compose() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let b = stage(&fs, &tracker, Box::new(LossyQuant::new(4)));
        assert_eq!(b.name(), "fpp+quant:4");
    }
}
