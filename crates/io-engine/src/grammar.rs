//! The declarative experiment grammar's shared substrate.
//!
//! Two pieces live here because *every* spec consumer needs them and
//! they must not be re-implemented per crate (the hand-enumerated
//! `*_sweep` functions this layer replaces were five copies of the same
//! cross-product loop):
//!
//! * a **mini-TOML reader** ([`TomlDoc`]) covering exactly the subset an
//!   experiment spec file uses — `[section]` / `[[section]]` headers and
//!   `key = value` entries with string/integer/float/boolean scalars and
//!   single-line arrays — parsed without any external crate (this
//!   workspace builds offline);
//! * the **axis-matrix engine** ([`MatrixShape`]): given named axes with
//!   lengths and optional `zip` groups (axes that advance in lockstep,
//!   benchpark-style), it enumerates every cell as one index per axis,
//!   deterministically — declaration order is loop order, the last
//!   declared slot varies fastest, exactly like the nested loops the
//!   legacy sweeps wrote by hand.
//!
//! Value interpretation (what an axis *means*) stays with the callers:
//! `amrproxy::spec` maps axes onto `CastroSedovConfig` fields, `macsio`
//! maps them onto command-line flags. Both share this enumeration, so
//! zips, excludes, and ordering behave identically everywhere.

/// A scalar or array value from a spec file.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line array of values.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer (floats with zero fraction qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            TomlValue::Int(v) => Some(v),
            TomlValue::Float(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            TomlValue::Int(v) => Some(v as f64),
            TomlValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            TomlValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value the way a spec label would spell it (`"x"` →
    /// `x`, `4` → `4`, `2.5` → `2.5`).
    pub fn render(&self) -> String {
        match self {
            TomlValue::Str(s) => s.clone(),
            TomlValue::Int(v) => v.to_string(),
            TomlValue::Float(v) => format!("{v}"),
            TomlValue::Bool(b) => b.to_string(),
            TomlValue::Array(items) => items
                .iter()
                .map(TomlValue::render)
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}

/// One `[name]` or `[[name]]` table, entries in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct TomlSection {
    /// Section name (the part inside the brackets).
    pub name: String,
    /// True for `[[name]]` array-of-tables headers.
    pub array: bool,
    /// `key = value` entries in declaration order (order is meaningful:
    /// the `[axes]` section's entry order is the sweep's loop order).
    pub entries: Vec<(String, TomlValue)>,
}

impl TomlSection {
    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed spec file: sections in file order. Top-level keys before the
/// first header land in an implicit section named `""`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TomlDoc {
    /// All sections, in file order.
    pub sections: Vec<TomlSection>,
}

impl TomlDoc {
    /// Parses the TOML subset. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut sections: Vec<TomlSection> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            if let Some(header) = line.strip_prefix("[[") {
                let name = header
                    .strip_suffix("]]")
                    .ok_or_else(|| at(format!("malformed table header '{line}'")))?
                    .trim();
                sections.push(TomlSection {
                    name: name.to_string(),
                    array: true,
                    entries: Vec::new(),
                });
            } else if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| at(format!("malformed section header '{line}'")))?
                    .trim();
                sections.push(TomlSection {
                    name: name.to_string(),
                    array: false,
                    entries: Vec::new(),
                });
            } else {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| at(format!("expected 'key = value', got '{line}'")))?;
                let value = parse_value(value.trim()).map_err(&at)?;
                if sections.is_empty() {
                    sections.push(TomlSection {
                        name: String::new(),
                        array: false,
                        entries: Vec::new(),
                    });
                }
                let section = sections.last_mut().expect("section pushed above");
                let key = key.trim().to_string();
                if section.get(&key).is_some() {
                    return Err(at(format!(
                        "duplicate key '{key}' in section [{}]",
                        section.name
                    )));
                }
                section.entries.push((key, value));
            }
        }
        Ok(Self { sections })
    }

    /// The first `[name]` section, if present.
    pub fn section(&self, name: &str) -> Option<&TomlSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Every `[name]` / `[[name]]` section, in file order.
    pub fn all(&self, name: &str) -> Vec<&TomlSection> {
        self.sections.iter().filter(|s| s.name == name).collect()
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array '{text}'"))?;
        let mut items = Vec::new();
        for part in split_array_items(body)? {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_value(part)?);
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {text}"))?;
        if body.contains('"') {
            return Err(format!("embedded quote in string {text}"));
        }
        return Ok(TomlValue::Str(body.to_string()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<f64>() {
            return Ok(TomlValue::Float(v));
        }
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    Err(format!("cannot parse value '{text}'"))
}

/// Splits an array body on commas that are not inside quotes.
fn split_array_items(body: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            '[' | ']' if !in_str => {
                return Err("nested arrays are not supported".to_string());
            }
            _ => {}
        }
    }
    if in_str {
        return Err(format!("unterminated string in array '{body}'"));
    }
    items.push(&body[start..]);
    Ok(items)
}

/// The shape of an experiment matrix: named axes with lengths, plus
/// `zip` groups whose members advance together (and must therefore have
/// equal lengths). [`MatrixShape::enumerate`] yields every cell as one
/// value index per axis, in declaration order.
#[derive(Clone, Debug, Default)]
pub struct MatrixShape {
    axes: Vec<(String, usize)>,
    zips: Vec<Vec<String>>,
}

impl MatrixShape {
    /// Empty shape (a single cell with no axes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an axis. Declaration order is loop order: later axes
    /// vary faster.
    pub fn axis(mut self, name: impl Into<String>, len: usize) -> Self {
        self.axes.push((name.into(), len));
        self
    }

    /// Declares a zip group: the named axes advance in lockstep. The
    /// group occupies the loop position of its earliest-declared member.
    pub fn zip(mut self, members: &[&str]) -> Self {
        self.zips
            .push(members.iter().map(|m| m.to_string()).collect());
        self
    }

    /// Number of declared axes.
    pub fn num_axes(&self) -> usize {
        self.axes.len()
    }

    /// Enumerates every cell of the (zipped) cross product. Each cell is
    /// one value index per axis, ordered like the axis declarations.
    ///
    /// Errors when a zip names an unknown axis, an axis twice, or
    /// members of unequal lengths — the spec mistakes that silently
    /// corrupt a hand-written sweep.
    pub fn enumerate(&self) -> Result<Vec<Vec<usize>>, String> {
        // Resolve each axis to its slot: zipped axes share one.
        let find = |name: &str| self.axes.iter().position(|(n, _)| n == name);
        let mut slot_of_axis: Vec<Option<usize>> = vec![None; self.axes.len()];
        let mut slots: Vec<(Vec<usize>, usize)> = Vec::new(); // (member axes, len)
        for zip in &self.zips {
            if zip.len() < 2 {
                return Err(format!("zip group {zip:?} needs at least two axes"));
            }
            let mut members = Vec::new();
            let mut len = None;
            for name in zip {
                let idx = find(name).ok_or_else(|| format!("zip names unknown axis '{name}'"))?;
                if slot_of_axis[idx].is_some() {
                    return Err(format!("axis '{name}' appears in two zip groups"));
                }
                let axis_len = self.axes[idx].1;
                match len {
                    None => len = Some(axis_len),
                    Some(l) if l != axis_len => {
                        return Err(format!(
                            "zip group {zip:?} has unequal lengths ({l} vs {axis_len} for '{name}')"
                        ));
                    }
                    Some(_) => {}
                }
                members.push(idx);
            }
            // The slot sits at the earliest member's declaration position;
            // record placeholders now, order slots after the loop.
            let slot_id = slots.len();
            for &idx in &members {
                slot_of_axis[idx] = Some(slot_id);
            }
            slots.push((members, len.expect("non-empty zip")));
        }
        for (idx, (_, len)) in self.axes.iter().enumerate() {
            if slot_of_axis[idx].is_none() {
                slot_of_axis[idx] = Some(slots.len());
                slots.push((vec![idx], *len));
            }
        }
        // Loop order: slots sorted by their earliest member's position.
        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by_key(|&s| slots[s].0.iter().min().copied().unwrap_or(usize::MAX));

        let mut cells = Vec::new();
        let mut current = vec![0usize; self.axes.len()];
        fn recurse(
            order: &[usize],
            slots: &[(Vec<usize>, usize)],
            depth: usize,
            current: &mut Vec<usize>,
            cells: &mut Vec<Vec<usize>>,
        ) {
            if depth == order.len() {
                cells.push(current.clone());
                return;
            }
            let (members, len) = &slots[order[depth]];
            for k in 0..*len {
                for &axis in members {
                    current[axis] = k;
                }
                recurse(order, slots, depth + 1, current, cells);
            }
        }
        recurse(&order, &slots, 0, &mut current, &mut cells);
        Ok(cells)
    }
}

/// Disambiguates lossy name-safe tags in place: every member of a
/// colliding group gets `_{prefix}{index}` appended, and the pass
/// repeats until the whole set is unique — a single pass is not enough,
/// because a renamed tag can itself collide with a *different* entry's
/// original flattening (e.g. `x`, `x` and a third entry already named
/// `x_s1`). Indices are per-entry, so renamed tags never collide with
/// each other and the fixed point is reached in a few rounds.
pub fn disambiguate_tags(tags: &mut [String], prefix: char) {
    loop {
        let snapshot: Vec<String> = tags.to_vec();
        let mut changed = false;
        for i in 0..tags.len() {
            if snapshot.iter().filter(|t| **t == snapshot[i]).count() > 1 {
                tags[i] = format!("{}_{prefix}{i}", snapshot[i]);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = TomlDoc::parse(
            r#"
            # an experiment
            [experiment]
            name = "smoke"   # trailing comment
            scaling = "strong"
            zip = ["backend+codec"]

            [base]
            n_cell = 64
            cfl = 0.5
            account_only = true

            [axes]
            backend = ["fpp", "agg:4"]
            scale = [2, 4, 8]

            [[exclude]]
            backend = "agg:4"
            "#,
        )
        .unwrap();
        let exp = doc.section("experiment").unwrap();
        assert_eq!(exp.get("name").unwrap().as_str(), Some("smoke"));
        let base = doc.section("base").unwrap();
        assert_eq!(base.get("n_cell").unwrap().as_i64(), Some(64));
        assert_eq!(base.get("cfl").unwrap().as_f64(), Some(0.5));
        assert_eq!(base.get("account_only").unwrap().as_bool(), Some(true));
        let axes = doc.section("axes").unwrap();
        assert_eq!(
            axes.entries
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["backend", "scale"],
            "entry order is declaration order"
        );
        let scale = axes.get("scale").unwrap().as_array().unwrap();
        assert_eq!(
            scale
                .iter()
                .filter_map(TomlValue::as_i64)
                .collect::<Vec<_>>(),
            [2, 4, 8]
        );
        let ex = doc.all("exclude");
        assert_eq!(ex.len(), 1);
        assert!(ex[0].array);
        assert_eq!(ex[0].get("backend").unwrap().as_str(), Some("agg:4"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = TomlDoc::parse("[ok]\nkey value_without_equals").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = TomlDoc::parse("x = [1, 2").unwrap_err();
        assert!(err.contains("unterminated array"), "{err}");
        let err = TomlDoc::parse("x = \"unclosed").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        let err = TomlDoc::parse("[s]\na = 1\na = 2").unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
        let err = TomlDoc::parse("x = [[1], [2]]").unwrap_err();
        assert!(err.contains("nested"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = TomlDoc::parse("k = \"a#b\" # real comment").unwrap();
        assert_eq!(
            doc.sections[0].get("k").unwrap().as_str(),
            Some("a#b"),
            "the # inside quotes survives"
        );
    }

    #[test]
    fn cross_product_matches_nested_loops() {
        let cells = MatrixShape::new()
            .axis("b", 2)
            .axis("c", 3)
            .enumerate()
            .unwrap();
        // b outermost, c fastest — the legacy sweep loop order.
        assert_eq!(
            cells,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
    }

    #[test]
    fn zip_advances_members_in_lockstep() {
        let cells = MatrixShape::new()
            .axis("a", 2)
            .axis("b", 3)
            .axis("c", 2)
            .zip(&["a", "c"])
            .enumerate()
            .unwrap();
        // The a+c zip occupies a's (outermost) slot; b stays inner.
        assert_eq!(
            cells,
            vec![
                vec![0, 0, 0],
                vec![0, 1, 0],
                vec![0, 2, 0],
                vec![1, 0, 1],
                vec![1, 1, 1],
                vec![1, 2, 1],
            ]
        );
    }

    #[test]
    fn zip_validation_catches_spec_mistakes() {
        let err = MatrixShape::new()
            .axis("a", 2)
            .axis("b", 3)
            .zip(&["a", "b"])
            .enumerate()
            .unwrap_err();
        assert!(err.contains("unequal lengths"), "{err}");
        let err = MatrixShape::new()
            .axis("a", 2)
            .zip(&["a", "ghost"])
            .enumerate()
            .unwrap_err();
        assert!(err.contains("unknown axis"), "{err}");
        let err = MatrixShape::new()
            .axis("a", 2)
            .axis("b", 2)
            .axis("c", 2)
            .zip(&["a", "b"])
            .zip(&["b", "c"])
            .enumerate()
            .unwrap_err();
        assert!(err.contains("two zip groups"), "{err}");
        let err = MatrixShape::new()
            .axis("a", 2)
            .zip(&["a"])
            .enumerate()
            .unwrap_err();
        assert!(err.contains("at least two"), "{err}");
    }

    #[test]
    fn empty_shape_is_one_cell() {
        assert_eq!(
            MatrixShape::new().enumerate().unwrap(),
            vec![Vec::<usize>::new()]
        );
    }

    #[test]
    fn disambiguation_reaches_a_fixed_point() {
        let mut tags = vec!["x".to_string(), "x".to_string(), "x_s1".to_string()];
        disambiguate_tags(&mut tags, 's');
        let mut sorted = tags.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "{tags:?}");
    }
}
