//! Pluggable I/O backend engine.
//!
//! The paper's measurements hinge on *which* parallel I/O backend a
//! workload drives — MACSio's MIF/SIF file modes versus AMReX plotfiles —
//! and related work (ADIOS2's two-level aggregation, AMRIC's deferred
//! staging) shows backend choice is the biggest lever on burst time.
//! This crate abstracts the write path behind an [`IoBackend`] trait so
//! every workload in the workspace becomes a backend-sweep scenario:
//!
//! * [`FilePerProcess`] — the classic N-to-N pattern: each logical file
//!   path becomes one physical file (MACSio MIF groups and AMReX
//!   `Cell_D` files fall out of the paths the writers choose).
//! * [`Aggregated`] — ADIOS2-BP-style two-level aggregation: data puts
//!   from N producers funnel into `ceil(N / ratio)` aggregator subfiles
//!   per step plus one index/metadata file, with chunk coalescing.
//! * [`Deferred`] — a burst-buffer model: puts stage in memory,
//!   double-buffered; a drain pool flushes the previous step's staging
//!   while the application computes, so compute and flush overlap.
//!
//! Byte accounting is backend-invariant: every [`Put`] is recorded in the
//! caller's `IoTracker` at the paper's `(step, level, task)` granularity
//! before any physical layout decision, so the Eq. (1)/(2) samples are
//! identical across backends (enforced by property tests). Only the
//! physical file set, the [`iosim::WriteRequest`]s, and therefore the
//! simulated burst timing differ.

pub mod aggregated;
pub mod backend;
pub mod deferred;
pub mod fpp;
pub mod spec;

pub use aggregated::Aggregated;
pub use backend::{EngineReport, IoBackend, Payload, Put, StepStats, TrackerHandle, VfsHandle};
pub use deferred::Deferred;
pub use fpp::FilePerProcess;
pub use spec::BackendSpec;
