//! Pluggable I/O backend engine.
//!
//! The paper's measurements hinge on *which* parallel I/O backend a
//! workload drives — MACSio's MIF/SIF file modes versus AMReX plotfiles —
//! and related work (ADIOS2's two-level aggregation, AMRIC's deferred
//! staging) shows backend choice is the biggest lever on burst time.
//! This crate abstracts the write path behind an [`IoBackend`] trait so
//! every workload in the workspace becomes a backend-sweep scenario:
//!
//! * [`FilePerProcess`] — the classic N-to-N pattern: each logical file
//!   path becomes one physical file (MACSio MIF groups and AMReX
//!   `Cell_D` files fall out of the paths the writers choose).
//! * [`Aggregated`] — ADIOS2-BP-style two-level aggregation: data puts
//!   from N producers funnel into `ceil(N / ratio)` aggregator subfiles
//!   per step plus one index/metadata file, with chunk coalescing.
//! * [`Deferred`] — a burst-buffer model: puts stage in memory,
//!   double-buffered; a drain pool flushes the previous step's staging
//!   while the application computes, so compute and flush overlap.
//! * [`Streaming`] — ADIOS2/SST-style in-transit staging: steps ship to
//!   consumer ranks as point-to-point transfers over a modeled
//!   interconnect ([`mpi_sim::NetworkModel`]), and analysis reads are
//!   served from a bounded in-memory consumer window — zero physical
//!   bytes on either plane, network bytes a priced column of their own,
//!   producer stalls on window back-pressure accounted like staging
//!   waits.
//!
//! In front of any backend sits an optional **compression stage**
//! ([`CompressionStage`]) applying a [`Codec`] — [`Identity`], lossless
//! [`Rle`], or block-wise [`LossyQuant`] — to every data put. The stage
//! splits byte accounting into two planes:
//!
//! * **logical bytes** — what the workload produced, recorded in the
//!   tracker at `(step, level, task)` granularity. Backend- *and*
//!   codec-invariant: the Eq. (1)/(2) samples see the workload, never the
//!   wire format (enforced by property tests).
//! * **physical bytes** — what reaches storage after encoding, carried by
//!   file sizes, [`iosim::WriteRequest`]s, and therefore the simulated
//!   burst timing. At most the logical count, strictly less whenever a
//!   non-identity codec compresses.
//!
//! The stage writes one small sidecar per step recording
//! `logical physical method path` per chunk, and its modeled CPU cost is
//! charged as application compute time by the burst scheduler — the
//! compression trade (CPU for wire bytes) is simulated on both sides.
//!
//! Every backend also exposes the **read plane**
//! ([`IoBackend::read_step`] / [`IoBackend::read_selection`]): the
//! restart/analysis path that reads a written step — or a selected
//! subset of it ([`ReadSelection`]: one level, one field, a `(level,
//! task)` key box) — back into logical chunks. [`FilePerProcess`] and
//! [`Deferred`] slice their coalesced files through a retained layout
//! manifest (deferred barriers any in-flight drain first — read-after-
//! write consistency); [`Aggregated`] seeks through its on-disk per-step
//! `md.idx` chunk table; the compression stage decodes each chunk through
//! its codec, so restart bytes round-trip to the logical bytes written
//! (byte-exact for lossless codecs, an error-bounded reconstruction of
//! the same length for the lossy quantizer). Reads are recorded in the
//! tracker's separate read plane at logical size, and
//! [`ReadStats::requests`] — one request per maximal contiguous byte
//! range fetched — feed `iosim`'s read-burst timing
//! (`simulate_read_burst`: own bandwidth, per-file open charge), so a
//! selection scattered across a write-optimized layout costs more than
//! the same bytes clustered.
//!
//! That scatter is what the [`reorg`] module removes: an **online
//! reorganization pass** ([`Reorganizer`], after Wan et al.) rewrites a
//! written step into a read-optimized layout — chunks re-clustered by
//! level and field with a segmented, partially-fetchable index — and
//! serves selective reads from it at strictly fewer physical bytes for
//! by-level and by-field queries, with both the rewrite and the reads
//! priced like any other I/O.
//!
//! Finally, the [`scenario`] module hosts the **workload grammar** shared
//! by every engine driver: a [`Scenario`] program
//! (`write;fail@17;restart;analyze:level:2,reorg`) names how a campaign
//! interleaves writes, checkpoints, mid-run failures/restarts, and
//! in-run analysis reads; `amrproxy` compiles it into a phase program,
//! `macsio` interprets it over its dump loop.
//!
//! **Layer position:** between the proxy writers (`plotfile`, `macsio`)
//! and the `iosim` substrate: writers choose logical paths, this crate
//! chooses the physical layout on both planes. Key types: [`IoBackend`],
//! [`BackendSpec`], [`CodecSpec`], [`Put`]/[`Payload`], [`StepRead`],
//! [`ReadSelection`], [`Reorganizer`], [`Scenario`].
//!
//! ```
//! use io_engine::{BackendSpec, CodecSpec, Payload, Put, ReadSelection};
//! use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};
//!
//! let fs = MemFs::new();
//! let tracker = IoTracker::new();
//! let mut backend = BackendSpec::Aggregated(2).build_with_codec(
//!     CodecSpec::Identity,
//!     &fs as &dyn Vfs,
//!     &tracker,
//! );
//! backend.begin_step(1, "/plt");
//! for (level, task) in [(0u32, 0u32), (0, 1), (1, 0)] {
//!     backend
//!         .put(Put {
//!             key: IoKey { step: 1, level, task },
//!             kind: IoKind::Data,
//!             path: format!("/plt/L{level}/density_{task:05}"),
//!             payload: Payload::Bytes(vec![level as u8; 64].into()),
//!         })
//!         .unwrap();
//! }
//! backend.end_step().unwrap();
//!
//! // Full restart read round-trips; a by-level selection fetches the
//! // matching slice only.
//! let full = backend.read_step(1, "/plt").unwrap();
//! assert_eq!(full.chunks.len(), 3);
//! let level1 = backend
//!     .read_selection(1, "/plt", &ReadSelection::Level(1))
//!     .unwrap();
//! assert_eq!(level1.chunks.len(), 1);
//! assert_eq!(level1.stats.logical_bytes, 64);
//! assert_eq!(tracker.total_read_bytes(), 3 * 64 + 64);
//! ```

pub mod aggregated;
pub mod backend;
pub mod codec;
pub mod deferred;
pub mod fpp;
pub mod grammar;
pub mod reorg;
pub mod scenario;
pub mod selection;
pub mod spec;
pub mod stage;
pub mod streaming;

pub use aggregated::Aggregated;
pub use backend::{
    unsupported_read, ChunkRead, EngineReport, IoBackend, Payload, Put, ReadStats, StepRead,
    StepStats, TrackerHandle, VfsHandle,
};
pub use codec::{Codec, CodecContext, CodecSpec, Identity, LossyQuant, Rle};
pub use deferred::Deferred;
pub use fpp::FilePerProcess;
pub use grammar::{disambiguate_tags, MatrixShape, TomlDoc, TomlSection, TomlValue};
pub use reorg::{ReorgStats, Reorganizer};
pub use scenario::{Scenario, ScenarioOp};
pub use selection::{KeyBox, ReadSelection};
pub use spec::{BackendSpec, StreamSpec};
pub use stage::CompressionStage;
pub use streaming::Streaming;
