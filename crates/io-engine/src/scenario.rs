//! Scenario programs: the workload grammar of the scenario plane.
//!
//! The paper models an AMR campaign as alternating compute and bursty
//! I/O phases, but real campaigns are not "write everything, then maybe
//! read": they interleave checkpoints, mid-run failures and restarts,
//! and periodic in-situ analysis with the write stream (the workloads
//! Hercule and AMRIC price). A [`Scenario`] names such a campaign shape
//! as a small op program — `write;fail@17;restart;analyze:level:2,reorg`
//! — that engine drivers (`amrproxy`'s phase driver, `macsio`'s dump
//! loop) compile against their own cadences. The type lives here, next
//! to [`crate::BackendSpec`] / [`crate::CodecSpec`] /
//! [`crate::ReadSelection`], so every workload generator shares one
//! spelling.
//!
//! Ops:
//!
//! * `write` — the engine's write campaign (plot dumps at its cadence);
//!   exactly one per scenario, always present.
//! * `check@K` — checkpoint every `K` steps during the write campaign
//!   (overrides the engine's configured checkpoint cadence).
//! * `fail@K` — the run crashes after step `K` completes (its flushed
//!   dumps survive, in-memory state is lost); must be recovered by a
//!   following `restart`.
//! * `restart` — after a `fail`: mid-run recovery (read the newest
//!   restart dump at or before the failed step, replay lost compute,
//!   resume). Without a preceding `fail`: a trailing restart-read of
//!   the last dump (the legacy read-after-write axis).
//! * `readall` — trailing read-back of *every* dump (post-hoc analysis
//!   over the whole campaign).
//! * `analyze:SEL[,reorg]` — trailing selective analysis read of the
//!   last dump (`SEL` is a [`ReadSelection`] spelling; `,reorg` serves
//!   it from the reorganized layout).
//! * `analyze_every:M:SEL[,reorg]` — in-run analysis: after every `M`-th
//!   plot dump, a selective read of that dump, interleaved with the
//!   following write bursts rather than appended at the end.

use crate::selection::ReadSelection;
use serde::{Deserialize, Serialize};

/// One op of a [`Scenario`] program (see module docs for spellings).
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioOp {
    /// The engine's write campaign (`write`).
    Write,
    /// Checkpoint every `K` steps during the campaign (`check@K`).
    CheckEvery(u64),
    /// Crash after step `K` completes (`fail@K`).
    Fail(u64),
    /// Recover from the newest restart dump (after a `fail`), or
    /// restart-read the last dump at the end (`restart`).
    Restart,
    /// Read every dump back at the end (`readall`).
    ReadAll,
    /// Trailing selective analysis read of the last dump
    /// (`analyze:SEL[,reorg]`).
    Analyze {
        /// What the read fetches.
        sel: ReadSelection,
        /// Serve the read from the reorganized (read-optimized) layout.
        reorganize: bool,
    },
    /// In-run analysis after every `every`-th plot dump
    /// (`analyze_every:M:SEL[,reorg]`).
    AnalyzeEvery {
        /// Plot-dump cadence of the analysis (1 = after every dump).
        every: u64,
        /// What each read fetches.
        sel: ReadSelection,
        /// Serve each read from the reorganized layout.
        reorganize: bool,
    },
}

impl ScenarioOp {
    /// Parses one op spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "write" {
            return Ok(ScenarioOp::Write);
        }
        if s == "restart" {
            return Ok(ScenarioOp::Restart);
        }
        if s == "readall" {
            return Ok(ScenarioOp::ReadAll);
        }
        if let Some(k) = s.strip_prefix("check@") {
            let k = k.parse::<u64>().map_err(|_| format!("bad cadence '{k}'"))?;
            return Ok(ScenarioOp::CheckEvery(k));
        }
        if let Some(k) = s.strip_prefix("fail@") {
            let k = k
                .parse::<u64>()
                .map_err(|_| format!("bad fail step '{k}'"))?;
            return Ok(ScenarioOp::Fail(k));
        }
        if let Some(rest) = s.strip_prefix("analyze_every:") {
            let (every, sel) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad analyze_every '{rest}' (expected M:SEL)"))?;
            let every = every
                .parse::<u64>()
                .map_err(|_| format!("bad cadence '{every}'"))?;
            let (sel, reorganize) = parse_sel_with_reorg(sel)?;
            return Ok(ScenarioOp::AnalyzeEvery {
                every,
                sel,
                reorganize,
            });
        }
        if let Some(rest) = s.strip_prefix("analyze:") {
            let (sel, reorganize) = parse_sel_with_reorg(rest)?;
            return Ok(ScenarioOp::Analyze { sel, reorganize });
        }
        Err(format!(
            "unknown scenario op '{s}' (expected write, check@K, fail@K, restart, readall, \
             analyze:SEL[,reorg], or analyze_every:M:SEL[,reorg])"
        ))
    }

    /// The canonical spelling.
    pub fn name(&self) -> String {
        match self {
            ScenarioOp::Write => "write".to_string(),
            ScenarioOp::CheckEvery(k) => format!("check@{k}"),
            ScenarioOp::Fail(k) => format!("fail@{k}"),
            ScenarioOp::Restart => "restart".to_string(),
            ScenarioOp::ReadAll => "readall".to_string(),
            ScenarioOp::Analyze { sel, reorganize } => {
                format!("analyze:{}{}", sel.name(), reorg_suffix(*reorganize))
            }
            ScenarioOp::AnalyzeEvery {
                every,
                sel,
                reorganize,
            } => format!(
                "analyze_every:{every}:{}{}",
                sel.name(),
                reorg_suffix(*reorganize)
            ),
        }
    }
}

fn reorg_suffix(reorganize: bool) -> &'static str {
    if reorganize {
        ",reorg"
    } else {
        ""
    }
}

/// Splits an optional `,reorg` suffix off a selection spelling. A field
/// pattern whose substring literally ends in `,reorg` cannot be spelled
/// through a scenario string (the suffix always wins); construct the op
/// directly in that case.
fn parse_sel_with_reorg(s: &str) -> Result<(ReadSelection, bool), String> {
    let (sel, reorganize) = match s.strip_suffix(",reorg") {
        Some(rest) => (rest, true),
        None => (s, false),
    };
    Ok((ReadSelection::parse(sel)?, reorganize))
}

/// A campaign shape: a validated sequence of [`ScenarioOp`]s (see module
/// docs). Travels as its `;`-joined spelling in configs and CLIs.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The ops, in program order.
    pub ops: Vec<ScenarioOp>,
}

impl Scenario {
    /// The plain write campaign (`write`) — the paper's original shape.
    pub fn write_only() -> Self {
        Self {
            ops: vec![ScenarioOp::Write],
        }
    }

    /// Write, then restart-read the last dump (`write;restart`) — the
    /// legacy read-after-write axis.
    pub fn write_restart() -> Self {
        Self {
            ops: vec![ScenarioOp::Write, ScenarioOp::Restart],
        }
    }

    /// Write with a checkpoint every `k` steps (`write;check@k`).
    pub fn checkpointed(k: u64) -> Self {
        Self {
            ops: vec![ScenarioOp::Write, ScenarioOp::CheckEvery(k)],
        }
    }

    /// Write with an in-run analysis read of every `m`-th plot dump
    /// (`write;analyze_every:m:SEL`).
    pub fn in_run_analysis(m: u64, sel: ReadSelection) -> Self {
        Self {
            ops: vec![
                ScenarioOp::Write,
                ScenarioOp::AnalyzeEvery {
                    every: m,
                    sel,
                    reorganize: false,
                },
            ],
        }
    }

    /// Write, crash after `step`, recover, and finish
    /// (`write;fail@step;restart`).
    pub fn fail_restart(step: u64) -> Self {
        Self {
            ops: vec![
                ScenarioOp::Write,
                ScenarioOp::Fail(step),
                ScenarioOp::Restart,
            ],
        }
    }

    /// Parses a `;`-separated program, validating it.
    pub fn parse(s: &str) -> Result<Self, String> {
        let ops = s
            .split(';')
            .map(|op| ScenarioOp::parse(op.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        let sc = Self { ops };
        sc.validate()?;
        Ok(sc)
    }

    /// The canonical `;`-joined spelling (`parse` round-trips it).
    pub fn name(&self) -> String {
        self.ops
            .iter()
            .map(ScenarioOp::name)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Checks program well-formedness: exactly one `write`; at most one
    /// `fail`, with step ≥ 1 and a `restart` somewhere after it; at most
    /// one `check@`, with cadence ≥ 1; analysis cadences ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        let writes = self
            .ops
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Write))
            .count();
        if writes != 1 {
            return Err(format!(
                "scenario '{}' must contain exactly one 'write' op (found {writes})",
                self.name()
            ));
        }
        let mut fail_at: Option<usize> = None;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                ScenarioOp::Fail(k) => {
                    if fail_at.is_some() {
                        return Err("scenario allows at most one 'fail@' op".to_string());
                    }
                    if *k == 0 {
                        return Err("fail@0 is invalid (step numbers start at 1)".to_string());
                    }
                    fail_at = Some(i);
                }
                ScenarioOp::CheckEvery(0) | ScenarioOp::AnalyzeEvery { every: 0, .. } => {
                    return Err(format!("'{}' needs a cadence >= 1", op.name()));
                }
                _ => {}
            }
        }
        if self
            .ops
            .iter()
            .filter(|op| matches!(op, ScenarioOp::CheckEvery(_)))
            .count()
            > 1
        {
            return Err("scenario allows at most one 'check@' op".to_string());
        }
        if let Some(i) = fail_at {
            let recovered = self.ops[i + 1..]
                .iter()
                .any(|op| matches!(op, ScenarioOp::Restart));
            if !recovered {
                return Err("'fail@' needs a 'restart' after it to recover".to_string());
            }
        }
        Ok(())
    }

    /// The checkpoint-cadence override, when the program carries one.
    pub fn check_every(&self) -> Option<u64> {
        self.ops.iter().find_map(|op| match op {
            ScenarioOp::CheckEvery(k) => Some(*k),
            _ => None,
        })
    }

    /// The failure step, when the program injects one.
    pub fn fail_step(&self) -> Option<u64> {
        self.ops.iter().find_map(|op| match op {
            ScenarioOp::Fail(k) => Some(*k),
            _ => None,
        })
    }

    /// The in-run analysis ops, in program order.
    pub fn analyze_every_ops(&self) -> Vec<(u64, ReadSelection, bool)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                ScenarioOp::AnalyzeEvery {
                    every,
                    sel,
                    reorganize,
                } => Some((*every, sel.clone(), *reorganize)),
                _ => None,
            })
            .collect()
    }

    /// The trailing (post-campaign) ops, in program order: every
    /// `restart` not consumed as the recovery of a `fail@`, plus
    /// `readall` and `analyze:` ops. Loop modifiers (`check@`,
    /// `analyze_every:`) and the fail/recovery pair are excluded.
    pub fn trailing_ops(&self) -> Vec<ScenarioOp> {
        let mut fail_pending = false;
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                ScenarioOp::Fail(_) => fail_pending = true,
                ScenarioOp::Restart => {
                    if fail_pending {
                        fail_pending = false; // consumed as the recovery
                    } else {
                        out.push(op.clone());
                    }
                }
                ScenarioOp::ReadAll | ScenarioOp::Analyze { .. } => out.push(op.clone()),
                ScenarioOp::Write | ScenarioOp::CheckEvery(_) | ScenarioOp::AnalyzeEvery { .. } => {
                }
            }
        }
        out
    }
}

// Hand-written serde: a scenario round-trips as its op spelling, so
// configs stay readable (mirrors `ReadSelection` and `CodecSpec`).
impl Serialize for Scenario {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name())
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected a scenario string"))?;
        Scenario::parse(s).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_the_issue_spelling() {
        let sc = Scenario::parse("write;fail@17;restart;analyze:level:2,reorg").unwrap();
        assert_eq!(sc.ops.len(), 4);
        assert_eq!(sc.fail_step(), Some(17));
        assert_eq!(
            sc.ops[3],
            ScenarioOp::Analyze {
                sel: ReadSelection::Level(2),
                reorganize: true,
            }
        );
        // The recovery restart is consumed by the fail; analyze trails.
        assert_eq!(sc.trailing_ops().len(), 1);
    }

    #[test]
    fn name_parse_round_trips_every_builder() {
        let scenarios = [
            Scenario::write_only(),
            Scenario::write_restart(),
            Scenario::checkpointed(8),
            Scenario::in_run_analysis(2, ReadSelection::Level(1)),
            Scenario::in_run_analysis(3, ReadSelection::parse("box:0-1,2-5").unwrap()),
            Scenario::fail_restart(17),
            Scenario::parse("write;readall").unwrap(),
            Scenario::parse("write;check@4;fail@10;restart;analyze:field:Cell,reorg").unwrap(),
        ];
        for sc in scenarios {
            sc.validate().unwrap();
            assert_eq!(Scenario::parse(&sc.name()).unwrap(), sc, "{}", sc.name());
        }
    }

    #[test]
    fn analyze_reorg_suffix_parses() {
        let op = ScenarioOp::parse("analyze:level:1,reorg").unwrap();
        assert_eq!(
            op,
            ScenarioOp::Analyze {
                sel: ReadSelection::Level(1),
                reorganize: true,
            }
        );
        // Box selections keep their own commas; only the suffix strips.
        let op = ScenarioOp::parse("analyze_every:2:box:0-1,2-5,reorg").unwrap();
        assert_eq!(
            op,
            ScenarioOp::AnalyzeEvery {
                every: 2,
                sel: ReadSelection::parse("box:0-1,2-5").unwrap(),
                reorganize: true,
            }
        );
    }

    #[test]
    fn validation_rejects_malformed_programs() {
        // No write.
        assert!(Scenario::parse("restart").is_err());
        // Two writes.
        assert!(Scenario::parse("write;write").is_err());
        // Fail without recovery.
        assert!(Scenario::parse("write;fail@3").is_err());
        // Recovery before the failure does not count.
        assert!(Scenario::parse("write;restart;fail@3").is_err());
        // Step/cadence bounds.
        assert!(Scenario::parse("write;fail@0;restart").is_err());
        assert!(Scenario::parse("write;check@0").is_err());
        assert!(Scenario::parse("write;analyze_every:0:full").is_err());
        // Two failures / two cadences.
        assert!(Scenario::parse("write;fail@2;restart;fail@5;restart").is_err());
        assert!(Scenario::parse("write;check@2;check@4").is_err());
        // Unknown op.
        assert!(Scenario::parse("write;explode").is_err());
    }

    #[test]
    fn trailing_ops_skip_the_recovery_restart() {
        let sc = Scenario::parse("write;fail@5;restart;restart;readall").unwrap();
        // First restart recovers the failure; second is a trailing read.
        assert_eq!(
            sc.trailing_ops(),
            vec![ScenarioOp::Restart, ScenarioOp::ReadAll]
        );
        assert!(Scenario::write_restart().trailing_ops() == vec![ScenarioOp::Restart]);
        assert!(Scenario::fail_restart(5).trailing_ops().is_empty());
    }

    #[test]
    fn modifier_accessors() {
        let sc = Scenario::parse("write;check@8;analyze_every:2:level:1").unwrap();
        assert_eq!(sc.check_every(), Some(8));
        assert_eq!(sc.fail_step(), None);
        let ae = sc.analyze_every_ops();
        assert_eq!(ae.len(), 1);
        assert_eq!(ae[0], (2, ReadSelection::Level(1), false));
    }

    #[test]
    fn serde_round_trips_as_the_spelling() {
        use serde::{Deserialize as _, Serialize as _};
        let sc = Scenario::parse("write;check@4;fail@10;restart;analyze:level:1,reorg").unwrap();
        let v = sc.to_value();
        assert_eq!(v.as_str(), Some(sc.name().as_str()));
        assert_eq!(Scenario::from_value(&v).unwrap(), sc);
        // Malformed spellings fail to deserialize.
        let bad = serde::Value::String("write;write".to_string());
        assert!(Scenario::from_value(&bad).is_err());
    }
}
