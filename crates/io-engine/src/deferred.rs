//! Deferred (burst-buffer) backend: double-buffered staging with an
//! asynchronous drain pool.
//!
//! Puts stage in memory at full speed (the "burst buffer absorb" phase);
//! the physical flush of step `k` happens while the application computes
//! step `k+1`, modelling in-transit staging (AMRIC-style). The physical
//! layout equals [`crate::FilePerProcess`] — one file per logical path —
//! only the *when* changes:
//!
//! * with a shared (`Arc`) filesystem handle, a pool of drain threads
//!   performs the writes truly asynchronously; `end_step` blocks only
//!   while the *previous* step is still draining (two staging buffers);
//! * with a borrowed handle (no `'static` lifetime for threads), the
//!   previous step's staging is flushed inline at the next `end_step` /
//!   `close`, preserving the same deferred write ordering.
//!
//! Either way [`IoBackend::overlapped`] reports `true`, and the burst
//! scheduler in `iosim` overlaps the simulated drain with the following
//! compute phase — which is what makes deferred runs finish in less
//! simulated wall-clock than file-per-process for the same byte volume.

use crate::backend::{
    unsupported_read, EngineReport, IoBackend, Put, StepRead, StepStats, TrackerHandle, VfsHandle,
};
use crate::fpp::{manifest_of, read_manifest_step, StepBuild, StepManifest};
use crate::selection::ReadSelection;
use bytes::Bytes;
use iosim::{Vfs, WriteRequest};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One staged physical file awaiting drain. Content is the put
/// payloads' shared segments — staging holds references to the same
/// buffers the producer filled, and the drain ships them zero-copy.
struct StagedFile {
    path: String,
    content: Option<Vec<Bytes>>,
}

/// Shared drain-pool state: outstanding file count and error latch.
struct PoolState {
    outstanding: Mutex<usize>,
    idle: Condvar,
    io_errors: AtomicU64,
}

/// A pool of threads flushing staged files to a shared [`Vfs`].
struct DrainPool {
    tx: Option<Sender<StagedFile>>,
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
}

impl DrainPool {
    fn new(vfs: Arc<dyn Vfs>, nworkers: usize) -> Self {
        let (tx, rx) = channel::<StagedFile>();
        let rx = Arc::new(Mutex::new(rx));
        let state = Arc::new(PoolState {
            outstanding: Mutex::new(0),
            idle: Condvar::new(),
            io_errors: AtomicU64::new(0),
        });
        let workers = (0..nworkers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let vfs = Arc::clone(&vfs);
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let msg = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    let Ok(file) = msg else { return };
                    if let Some(content) = &file.content {
                        if vfs.write_file_concat(&file.path, content).is_err() {
                            state.io_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let mut n = state.outstanding.lock().unwrap_or_else(|e| e.into_inner());
                    *n -= 1;
                    if *n == 0 {
                        state.idle.notify_all();
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            state,
            workers,
        }
    }

    fn submit(&self, files: Vec<StagedFile>) {
        let tx = self.tx.as_ref().expect("drain pool closed");
        {
            let mut n = self
                .state
                .outstanding
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *n += files.len();
        }
        for f in files {
            tx.send(f).expect("drain pool receiver alive");
        }
    }

    /// Blocks until every submitted file has been flushed.
    fn wait_idle(&self) -> io::Result<()> {
        let mut n = self
            .state
            .outstanding
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.state.idle.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        if self.state.io_errors.swap(0, Ordering::Relaxed) > 0 {
            return Err(io::Error::other("deferred drain: write failed"));
        }
        Ok(())
    }

    fn shutdown(&mut self) {
        self.tx.take(); // closing the channel stops the workers
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for DrainPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The burst-buffer backend (see module docs).
pub struct Deferred<'a> {
    vfs: VfsHandle<'a>,
    tracker: TrackerHandle<'a>,
    pool: Option<DrainPool>,
    /// Staged files awaiting inline flush (borrowed-handle mode only).
    pending: Vec<StagedFile>,
    cur: Option<StepBuild>,
    /// Per-step layout manifests for the read path (layout == fpp).
    manifests: HashMap<u32, StepManifest>,
    report: EngineReport,
}

impl<'a> Deferred<'a> {
    /// A deferred backend over `vfs`, staging through `nworkers` drain
    /// threads when the handle is shared (threads need `'static` access;
    /// with a borrowed handle the drain degrades to flush-at-next-step).
    pub fn new(
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
        nworkers: usize,
    ) -> Self {
        let vfs = vfs.into();
        let pool = vfs.shared().map(|shared| DrainPool::new(shared, nworkers));
        Self {
            vfs,
            tracker: tracker.into(),
            pool,
            pending: Vec::new(),
            cur: None,
            manifests: HashMap::new(),
            report: EngineReport::default(),
        }
    }

    /// True when a real drain pool is running (shared handle).
    pub fn is_async(&self) -> bool {
        self.pool.is_some()
    }

    /// Flushes the previous step's staging (inline mode) or waits for the
    /// pool to finish it (async mode).
    fn drain_previous(&mut self) -> io::Result<()> {
        if let Some(pool) = &self.pool {
            pool.wait_idle()?;
        }
        for f in self.pending.drain(..) {
            if let Some(content) = &f.content {
                self.vfs.write_file_concat(&f.path, content)?;
            }
        }
        Ok(())
    }
}

impl IoBackend for Deferred<'_> {
    fn name(&self) -> String {
        "deferred".to_string()
    }

    fn overlapped(&self) -> bool {
        true
    }

    fn begin_step(&mut self, step: u32, _container: &str) {
        assert!(self.cur.is_none(), "begin_step: step already open");
        self.cur = Some(StepBuild::new(step));
    }

    fn create_dir_all(&mut self, path: &str) -> io::Result<()> {
        self.vfs.create_dir_all(path)
    }

    fn put(&mut self, put: Put) -> io::Result<()> {
        let cur = self.cur.as_mut().expect("put: no open step");
        self.tracker
            .record(put.key, put.kind, put.payload.logical_len());
        cur.push(put);
        Ok(())
    }

    fn end_step(&mut self) -> io::Result<StepStats> {
        let cur = self.cur.take().expect("end_step: no open step");
        // Double buffering: the buffer we are about to fill must have
        // finished draining.
        self.drain_previous()?;

        let step = cur.step;
        let mut stats = StepStats {
            step,
            ..StepStats::default()
        };
        let files = cur.into_files();
        self.manifests.insert(step, manifest_of(&files));
        let mut staged = Vec::new();
        for (path, build) in files {
            stats.files += 1;
            stats.bytes += build.bytes;
            stats.logical_bytes += build.logical_bytes;
            stats.requests.push(WriteRequest {
                rank: build.rank,
                path: path.clone(),
                bytes: build.bytes,
                start: 0.0,
            });
            staged.push(StagedFile {
                path,
                content: (!build.account_only).then_some(build.segs),
            });
        }
        if let Some(pool) = &self.pool {
            pool.submit(staged);
        } else {
            self.pending = staged;
        }
        self.report.steps += 1;
        self.report.files += stats.files;
        self.report.bytes += stats.bytes;
        self.report.logical_bytes += stats.logical_bytes;
        Ok(stats)
    }

    fn read_selection(
        &mut self,
        step: u32,
        _container: &str,
        sel: &ReadSelection,
    ) -> io::Result<StepRead> {
        assert!(self.cur.is_none(), "read_step: step still open");
        // Read-after-write consistency: the requested step may still be
        // staged (in the drain pool or the inline pending buffer) —
        // barrier every in-flight drain before touching the filesystem.
        self.drain_previous()?;
        let manifest = self
            .manifests
            .get(&step)
            .ok_or_else(|| unsupported_read(&self.name(), step, sel, "step was never written"))?;
        read_manifest_step(&self.vfs, &self.tracker, manifest, step, sel)
    }

    fn close(&mut self) -> io::Result<EngineReport> {
        assert!(self.cur.is_none(), "close: step still open");
        self.drain_previous()?;
        if let Some(pool) = &mut self.pool {
            pool.shutdown();
        }
        self.pool = None;
        Ok(self.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Payload;
    use iosim::{IoKey, IoKind, IoTracker, MemFs, Vfs};

    fn put(step: u32, task: u32, path: &str, data: &[u8]) -> Put {
        Put {
            key: IoKey {
                step,
                level: 0,
                task,
            },
            kind: IoKind::Data,
            path: path.to_string(),
            payload: Payload::Bytes(data.to_vec().into()),
        }
    }

    #[test]
    fn borrowed_mode_defers_writes_one_step() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Deferred::new(&fs as &dyn Vfs, &tracker, 2);
        assert!(!b.is_async());

        b.begin_step(1, "/");
        b.put(put(1, 0, "/s1", b"one")).unwrap();
        b.end_step().unwrap();
        // Step 1 is staged, not yet on the filesystem.
        assert_eq!(fs.nfiles(), 0);

        b.begin_step(2, "/");
        b.put(put(2, 0, "/s2", b"two")).unwrap();
        b.end_step().unwrap();
        // Draining step 1 happened at the step-2 swap.
        assert_eq!(fs.read_file("/s1"), Some(b"one".to_vec()));
        assert_eq!(fs.nfiles(), 1);

        b.close().unwrap();
        assert_eq!(fs.read_file("/s2"), Some(b"two".to_vec()));
        assert_eq!(fs.nfiles(), 2);
    }

    #[test]
    fn async_mode_flushes_through_worker_threads() {
        let fs: Arc<dyn Vfs> = Arc::new(MemFs::new());
        let tracker = Arc::new(IoTracker::new());
        let mut b = Deferred::new(Arc::clone(&fs), Arc::clone(&tracker), 2);
        assert!(b.is_async());
        for step in 1..=4u32 {
            b.begin_step(step, "/");
            b.put(put(step, 0, &format!("/f{step}"), b"payload"))
                .unwrap();
            b.put(put(step, 1, &format!("/g{step}"), b"payload2"))
                .unwrap();
            b.end_step().unwrap();
        }
        let report = b.close().unwrap();
        assert_eq!(report.files, 8);
        assert_eq!(fs.nfiles(), 8);
        assert_eq!(fs.read_file("/f3"), Some(b"payload".to_vec()));
        assert_eq!(tracker.total_bytes(), report.bytes);
    }

    #[test]
    fn stats_match_fpp_layout() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Deferred::new(&fs as &dyn Vfs, &tracker, 1);
        b.begin_step(1, "/");
        b.put(put(1, 0, "/shared", b"aa")).unwrap();
        b.put(put(1, 1, "/shared", b"bb")).unwrap();
        b.put(put(1, 2, "/own", b"cc")).unwrap();
        let stats = b.end_step().unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.bytes, 6);
        assert_eq!(stats.requests.len(), 2);
        b.close().unwrap();
        assert_eq!(fs.read_file("/shared"), Some(b"aabb".to_vec()));
    }

    #[test]
    fn read_step_barriers_staged_drains() {
        // The just-ended step is still staged (borrowed mode defers it);
        // a restart read must flush it first and then round-trip.
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let mut b = Deferred::new(&fs as &dyn Vfs, &tracker, 1);
        b.begin_step(1, "/");
        b.put(put(1, 0, "/s1", b"staged")).unwrap();
        b.end_step().unwrap();
        assert_eq!(fs.nfiles(), 0, "still staged");
        let read = b.read_step(1, "/").unwrap();
        assert_eq!(fs.nfiles(), 1, "read barriered the drain");
        assert_eq!(read.logical_content("/s1"), Some(b"staged".to_vec()));
        assert_eq!(tracker.total_read_bytes(), 6);
    }

    #[test]
    fn async_read_step_waits_for_drain_pool() {
        let fs: Arc<dyn Vfs> = Arc::new(MemFs::new());
        let tracker = Arc::new(IoTracker::new());
        let mut b = Deferred::new(Arc::clone(&fs), Arc::clone(&tracker), 2);
        for step in 1..=3u32 {
            b.begin_step(step, "/");
            b.put(put(step, 0, &format!("/f{step}"), b"payload"))
                .unwrap();
            b.end_step().unwrap();
        }
        // Reading the last (possibly in-flight) step must see its bytes.
        let read = b.read_step(3, "/").unwrap();
        assert_eq!(read.logical_content("/f3"), Some(b"payload".to_vec()));
        b.close().unwrap();
    }

    #[test]
    fn reports_overlap_capability() {
        let fs = MemFs::new();
        let tracker = IoTracker::new();
        let b = Deferred::new(&fs as &dyn Vfs, &tracker, 1);
        assert!(b.overlapped());
    }
}
