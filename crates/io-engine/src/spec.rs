//! Backend selection: a small, serializable spec that CLIs and campaign
//! configs carry, turned into a live backend at run time.

use crate::backend::{IoBackend, TrackerHandle, VfsHandle};
use crate::codec::CodecSpec;
use crate::stage::CompressionStage;
use crate::streaming::Streaming;
use crate::{Aggregated, Deferred, FilePerProcess};
use mpi_sim::NetworkModel;
use serde::{Deserialize, Serialize};

/// Parameters of the in-transit [`Streaming`] backend, in integer units
/// so the spec stays `Copy + Eq` and spells the same on every CLI.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// Link bandwidth in MB/s (decimal, 1e6 bytes). Default is one
    /// Summit EDR InfiniBand port (12,500 MB/s).
    pub link_mbps: u32,
    /// Consumer window capacity in MiB; `0` = unbounded.
    pub window_mib: u32,
    /// Consumer drain rate in MB/s; `0` = the consumer always keeps up.
    pub consumer_mbps: u32,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            link_mbps: 12_500,
            window_mib: 0,
            consumer_mbps: 0,
        }
    }
}

impl StreamSpec {
    /// The per-transfer link latency every streamed spec models (one
    /// NIC setup, ~10 µs); not a spec axis — sweeps vary bandwidth.
    pub const LINK_LATENCY: f64 = 1e-5;

    /// The modeled link this spec names.
    pub fn network(&self) -> NetworkModel {
        NetworkModel::new(self.link_mbps as f64 * 1e6, Self::LINK_LATENCY)
    }

    /// Window capacity in bytes (`None` = unbounded).
    pub fn window_bytes(&self) -> Option<u64> {
        (self.window_mib > 0).then_some(self.window_mib as u64 * (1 << 20))
    }

    /// Consumer drain rate in bytes/s (`None` = keeps up).
    pub fn consumer_rate(&self) -> Option<f64> {
        (self.consumer_mbps > 0).then_some(self.consumer_mbps as f64 * 1e6)
    }
}

/// Which I/O backend a run writes through.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// N-to-N: one physical file per logical path.
    #[default]
    FilePerProcess,
    /// BP-style two-level aggregation with the given ratio (producer
    /// tasks per aggregator subfile).
    Aggregated(usize),
    /// Burst-buffer staging with the given drain-pool worker count.
    Deferred(usize),
    /// In-transit streaming over a modeled interconnect link: steps
    /// ship to consumers instead of storage, analysis reads are served
    /// from the consumer window.
    Streaming(StreamSpec),
}

impl BackendSpec {
    /// Parses a CLI spelling:
    /// `fpp` | `agg:<ratio>` | `aggregated:<ratio>` |
    /// `deferred[:<workers>]` |
    /// `streaming[:<link_mbps>[:<window_mib>[:<consumer_mbps>]]]`
    /// (window `0` = unbounded, consumer `0` = keeps up).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match head {
            "fpp" | "file_per_process" | "n-to-n" => match arg {
                None => Ok(BackendSpec::FilePerProcess),
                Some(a) => Err(format!("backend 'fpp' takes no argument, got '{a}'")),
            },
            "agg" | "aggregated" => {
                let ratio = match arg {
                    None => 4,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad aggregation ratio '{a}'"))?,
                };
                if ratio == 0 {
                    return Err("aggregation ratio must be positive".to_string());
                }
                Ok(BackendSpec::Aggregated(ratio))
            }
            "deferred" | "bb" | "burst_buffer" => {
                let workers = match arg {
                    None => 1,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad worker count '{a}'"))?,
                };
                if workers == 0 {
                    return Err("deferred worker count must be positive".to_string());
                }
                Ok(BackendSpec::Deferred(workers))
            }
            "streaming" | "stream" | "sst" => {
                let mut spec = StreamSpec::default();
                if let Some(rest) = arg {
                    let mut parts = rest.split(':');
                    let fields: [(&str, &mut u32); 3] = [
                        ("link bandwidth", &mut spec.link_mbps),
                        ("window size", &mut spec.window_mib),
                        ("consumer rate", &mut spec.consumer_mbps),
                    ];
                    for (what, slot) in fields {
                        let Some(p) = parts.next() else { break };
                        *slot = p
                            .parse::<u32>()
                            .map_err(|_| format!("bad streaming {what} '{p}'"))?;
                    }
                    if let Some(extra) = parts.next() {
                        return Err(format!("extra streaming argument '{extra}'"));
                    }
                }
                if spec.link_mbps == 0 {
                    return Err("streaming link bandwidth must be positive".to_string());
                }
                Ok(BackendSpec::Streaming(spec))
            }
            other => Err(format!(
                "unknown io backend '{other}' (expected fpp, agg:<ratio>, \
                 deferred[:<workers>], or streaming[:<mbps>[:<window_mib>[:<consumer_mbps>]]])"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> String {
        match self {
            BackendSpec::FilePerProcess => "fpp".to_string(),
            BackendSpec::Aggregated(r) => format!("agg:{r}"),
            BackendSpec::Deferred(w) => format!("deferred:{w}"),
            BackendSpec::Streaming(s) => {
                if *s == StreamSpec::default() {
                    "streaming".to_string()
                } else if s.consumer_mbps != 0 {
                    format!(
                        "streaming:{}:{}:{}",
                        s.link_mbps, s.window_mib, s.consumer_mbps
                    )
                } else if s.window_mib != 0 {
                    format!("streaming:{}:{}", s.link_mbps, s.window_mib)
                } else {
                    format!("streaming:{}", s.link_mbps)
                }
            }
        }
    }

    /// True when this backend overlaps drains with compute.
    pub fn overlapped(&self) -> bool {
        matches!(self, BackendSpec::Deferred(_))
    }

    /// True when this backend ships steps over the interconnect instead
    /// of through storage (see [`crate::IoBackend::in_transit`]).
    pub fn in_transit(&self) -> bool {
        matches!(self, BackendSpec::Streaming(_))
    }

    /// Builds the live backend over borrowed (or shared, via the handle
    /// enums) filesystem and tracker handles.
    pub fn build<'a>(
        &self,
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
    ) -> Box<dyn IoBackend + 'a> {
        match *self {
            BackendSpec::FilePerProcess => Box::new(FilePerProcess::new(vfs, tracker)),
            BackendSpec::Aggregated(ratio) => Box::new(Aggregated::new(vfs, tracker, ratio)),
            BackendSpec::Deferred(workers) => Box::new(Deferred::new(vfs, tracker, workers)),
            BackendSpec::Streaming(s) => Box::new(Streaming::new(
                tracker,
                s.network(),
                s.window_bytes(),
                s.consumer_rate(),
            )),
        }
    }

    /// Builds the live backend with a compression stage in front of it —
    /// the full backend × codec write stack of a campaign scenario. The
    /// identity codec adds no stage at all, so default-codec runs keep the
    /// exact pre-compression write path (no sidecar, no wrapper).
    pub fn build_with_codec<'a>(
        &self,
        codec: CodecSpec,
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
    ) -> Box<dyn IoBackend + 'a> {
        let vfs = vfs.into();
        if codec.is_identity() {
            return self.build(vfs, tracker);
        }
        let inner = self.build(vfs.clone(), tracker);
        Box::new(CompressionStage::new(inner, codec.build(), vfs))
    }
}

// Hand-written serde: the spec round-trips as its CLI spelling, so
// configs stay readable and variant payloads never leak a format of
// their own (mirrors `ReadSelection` and `macsio::FileMode`).
impl Serialize for BackendSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name())
    }
}

impl Deserialize for BackendSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected an io-backend string"))?;
        BackendSpec::parse(s).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(
            BackendSpec::parse("fpp").unwrap(),
            BackendSpec::FilePerProcess
        );
        assert_eq!(
            BackendSpec::parse("agg:16").unwrap(),
            BackendSpec::Aggregated(16)
        );
        assert_eq!(
            BackendSpec::parse("agg").unwrap(),
            BackendSpec::Aggregated(4)
        );
        assert_eq!(
            BackendSpec::parse("deferred").unwrap(),
            BackendSpec::Deferred(1)
        );
        assert_eq!(
            BackendSpec::parse("deferred:3").unwrap(),
            BackendSpec::Deferred(3)
        );
        assert_eq!(
            BackendSpec::parse("streaming").unwrap(),
            BackendSpec::Streaming(StreamSpec::default())
        );
        assert_eq!(
            BackendSpec::parse("stream").unwrap(),
            BackendSpec::Streaming(StreamSpec::default())
        );
        assert_eq!(
            BackendSpec::parse("streaming:800:64:100").unwrap(),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 800,
                window_mib: 64,
                consumer_mbps: 100,
            })
        );
        assert_eq!(
            BackendSpec::parse("streaming:800").unwrap(),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 800,
                ..StreamSpec::default()
            })
        );
        assert!(BackendSpec::parse("agg:0").is_err());
        assert!(BackendSpec::parse("silo").is_err());
        assert!(BackendSpec::parse("fpp:2").is_err());
        assert!(BackendSpec::parse("streaming:0").is_err(), "dead link");
        assert!(BackendSpec::parse("streaming:1:2:3:4").is_err(), "extra");
        assert!(BackendSpec::parse("streaming:fast").is_err());
    }

    #[test]
    fn name_round_trips() {
        for spec in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(7),
            BackendSpec::Deferred(2),
            BackendSpec::Streaming(StreamSpec::default()),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 800,
                window_mib: 0,
                consumer_mbps: 0,
            }),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 800,
                window_mib: 64,
                consumer_mbps: 0,
            }),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 800,
                window_mib: 64,
                consumer_mbps: 100,
            }),
        ] {
            assert_eq!(BackendSpec::parse(&spec.name()).unwrap(), spec);
        }
    }

    #[test]
    fn only_deferred_overlaps() {
        assert!(!BackendSpec::FilePerProcess.overlapped());
        assert!(!BackendSpec::Aggregated(4).overlapped());
        assert!(BackendSpec::Deferred(1).overlapped());
        assert!(!BackendSpec::Streaming(StreamSpec::default()).overlapped());
    }

    #[test]
    fn only_streaming_is_in_transit() {
        assert!(!BackendSpec::FilePerProcess.in_transit());
        assert!(!BackendSpec::Aggregated(4).in_transit());
        assert!(!BackendSpec::Deferred(1).in_transit());
        assert!(BackendSpec::Streaming(StreamSpec::default()).in_transit());
    }

    #[test]
    fn serde_round_trip_is_portable() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(16),
            BackendSpec::Deferred(2),
            BackendSpec::Streaming(StreamSpec {
                link_mbps: 1200,
                window_mib: 256,
                consumer_mbps: 0,
            }),
        ] {
            let v = spec.to_value();
            assert_eq!(v.as_str(), Some(spec.name().as_str()));
            assert_eq!(BackendSpec::from_value(&v).unwrap(), spec);
        }
    }

    #[test]
    fn stream_spec_units_convert() {
        let s = StreamSpec {
            link_mbps: 100,
            window_mib: 8,
            consumer_mbps: 10,
        };
        assert_eq!(s.network().link_bandwidth, 1e8);
        assert_eq!(s.window_bytes(), Some(8 << 20));
        assert_eq!(s.consumer_rate(), Some(1e7));
        let d = StreamSpec::default();
        assert_eq!(d.window_bytes(), None, "unbounded by default");
        assert_eq!(d.consumer_rate(), None, "keeps up by default");
    }
}
