//! Backend selection: a small, serializable spec that CLIs and campaign
//! configs carry, turned into a live backend at run time.

use crate::backend::{IoBackend, TrackerHandle, VfsHandle};
use crate::codec::CodecSpec;
use crate::stage::CompressionStage;
use crate::{Aggregated, Deferred, FilePerProcess};
use serde::{Deserialize, Serialize};

/// Which I/O backend a run writes through.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// N-to-N: one physical file per logical path.
    #[default]
    FilePerProcess,
    /// BP-style two-level aggregation with the given ratio (producer
    /// tasks per aggregator subfile).
    Aggregated(usize),
    /// Burst-buffer staging with the given drain-pool worker count.
    Deferred(usize),
}

impl BackendSpec {
    /// Parses a CLI spelling:
    /// `fpp` | `agg:<ratio>` | `aggregated:<ratio>` | `deferred[:<workers>]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match head {
            "fpp" | "file_per_process" | "n-to-n" => match arg {
                None => Ok(BackendSpec::FilePerProcess),
                Some(a) => Err(format!("backend 'fpp' takes no argument, got '{a}'")),
            },
            "agg" | "aggregated" => {
                let ratio = match arg {
                    None => 4,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad aggregation ratio '{a}'"))?,
                };
                if ratio == 0 {
                    return Err("aggregation ratio must be positive".to_string());
                }
                Ok(BackendSpec::Aggregated(ratio))
            }
            "deferred" | "bb" | "burst_buffer" => {
                let workers = match arg {
                    None => 1,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad worker count '{a}'"))?,
                };
                if workers == 0 {
                    return Err("deferred worker count must be positive".to_string());
                }
                Ok(BackendSpec::Deferred(workers))
            }
            other => Err(format!(
                "unknown io backend '{other}' (expected fpp, agg:<ratio>, or deferred[:<workers>])"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> String {
        match self {
            BackendSpec::FilePerProcess => "fpp".to_string(),
            BackendSpec::Aggregated(r) => format!("agg:{r}"),
            BackendSpec::Deferred(w) => format!("deferred:{w}"),
        }
    }

    /// True when this backend overlaps drains with compute.
    pub fn overlapped(&self) -> bool {
        matches!(self, BackendSpec::Deferred(_))
    }

    /// Builds the live backend over borrowed (or shared, via the handle
    /// enums) filesystem and tracker handles.
    pub fn build<'a>(
        &self,
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
    ) -> Box<dyn IoBackend + 'a> {
        match *self {
            BackendSpec::FilePerProcess => Box::new(FilePerProcess::new(vfs, tracker)),
            BackendSpec::Aggregated(ratio) => Box::new(Aggregated::new(vfs, tracker, ratio)),
            BackendSpec::Deferred(workers) => Box::new(Deferred::new(vfs, tracker, workers)),
        }
    }

    /// Builds the live backend with a compression stage in front of it —
    /// the full backend × codec write stack of a campaign scenario. The
    /// identity codec adds no stage at all, so default-codec runs keep the
    /// exact pre-compression write path (no sidecar, no wrapper).
    pub fn build_with_codec<'a>(
        &self,
        codec: CodecSpec,
        vfs: impl Into<VfsHandle<'a>>,
        tracker: impl Into<TrackerHandle<'a>>,
    ) -> Box<dyn IoBackend + 'a> {
        let vfs = vfs.into();
        if codec.is_identity() {
            return self.build(vfs, tracker);
        }
        let inner = self.build(vfs.clone(), tracker);
        Box::new(CompressionStage::new(inner, codec.build(), vfs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(
            BackendSpec::parse("fpp").unwrap(),
            BackendSpec::FilePerProcess
        );
        assert_eq!(
            BackendSpec::parse("agg:16").unwrap(),
            BackendSpec::Aggregated(16)
        );
        assert_eq!(
            BackendSpec::parse("agg").unwrap(),
            BackendSpec::Aggregated(4)
        );
        assert_eq!(
            BackendSpec::parse("deferred").unwrap(),
            BackendSpec::Deferred(1)
        );
        assert_eq!(
            BackendSpec::parse("deferred:3").unwrap(),
            BackendSpec::Deferred(3)
        );
        assert!(BackendSpec::parse("agg:0").is_err());
        assert!(BackendSpec::parse("silo").is_err());
        assert!(BackendSpec::parse("fpp:2").is_err());
    }

    #[test]
    fn name_round_trips() {
        for spec in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(7),
            BackendSpec::Deferred(2),
        ] {
            assert_eq!(BackendSpec::parse(&spec.name()).unwrap(), spec);
        }
    }

    #[test]
    fn only_deferred_overlaps() {
        assert!(!BackendSpec::FilePerProcess.overlapped());
        assert!(!BackendSpec::Aggregated(4).overlapped());
        assert!(BackendSpec::Deferred(1).overlapped());
    }

    #[test]
    fn serde_round_trip_is_portable() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(16),
            BackendSpec::Deferred(2),
        ] {
            let v = spec.to_value();
            assert_eq!(BackendSpec::from_value(&v).unwrap(), spec);
        }
    }
}
