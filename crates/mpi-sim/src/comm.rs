//! Simulated communicator: the world of ranks and their node topology.
//!
//! `SimComm` plays the role of `MPI_COMM_WORLD` plus the `jsrun` resource
//! layout on Summit: `nranks` MPI tasks packed `ranks_per_node` to a node.
//! Rank loops execute through rayon, but each rank's closure receives an
//! independent [`RankCtx`], so results are deterministic and identical to
//! a sequential execution.

use crate::clock::SimClock;
use crate::network::NetworkModel;
use crate::rng::rank_rng;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// The simulated world: rank count and node topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimComm {
    nranks: usize,
    ranks_per_node: usize,
    seed: u64,
}

/// Per-rank execution context handed to rank loops.
pub struct RankCtx {
    /// This rank's id in `[0, nranks)`.
    pub rank: usize,
    /// World size.
    pub nranks: usize,
    /// Node hosting this rank.
    pub node: usize,
    /// This rank's simulated wall clock.
    pub clock: SimClock,
    /// This rank's deterministic RNG stream.
    pub rng: StdRng,
}

impl RankCtx {
    /// Times a point-to-point send of `bytes` over `net` on this rank's
    /// clock and returns the transfer duration — the rank-loop spelling
    /// of [`NetworkModel::send`].
    pub fn send(&mut self, net: &NetworkModel, bytes: u64) -> f64 {
        net.send(&mut self.clock, bytes)
    }
}

impl SimComm {
    /// Creates a world of `nranks` ranks, `ranks_per_node` per node,
    /// with RNG streams derived from `seed`.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or `ranks_per_node == 0`.
    pub fn new(nranks: usize, ranks_per_node: usize, seed: u64) -> Self {
        assert!(nranks > 0, "SimComm: zero ranks");
        assert!(ranks_per_node > 0, "SimComm: zero ranks per node");
        Self {
            nranks,
            ranks_per_node,
            seed,
        }
    }

    /// The paper's typical Summit layout: 2 ranks per node (e.g. 1,024
    /// ranks on 512 nodes).
    pub fn summit(nranks: usize, seed: u64) -> Self {
        Self::new(nranks, 2, seed)
    }

    /// World size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Ranks packed per node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of nodes in use.
    #[inline]
    pub fn nnodes(&self) -> usize {
        self.nranks.div_ceil(self.ranks_per_node)
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Global RNG seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the context for one rank, with its clock at `t0`.
    pub fn rank_ctx(&self, rank: usize, t0: f64) -> RankCtx {
        RankCtx {
            rank,
            nranks: self.nranks,
            node: self.node_of(rank),
            clock: SimClock::at(t0),
            rng: rank_rng(self.seed, rank),
        }
    }

    /// Runs `f` once per rank in parallel, returning results ordered by
    /// rank. Each rank gets a fresh context with its clock at `t0`.
    pub fn run<T, F>(&self, t0: f64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        (0..self.nranks)
            .into_par_iter()
            .map(|rank| {
                let mut ctx = self.rank_ctx(rank, t0);
                f(&mut ctx)
            })
            .collect()
    }

    /// Sequential variant of [`SimComm::run`] (useful for debugging and for
    /// asserting determinism in tests).
    pub fn run_seq<T, F>(&self, t0: f64, mut f: F) -> Vec<T>
    where
        F: FnMut(&mut RankCtx) -> T,
    {
        (0..self.nranks)
            .map(|rank| {
                let mut ctx = self.rank_ctx(rank, t0);
                f(&mut ctx)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn topology_packing() {
        let c = SimComm::new(7, 3, 0);
        assert_eq!(c.nnodes(), 3);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(2), 0);
        assert_eq!(c.node_of(3), 1);
        assert_eq!(c.node_of(6), 2);
    }

    #[test]
    fn summit_layout() {
        let c = SimComm::summit(1024, 0);
        assert_eq!(c.nnodes(), 512);
        assert_eq!(c.ranks_per_node(), 2);
    }

    #[test]
    fn run_returns_rank_ordered_results() {
        let c = SimComm::new(16, 4, 0);
        let out = c.run(0.0, |ctx| ctx.rank * 10);
        assert_eq!(out, (0..16).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let c = SimComm::new(32, 2, 99);
        let par = c.run(1.0, |ctx| {
            let x: f64 = ctx.rng.gen();
            ctx.clock.advance(x);
            (ctx.rank, ctx.node, ctx.clock.now())
        });
        let seq = c.run_seq(1.0, |ctx| {
            let x: f64 = ctx.rng.gen();
            ctx.clock.advance(x);
            (ctx.rank, ctx.node, ctx.clock.now())
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn contexts_start_at_t0() {
        let c = SimComm::new(4, 2, 0);
        let times = c.run(3.5, |ctx| ctx.clock.now());
        assert!(times.iter().all(|&t| t == 3.5));
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        SimComm::new(0, 1, 0);
    }

    #[test]
    fn rank_send_prices_the_transfer_on_the_rank_clock() {
        let c = SimComm::new(2, 2, 0);
        let net = NetworkModel::new(1e6, 0.5);
        let ends = c.run(0.0, |ctx| {
            let dt = ctx.send(&net, 1_000_000);
            assert!((dt - 1.5).abs() < 1e-12);
            ctx.clock.now()
        });
        assert!(ends.iter().all(|&t| (t - 1.5).abs() < 1e-12));
    }
}
