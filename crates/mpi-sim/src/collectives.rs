//! Collective operations over per-rank values.
//!
//! In the simulated runtime a "collective" is a pure function over the
//! rank-ordered result vector of a rank loop. These helpers mirror the MPI
//! collectives the AMReX I/O path uses (gathers of byte counts, reductions
//! of timestep sizes) and keep call sites self-documenting.

/// Sum reduction (MPI_Allreduce with MPI_SUM).
pub fn allreduce_sum<T>(values: &[T]) -> T
where
    T: Copy + std::iter::Sum<T>,
{
    values.iter().copied().sum()
}

/// Minimum reduction (MPI_Allreduce with MPI_MIN) for floats.
///
/// Returns `f64::INFINITY` for an empty world.
pub fn allreduce_min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum reduction (MPI_Allreduce with MPI_MAX) for floats.
///
/// Returns `f64::NEG_INFINITY` for an empty world.
pub fn allreduce_max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Gather to root (MPI_Gather): clones the rank-ordered values.
pub fn gather<T: Clone>(values: &[T]) -> Vec<T> {
    values.to_vec()
}

/// Exclusive prefix sum (MPI_Exscan with MPI_SUM): element `i` receives the
/// sum of values from ranks `< i`. Rank 0 receives zero.
pub fn exscan_sum(values: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reduction() {
        assert_eq!(allreduce_sum(&[1u64, 2, 3]), 6);
        assert_eq!(allreduce_sum::<u64>(&[]), 0);
    }

    #[test]
    fn min_max_reduction() {
        let v = [3.0, -1.0, 2.0];
        assert_eq!(allreduce_min(&v), -1.0);
        assert_eq!(allreduce_max(&v), 3.0);
        assert_eq!(allreduce_min(&[]), f64::INFINITY);
    }

    #[test]
    fn exscan_offsets() {
        assert_eq!(exscan_sum(&[10, 20, 30]), vec![0, 10, 30]);
        assert_eq!(exscan_sum(&[]), Vec::<u64>::new());
    }

    #[test]
    fn gather_preserves_order() {
        assert_eq!(gather(&[5, 6, 7]), vec![5, 6, 7]);
    }
}
