//! Simulated per-rank wall clocks.
//!
//! Each simulated MPI rank owns a `SimClock`; compute phases and I/O
//! operations advance it. Collective synchronization (barriers) aligns all
//! clocks to the maximum, which is exactly how the paper's "burst" I/O
//! pattern arises: compute for a while, then everyone writes at once.

/// A monotonically advancing simulated clock (seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimClock {
    t: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { t: 0.0 }
    }

    /// A clock starting at `t` seconds.
    pub fn at(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "SimClock: bad start time {t}");
        Self { t }
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or not finite.
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "SimClock: bad advance {dt}");
        self.t += dt;
    }

    /// Moves the clock forward to `t` if it is currently behind (no-op
    /// otherwise) — the building block of barrier semantics.
    #[inline]
    pub fn set_at_least(&mut self, t: f64) {
        if t > self.t {
            self.t = t;
        }
    }
}

/// Synchronizes a set of clocks to their common maximum (an MPI barrier)
/// and returns that time.
pub fn barrier(clocks: &mut [SimClock]) -> f64 {
    let t_max = clocks.iter().map(SimClock::now).fold(0.0, f64::max);
    for c in clocks.iter_mut() {
        c.set_at_least(t_max);
    }
    t_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert_eq!(c.now(), 1.75);
    }

    #[test]
    fn set_at_least_is_monotone() {
        let mut c = SimClock::at(5.0);
        c.set_at_least(3.0);
        assert_eq!(c.now(), 5.0);
        c.set_at_least(7.0);
        assert_eq!(c.now(), 7.0);
    }

    #[test]
    fn barrier_aligns_to_max() {
        let mut clocks = vec![SimClock::at(1.0), SimClock::at(4.0), SimClock::at(2.5)];
        let t = barrier(&mut clocks);
        assert_eq!(t, 4.0);
        assert!(clocks.iter().all(|c| c.now() == 4.0));
    }

    #[test]
    fn barrier_of_empty_is_zero() {
        assert_eq!(barrier(&mut []), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad advance")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }
}
