//! Deterministic per-rank random-number streams.
//!
//! Every simulated rank derives an independent RNG stream from a global
//! seed and its rank id, so experiments are reproducible regardless of how
//! many threads execute the rank loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a global seed with a rank id into an independent 64-bit seed
/// (SplitMix64 finalizer, which decorrelates consecutive ranks).
pub fn rank_seed(global_seed: u64, rank: usize) -> u64 {
    let mut z = global_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rank as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded RNG for one rank.
pub fn rank_rng(global_seed: u64, rank: usize) -> StdRng {
    StdRng::seed_from_u64(rank_seed(global_seed, rank))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_differ_across_ranks() {
        let s: Vec<u64> = (0..64).map(|r| rank_seed(42, r)).collect();
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), s.len());
    }

    #[test]
    fn seeds_differ_across_global_seeds() {
        assert_ne!(rank_seed(1, 0), rank_seed(2, 0));
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<f64> = {
            let mut rng = rank_rng(7, 3);
            (0..8).map(|_| rng.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = rank_rng(7, 3);
            (0..8).map(|_| rng.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut r0 = rank_rng(7, 0);
        let mut r1 = rank_rng(7, 1);
        let a: Vec<u64> = (0..8).map(|_| r0.gen::<u64>()).collect();
        let b: Vec<u64> = (0..8).map(|_| r1.gen::<u64>()).collect();
        assert_ne!(a, b);
    }
}
