//! Deterministic simulated MPI runtime.
//!
//! The paper's experiments ran 1-1,024 MPI ranks on Summit. For workload
//! *modeling* purposes, what matters is not message passing but (a) which
//! rank owns which data, (b) when ranks synchronize, and (c) how long each
//! rank's compute and I/O phases take. This crate provides exactly that:
//!
//! * [`SimComm`] — the world of ranks with a Summit-like node topology;
//! * [`RankCtx`] — per-rank clock and deterministic RNG stream;
//! * [`clock::barrier`] — synchronization that produces the "burst" I/O
//!   timing pattern the paper describes;
//! * [`collectives`] — the reductions/gathers the I/O path needs.
//!
//! Rank loops execute through rayon but are bit-reproducible: each rank's
//! context is derived only from `(seed, rank)`.

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod rng;

pub use clock::{barrier, SimClock};
pub use comm::{RankCtx, SimComm};
pub use rng::{rank_rng, rank_seed};
