//! Deterministic simulated MPI runtime.
//!
//! The paper's experiments ran 1-1,024 MPI ranks on Summit. For workload
//! *modeling* purposes, what matters is not message passing but (a) which
//! rank owns which data, (b) when ranks synchronize, and (c) how long each
//! rank's compute and I/O phases take. This crate provides exactly that:
//!
//! * [`SimComm`] — the world of ranks with a Summit-like node topology;
//! * [`RankCtx`] — per-rank clock and deterministic RNG stream;
//! * [`clock::barrier`] — synchronization that produces the "burst" I/O
//!   timing pattern the paper describes;
//! * [`collectives`] — the reductions/gathers the I/O path needs;
//! * [`NetworkModel`] — per-link bandwidth/latency with a
//!   transfer-timing API on the simulated clock, for in-transit
//!   streaming backends that ship steps over the interconnect instead
//!   of through storage.
//!
//! Rank loops execute through rayon but are bit-reproducible: each rank's
//! context is derived only from `(seed, rank)`.
//!
//! **Layer position:** the very bottom of the workspace — no other
//! workspace crate sits below it; `iosim` and the workloads build on its
//! clocks and rank streams. Key types: [`SimComm`], [`RankCtx`],
//! [`SimClock`].
//!
//! ```
//! use mpi_sim::{collectives::allreduce_max, SimComm};
//!
//! // Four ranks each advance their clock; the barrier takes the max.
//! let comm = SimComm::summit(4, 0xC0FFEE);
//! let finish = comm.run(0.0, |ctx| {
//!     ctx.clock.advance(1.0 + ctx.rank as f64 * 0.25);
//!     ctx.clock.now()
//! });
//! assert_eq!(finish.len(), 4);
//! assert_eq!(allreduce_max(&finish), 1.75);
//! ```

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod network;
pub mod rng;

pub use clock::{barrier, SimClock};
pub use comm::{RankCtx, SimComm};
pub use network::NetworkModel;
pub use rng::{rank_rng, rank_seed};
