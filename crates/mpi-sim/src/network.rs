//! Modeled interconnect links: per-link bandwidth/latency and a
//! transfer-timing API on the simulated clock.
//!
//! The storage plane prices bytes through [`iosim`]'s burst model; this
//! module prices the *other* road bytes can take off a compute node — a
//! point-to-point transfer over the machine's interconnect (the
//! in-transit staging pattern of ADIOS2/SST-style streaming, where
//! analysis consumers receive steps over the network instead of reading
//! them back from the filesystem). The model is the classic
//! latency/bandwidth ("postal") cost:
//!
//! ```text
//! t(transfer of n bytes) = link_latency + n / link_bandwidth
//! ```
//!
//! deterministic by construction — no RNG — so streamed runs replay
//! bit-identically, the same contract the rest of `mpi-sim` keeps.

use crate::clock::SimClock;

/// A point-to-point interconnect link: fixed per-transfer latency plus a
/// byte rate. Summit's EDR InfiniBand NIC is ~12.5 GB/s per port with
/// microsecond-scale latency; see [`NetworkModel::summit_nic`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Sustained link bandwidth in bytes per second.
    pub link_bandwidth: f64,
    /// Fixed per-transfer setup latency in seconds.
    pub link_latency: f64,
}

impl NetworkModel {
    /// A link with the given bandwidth (bytes/s) and per-transfer
    /// latency (seconds).
    ///
    /// # Panics
    /// Panics when the bandwidth is not positive or the latency is
    /// negative/non-finite (a link that loses time has no meaning on the
    /// simulated clock).
    pub fn new(link_bandwidth: f64, link_latency: f64) -> Self {
        assert!(
            link_bandwidth.is_finite() && link_bandwidth > 0.0,
            "NetworkModel: non-positive link bandwidth"
        );
        assert!(
            link_latency.is_finite() && link_latency >= 0.0,
            "NetworkModel: negative link latency"
        );
        Self {
            link_bandwidth,
            link_latency,
        }
    }

    /// A zero-latency link — pure bandwidth, handy in tests.
    pub fn ideal(link_bandwidth: f64) -> Self {
        Self::new(link_bandwidth, 0.0)
    }

    /// The paper machine's node injection link: one Summit EDR
    /// InfiniBand port, ~12.5 GB/s with ~10 µs setup.
    pub fn summit_nic() -> Self {
        Self::new(12.5e9, 1e-5)
    }

    /// A link with `1/n`-th of this link's bandwidth (same latency):
    /// the fair share each of `n` concurrent streams gets — how the
    /// fabric models streamed tenants sharing one link the way stored
    /// tenants share servers.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn fair_share(&self, n: usize) -> Self {
        assert!(n > 0, "NetworkModel: zero-way link share");
        Self::new(self.link_bandwidth / n as f64, self.link_latency)
    }

    /// Seconds a point-to-point transfer of `bytes` occupies the link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.link_latency + bytes as f64 / self.link_bandwidth
    }

    /// Times a transfer of `bytes` on `clock`: advances the clock past
    /// the transfer and returns its duration. This is the transfer
    /// analogue of an [`iosim`] burst — the caller's simulated time
    /// moves, nothing else does.
    pub fn send(&self, clock: &mut SimClock, bytes: u64) -> f64 {
        let dt = self.transfer_seconds(bytes);
        clock.advance(dt);
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bandwidth() {
        let net = NetworkModel::new(1e8, 2e-3);
        assert!((net.transfer_seconds(0) - 2e-3).abs() < 1e-12);
        assert!((net.transfer_seconds(100_000_000) - 1.002).abs() < 1e-9);
        let ideal = NetworkModel::ideal(5e7);
        assert_eq!(ideal.transfer_seconds(0), 0.0);
        assert!((ideal.transfer_seconds(5_000_000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn send_advances_the_simulated_clock() {
        let net = NetworkModel::ideal(1e6);
        let mut clock = SimClock::at(1.0);
        let dt = net.send(&mut clock, 2_000_000);
        assert!((dt - 2.0).abs() < 1e-12);
        assert!((clock.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fair_share_divides_bandwidth_keeps_latency() {
        let net = NetworkModel::new(1e9, 1e-5);
        let share = net.fair_share(4);
        assert!((share.link_bandwidth - 2.5e8).abs() < 1.0);
        assert_eq!(share.link_latency, 1e-5);
        // A solo share is the link itself.
        assert_eq!(net.fair_share(1), net);
    }

    #[test]
    fn summit_nic_is_the_documented_port() {
        let nic = NetworkModel::summit_nic();
        assert_eq!(nic.link_bandwidth, 12.5e9);
        assert_eq!(nic.link_latency, 1e-5);
    }

    #[test]
    #[should_panic(expected = "non-positive link bandwidth")]
    fn zero_bandwidth_panics() {
        NetworkModel::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "negative link latency")]
    fn negative_latency_panics() {
        NetworkModel::new(1e9, -1.0);
    }
}
