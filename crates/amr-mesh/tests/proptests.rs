//! Property-based tests for the mesh substrate's core invariants.

use amr_mesh::prelude::*;
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = IndexBox> {
    (-64i64..64, -64i64..64, 1i64..48, 1i64..48)
        .prop_map(|(x, y, w, h)| IndexBox::from_lo_size(IntVect::new(x, y), IntVect::new(w, h)))
}

fn arb_ratio() -> impl Strategy<Value = IntVect> {
    (1i64..5, 1i64..5).prop_map(|(x, y)| IntVect::new(x, y))
}

proptest! {
    #[test]
    fn intersection_is_commutative_and_contained(a in arb_box(), b in arb_box()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_box(&i));
            prop_assert!(b.contains_box(&i));
        }
    }

    #[test]
    fn bounding_contains_both(a in arb_box(), b in arb_box()) {
        let u = a.bounding(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
    }

    #[test]
    fn refine_then_coarsen_is_identity(b in arb_box(), r in arb_ratio()) {
        prop_assert_eq!(b.refine(r).coarsen(r), b);
    }

    #[test]
    fn coarsen_never_loses_cells(b in arb_box(), r in arb_ratio()) {
        // Every fine cell maps into the coarsened box.
        let c = b.coarsen(r);
        for p in b.cells().take(512) {
            prop_assert!(c.contains(p.coarsen(r)));
        }
    }

    #[test]
    fn refine_scales_num_pts(b in arb_box(), r in arb_ratio()) {
        prop_assert_eq!(b.refine(r).num_pts(), b.num_pts() * r.prod());
    }

    #[test]
    fn grow_then_shrink_is_identity(b in arb_box(), n in 0i64..8) {
        prop_assert_eq!(b.grow(n).grow(-n), b);
        prop_assert_eq!(b.grow(n).num_pts(),
            (b.size().x + 2 * n) * (b.size().y + 2 * n));
    }

    #[test]
    fn chop_partitions_cells(b in arb_box()) {
        prop_assume!(b.length(0) >= 2);
        let at = b.lo().x + 1 + (b.length(0) - 2) / 2;
        let (lo, hi) = b.chop(0, at);
        prop_assert_eq!(lo.num_pts() + hi.num_pts(), b.num_pts());
        prop_assert!(lo.intersection(&hi).is_none());
        prop_assert_eq!(lo.bounding(&hi), b);
    }

    #[test]
    fn max_size_tiles_and_bounds(b in arb_box(), max in 1i64..32) {
        let ba = BoxArray::single(b).max_size(max);
        prop_assert!(ba.tiles(&b));
        for piece in ba.iter() {
            prop_assert!(piece.longest_side() <= max);
        }
    }

    #[test]
    fn complement_in_partitions_region(a in arb_box(), b in arb_box()) {
        let ba = BoxArray::single(b);
        let comp = ba.complement_in(&a);
        let comp_pts: i64 = comp.iter().map(IndexBox::num_pts).sum();
        let overlap = a.intersection(&b).map_or(0, |i| i.num_pts());
        prop_assert_eq!(comp_pts, a.num_pts() - overlap);
        // Complement pieces are disjoint from b and inside a.
        for c in &comp {
            prop_assert!(!c.intersects(&b));
            prop_assert!(a.contains_box(c));
        }
    }

    #[test]
    fn distribution_strategies_assign_all_boxes(
        n in 16i64..128,
        max in 4i64..32,
        nranks in 1usize..16,
        strat_idx in 0usize..3,
    ) {
        let strat = [
            DistributionStrategy::RoundRobin,
            DistributionStrategy::Knapsack,
            DistributionStrategy::Sfc,
        ][strat_idx];
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
        let dm = DistributionMapping::new(&ba, nranks, strat);
        prop_assert_eq!(dm.len(), ba.len());
        for i in 0..dm.len() {
            prop_assert!(dm.owner(i) < nranks);
        }
        // Conservation: total load equals total cells.
        let weights: Vec<i64> = ba.iter().map(|b| b.num_pts()).collect();
        let loads = dm.rank_loads(&weights);
        prop_assert_eq!(loads.iter().sum::<i64>(), ba.num_pts());
    }

    #[test]
    fn knapsack_meets_lpt_bound(
        n in 32i64..128,
        max in 4i64..32,
        nranks in 2usize..8,
    ) {
        // Greedy LPT guarantees max load <= mean load + max single weight.
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
        let weights: Vec<i64> = ba.iter().map(|b| b.num_pts()).collect();
        let ks = DistributionMapping::new(&ba, nranks, DistributionStrategy::Knapsack);
        let loads = ks.rank_loads(&weights);
        let mean = ba.num_pts() as f64 / nranks as f64;
        let w_max = *weights.iter().max().unwrap() as f64;
        let l_max = *loads.iter().max().unwrap() as f64;
        prop_assert!(l_max <= mean + w_max + 1e-9, "max {l_max}, mean {mean}, w_max {w_max}");
    }

    #[test]
    fn cluster_covers_tags_disjointly(
        seed_boxes in prop::collection::vec(
            (0i64..56, 0i64..56, 1i64..8, 1i64..8), 1..6),
        grid_eff in 0.3f64..0.95,
    ) {
        let domain = IndexBox::at_origin(IntVect::splat(64));
        let mut tags = TagMap::new(domain);
        for (x, y, w, h) in seed_boxes {
            tags.tag_region(&IndexBox::from_lo_size(
                IntVect::new(x, y), IntVect::new(w, h)));
        }
        let boxes = cluster(&tags, ClusterParams { grid_eff, min_width: 1 });
        // Disjoint.
        prop_assert!(BoxArray::new(boxes.clone()).is_disjoint());
        // Exact tag coverage.
        let covered: usize = boxes.iter().map(|b| tags.count_in(b)).sum();
        prop_assert_eq!(covered, tags.count());
        // Efficiency target met (boxes are minimal, so per-box efficiency
        // can exceed but the aggregate must meet the target too when the
        // algorithm accepted every box).
        prop_assert!(efficiency(&tags, &boxes) >= grid_eff.min(1.0) - 1e-12);
        // Inside domain.
        for b in &boxes {
            prop_assert!(domain.contains_box(b));
        }
    }

    #[test]
    fn make_fine_grids_invariants(
        cx in 8i64..56, cy in 8i64..56, w in 1i64..8, h in 1i64..8,
    ) {
        let domain = IndexBox::at_origin(IntVect::splat(64));
        let mut tags = TagMap::new(domain);
        tags.tag_region(&IndexBox::from_lo_size(IntVect::new(cx, cy), IntVect::new(w, h)));
        let params = GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 32,
            n_error_buf: 1,
            grid_eff: 0.7,
        };
        let ba = make_fine_grids(&tags, domain, &params);
        let fine_domain = domain.refine(IntVect::splat(2));
        prop_assert!(ba.is_disjoint());
        for b in ba.iter() {
            prop_assert!(fine_domain.contains_box(b));
            prop_assert!(b.longest_side() <= params.max_grid_size);
        }
        // All tagged cells (refined) are covered.
        for c in domain.cells() {
            if tags.get(c) {
                let fine = IndexBox::new(c, c).refine(IntVect::splat(2));
                for fp in fine.cells() {
                    prop_assert!(ba.contains_cell(fp));
                }
            }
        }
    }

    #[test]
    fn morton_keys_unique_and_monotone_on_diagonal(
        pts in prop::collection::hash_set((0i64..1024, 0i64..1024), 2..64)
    ) {
        let pts: Vec<IntVect> = pts.into_iter().map(|(x, y)| IntVect::new(x, y)).collect();
        let mut keys: Vec<u64> = pts.iter().map(|&p| amr_mesh::morton::morton_key(p)).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "distinct points must give distinct keys");
    }

    #[test]
    fn multifab_parallel_copy_conserves_overlap(
        n in 8i64..32, max_a in 4i64..16, max_b in 4i64..16,
    ) {
        let domain = IndexBox::at_origin(IntVect::splat(n));
        let ba_a = BoxArray::single(domain).max_size(max_a);
        let ba_b = BoxArray::single(domain).max_size(max_b);
        let dm_a = DistributionMapping::new(&ba_a, 2, DistributionStrategy::Sfc);
        let dm_b = DistributionMapping::new(&ba_b, 3, DistributionStrategy::Knapsack);
        let mut dst = MultiFab::new(ba_a, dm_a, 1, 0);
        let mut src = MultiFab::new(ba_b, dm_b, 1, 0);
        src.set_val(0, 1.5);
        dst.parallel_copy_from(&src);
        // Same domain, different layout: full copy.
        prop_assert!((dst.sum(0) - 1.5 * (n * n) as f64).abs() < 1e-9);
    }
}
