//! Collections of boxes describing the grids of one AMR level.
//!
//! `BoxArray` mirrors AMReX's `BoxArray`: the list of (disjoint) grid patches
//! at a level, together with the `max_grid_size` chopping and
//! `blocking_factor` alignment logic that `amr.max_grid_size` /
//! `amr.blocking_factor` control in a Castro input file.

use crate::index_box::IndexBox;
use crate::intvect::{Coord, IntVect};
use serde::{Deserialize, Serialize};

/// An ordered list of boxes covering (part of) an AMR level.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxArray {
    boxes: Vec<IndexBox>,
}

impl BoxArray {
    /// Creates a box array from a list of boxes. Invalid boxes are dropped.
    pub fn new(boxes: Vec<IndexBox>) -> Self {
        Self {
            boxes: boxes.into_iter().filter(IndexBox::is_valid).collect(),
        }
    }

    /// A box array containing the single box `b`.
    pub fn single(b: IndexBox) -> Self {
        Self::new(vec![b])
    }

    /// An empty box array.
    pub fn empty() -> Self {
        Self { boxes: Vec::new() }
    }

    /// Number of boxes.
    #[inline]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when there are no boxes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The `i`-th box.
    #[inline]
    pub fn get(&self, i: usize) -> IndexBox {
        self.boxes[i]
    }

    /// Iterates over the boxes.
    pub fn iter(&self) -> impl Iterator<Item = &IndexBox> {
        self.boxes.iter()
    }

    /// Slice view of the boxes.
    pub fn as_slice(&self) -> &[IndexBox] {
        &self.boxes
    }

    /// Total number of cells across all boxes.
    pub fn num_pts(&self) -> Coord {
        self.boxes.iter().map(IndexBox::num_pts).sum()
    }

    /// Smallest box containing every box in the array (empty box if none).
    pub fn minimal_box(&self) -> IndexBox {
        self.boxes
            .iter()
            .fold(IndexBox::empty(), |acc, b| acc.bounding(b))
    }

    /// True if no two boxes share a cell.
    pub fn is_disjoint(&self) -> bool {
        for (i, a) in self.boxes.iter().enumerate() {
            for b in &self.boxes[i + 1..] {
                if a.intersects(b) {
                    return false;
                }
            }
        }
        true
    }

    /// True if cell `p` lies in any box.
    pub fn contains_cell(&self, p: crate::intvect::IntVect) -> bool {
        self.boxes.iter().any(|b| b.contains(p))
    }

    /// Refines every box by `ratio`.
    pub fn refine(&self, ratio: IntVect) -> BoxArray {
        Self {
            boxes: self.boxes.iter().map(|b| b.refine(ratio)).collect(),
        }
    }

    /// Coarsens every box by `ratio`.
    pub fn coarsen(&self, ratio: IntVect) -> BoxArray {
        Self {
            boxes: self.boxes.iter().map(|b| b.coarsen(ratio)).collect(),
        }
    }

    /// Splits every box so that no side exceeds `max_grid_size` cells,
    /// mirroring AMReX's `BoxArray::maxSize`. Splitting is even: a side of
    /// length `L` is divided into `ceil(L / max)` near-equal pieces.
    ///
    /// # Panics
    /// Panics if `max_grid_size <= 0`.
    pub fn max_size(&self, max_grid_size: Coord) -> BoxArray {
        assert!(max_grid_size > 0, "max_size: non-positive {max_grid_size}");
        let mut out = Vec::with_capacity(self.boxes.len());
        for b in &self.boxes {
            split_box_max_size(*b, max_grid_size, &mut out);
        }
        Self { boxes: out }
    }

    /// Indices and overlap regions of all boxes intersecting `region`.
    pub fn intersections(&self, region: &IndexBox) -> Vec<(usize, IndexBox)> {
        self.boxes
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.intersection(region).map(|isect| (i, isect)))
            .collect()
    }

    /// The portion of `region` not covered by any box, as a list of disjoint
    /// boxes (AMReX `complementIn`). Used to detect coverage gaps.
    pub fn complement_in(&self, region: &IndexBox) -> Vec<IndexBox> {
        let mut remaining = vec![*region];
        for b in &self.boxes {
            let mut next = Vec::with_capacity(remaining.len());
            for r in remaining {
                subtract_box(&r, b, &mut next);
            }
            remaining = next;
            if remaining.is_empty() {
                break;
            }
        }
        remaining
    }

    /// True when the boxes exactly tile `region` (disjoint and covering).
    pub fn tiles(&self, region: &IndexBox) -> bool {
        self.is_disjoint()
            && self.complement_in(region).is_empty()
            && self.num_pts() == region.num_pts()
    }
}

impl From<Vec<IndexBox>> for BoxArray {
    fn from(v: Vec<IndexBox>) -> Self {
        Self::new(v)
    }
}

impl std::ops::Index<usize> for BoxArray {
    type Output = IndexBox;
    fn index(&self, i: usize) -> &IndexBox {
        &self.boxes[i]
    }
}

/// Splits `b` into pieces with every side `<= max`, pushing results to `out`.
fn split_box_max_size(b: IndexBox, max: Coord, out: &mut Vec<IndexBox>) {
    let size = b.size();
    let nx = (size.x + max - 1) / max;
    let ny = (size.y + max - 1) / max;
    if nx <= 1 && ny <= 1 {
        out.push(b);
        return;
    }
    // Even split: piece k along a side of length L in n pieces gets
    // [k*L/n, (k+1)*L/n) which differs by at most one cell between pieces.
    for jy in 0..ny {
        let y0 = b.lo().y + jy * size.y / ny;
        let y1 = b.lo().y + (jy + 1) * size.y / ny - 1;
        for jx in 0..nx {
            let x0 = b.lo().x + jx * size.x / nx;
            let x1 = b.lo().x + (jx + 1) * size.x / nx - 1;
            out.push(IndexBox::new(IntVect::new(x0, y0), IntVect::new(x1, y1)));
        }
    }
}

/// Computes `a \ b` as up to four disjoint boxes, pushed onto `out`.
fn subtract_box(a: &IndexBox, b: &IndexBox, out: &mut Vec<IndexBox>) {
    let Some(isect) = a.intersection(b) else {
        out.push(*a);
        return;
    };
    // Slabs below/above along y, then left/right along x at the
    // intersection's y-range; all disjoint by construction.
    if a.lo().y < isect.lo().y {
        out.push(IndexBox::new(
            a.lo(),
            IntVect::new(a.hi().x, isect.lo().y - 1),
        ));
    }
    if isect.hi().y < a.hi().y {
        out.push(IndexBox::new(
            IntVect::new(a.lo().x, isect.hi().y + 1),
            a.hi(),
        ));
    }
    if a.lo().x < isect.lo().x {
        out.push(IndexBox::new(
            IntVect::new(a.lo().x, isect.lo().y),
            IntVect::new(isect.lo().x - 1, isect.hi().y),
        ));
    }
    if isect.hi().x < a.hi().x {
        out.push(IndexBox::new(
            IntVect::new(isect.hi().x + 1, isect.lo().y),
            IntVect::new(a.hi().x, isect.hi().y),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lx: Coord, ly: Coord, hx: Coord, hy: Coord) -> IndexBox {
        IndexBox::new(IntVect::new(lx, ly), IntVect::new(hx, hy))
    }

    #[test]
    fn construction_drops_invalid() {
        let ba = BoxArray::new(vec![b(0, 0, 1, 1), IndexBox::empty(), b(4, 4, 5, 5)]);
        assert_eq!(ba.len(), 2);
        assert_eq!(ba.num_pts(), 8);
        assert!(!ba.is_empty());
        assert!(BoxArray::empty().is_empty());
    }

    #[test]
    fn minimal_box_bounds_all() {
        let ba = BoxArray::new(vec![b(0, 0, 1, 1), b(6, 3, 7, 9)]);
        assert_eq!(ba.minimal_box(), b(0, 0, 7, 9));
        assert!(!BoxArray::empty().minimal_box().is_valid());
    }

    #[test]
    fn disjointness() {
        assert!(BoxArray::new(vec![b(0, 0, 1, 1), b(2, 0, 3, 1)]).is_disjoint());
        assert!(!BoxArray::new(vec![b(0, 0, 2, 2), b(2, 2, 3, 3)]).is_disjoint());
    }

    #[test]
    fn refine_coarsen() {
        let ba = BoxArray::new(vec![b(0, 0, 3, 3), b(4, 0, 7, 3)]);
        let r = IntVect::splat(2);
        assert_eq!(ba.refine(r).num_pts(), ba.num_pts() * 4);
        assert_eq!(ba.refine(r).coarsen(r), ba);
    }

    #[test]
    fn max_size_tiles_original() {
        let domain = b(0, 0, 127, 63);
        let ba = BoxArray::single(domain).max_size(32);
        assert_eq!(ba.len(), 8); // 4 x 2
        assert!(ba.tiles(&domain));
        for bx in ba.iter() {
            assert!(bx.longest_side() <= 32);
        }
    }

    #[test]
    fn max_size_uneven_lengths() {
        let domain = b(0, 0, 99, 0); // length 100, max 32 -> 4 pieces of 25
        let ba = BoxArray::single(domain).max_size(32);
        assert_eq!(ba.len(), 4);
        assert!(ba.tiles(&domain));
        for bx in ba.iter() {
            assert_eq!(bx.num_pts(), 25);
        }
    }

    #[test]
    fn max_size_noop_when_small() {
        let ba = BoxArray::single(b(0, 0, 7, 7)).max_size(32);
        assert_eq!(ba.len(), 1);
    }

    #[test]
    fn intersections_finds_overlaps() {
        let ba = BoxArray::new(vec![b(0, 0, 3, 3), b(4, 0, 7, 3), b(0, 4, 3, 7)]);
        let hits = ba.intersections(&b(2, 2, 5, 5));
        let idx: Vec<usize> = hits.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(hits[0].1, b(2, 2, 3, 3));
        assert_eq!(hits[1].1, b(4, 2, 5, 3));
        assert_eq!(hits[2].1, b(2, 4, 3, 5));
    }

    #[test]
    fn complement_in_detects_gap() {
        let ba = BoxArray::new(vec![b(0, 0, 3, 7), b(4, 0, 7, 3)]);
        let gaps = ba.complement_in(&b(0, 0, 7, 7));
        let gap_pts: Coord = gaps.iter().map(IndexBox::num_pts).sum();
        assert_eq!(gap_pts, 16); // missing quadrant [4..7]x[4..7]
        assert_eq!(ba.complement_in(&b(0, 0, 3, 3)), vec![]);
    }

    #[test]
    fn tiles_detects_exact_cover() {
        let domain = b(0, 0, 7, 7);
        assert!(BoxArray::new(vec![b(0, 0, 3, 7), b(4, 0, 7, 7)]).tiles(&domain));
        assert!(!BoxArray::new(vec![b(0, 0, 3, 7)]).tiles(&domain));
        // Overlapping cover is not a tiling.
        assert!(!BoxArray::new(vec![b(0, 0, 4, 7), b(4, 0, 7, 7)]).tiles(&domain));
    }

    #[test]
    fn subtract_box_partitions() {
        let mut out = Vec::new();
        subtract_box(&b(0, 0, 7, 7), &b(2, 2, 5, 5), &mut out);
        let total: Coord = out.iter().map(IndexBox::num_pts).sum();
        assert_eq!(total, 64 - 16);
        // Pieces are mutually disjoint.
        assert!(BoxArray::new(out).is_disjoint());
    }
}
