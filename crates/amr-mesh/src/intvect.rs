//! Two-dimensional integer index vectors.
//!
//! `IntVect` is the index-space coordinate type used throughout the mesh
//! substrate, mirroring AMReX's `IntVect` restricted to `AMREX_SPACEDIM = 2`
//! (the paper's study is the 2-D Sedov case).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Signed index coordinate. 64-bit so that global cell counts at the paper's
/// largest scale (131,072 per side, ~17 G cells) stay comfortably in range.
pub type Coord = i64;

/// Number of spatial dimensions supported by this substrate.
pub const SPACEDIM: usize = 2;

/// A point in 2-D cell index space.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct IntVect {
    /// Index along the x (first) direction.
    pub x: Coord,
    /// Index along the y (second) direction.
    pub y: Coord,
}

impl IntVect {
    /// Creates an index vector from its components.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: IntVect = IntVect::new(0, 0);

    /// The unit vector (1, 1).
    pub const UNIT: IntVect = IntVect::new(1, 1);

    /// Creates a vector with both components equal to `v`.
    #[inline]
    pub const fn splat(v: Coord) -> Self {
        Self { x: v, y: v }
    }

    /// Returns the component along dimension `dir` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dir >= SPACEDIM`.
    #[inline]
    pub fn get(&self, dir: usize) -> Coord {
        match dir {
            0 => self.x,
            1 => self.y,
            _ => panic!("IntVect::get: invalid direction {dir}"),
        }
    }

    /// Sets the component along dimension `dir` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dir >= SPACEDIM`.
    #[inline]
    pub fn set(&mut self, dir: usize, v: Coord) {
        match dir {
            0 => self.x = v,
            1 => self.y = v,
            _ => panic!("IntVect::set: invalid direction {dir}"),
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True if every component of `self` is `<=` the matching component of
    /// `other` (the partial order used for box validity).
    #[inline]
    pub fn all_le(self, other: Self) -> bool {
        self.x <= other.x && self.y <= other.y
    }

    /// True if every component of `self` is `<` the matching component.
    #[inline]
    pub fn all_lt(self, other: Self) -> bool {
        self.x < other.x && self.y < other.y
    }

    /// Coarsens each component by `ratio` using floor division, matching
    /// AMReX's `amrex::coarsen` semantics for negative indices.
    ///
    /// # Panics
    /// Panics if any ratio component is `<= 0`.
    #[inline]
    pub fn coarsen(self, ratio: IntVect) -> Self {
        Self::new(div_floor(self.x, ratio.x), div_floor(self.y, ratio.y))
    }

    /// Refines each component by `ratio` (plain multiplication).
    #[inline]
    pub fn refine(self, ratio: IntVect) -> Self {
        Self::new(self.x * ratio.x, self.y * ratio.y)
    }

    /// Sum of components.
    #[inline]
    pub fn sum(self) -> Coord {
        self.x + self.y
    }

    /// Product of components (e.g. cell counts from box extents).
    #[inline]
    pub fn prod(self) -> Coord {
        self.x * self.y
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> Coord {
        self.x.max(self.y)
    }

    /// Direction (0 or 1) of the largest component; ties favour x.
    #[inline]
    pub fn max_dir(self) -> usize {
        if self.y > self.x {
            1
        } else {
            0
        }
    }
}

/// Floor division (rounds toward negative infinity).
///
/// # Panics
/// Panics if `b <= 0` (refinement ratios must be positive).
#[inline]
pub fn div_floor(a: Coord, b: Coord) -> Coord {
    assert!(b > 0, "div_floor: non-positive divisor {b}");
    let d = a / b;
    if a % b != 0 && a < 0 {
        d - 1
    } else {
        d
    }
}

impl Add for IntVect {
    type Output = IntVect;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for IntVect {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for IntVect {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl Mul<Coord> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, rhs: Coord) -> Self {
        Self::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<IntVect> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, rhs: IntVect) -> Self {
        Self::new(self.x * rhs.x, self.y * rhs.y)
    }
}

impl Div<Coord> for IntVect {
    type Output = IntVect;
    /// Truncating division; use [`IntVect::coarsen`] for AMR coarsening.
    #[inline]
    fn div(self, rhs: Coord) -> Self {
        Self::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(Coord, Coord)> for IntVect {
    #[inline]
    fn from((x, y): (Coord, Coord)) -> Self {
        Self::new(x, y)
    }
}

impl From<[Coord; 2]> for IntVect {
    #[inline]
    fn from(a: [Coord; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl std::fmt::Display for IntVect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = IntVect::new(3, -4);
        assert_eq!(v.get(0), 3);
        assert_eq!(v.get(1), -4);
        assert_eq!(IntVect::splat(7), IntVect::new(7, 7));
        assert_eq!(IntVect::from((1, 2)), IntVect::new(1, 2));
        assert_eq!(IntVect::from([1, 2]), IntVect::new(1, 2));
    }

    #[test]
    fn set_components() {
        let mut v = IntVect::ZERO;
        v.set(0, 5);
        v.set(1, -2);
        assert_eq!(v, IntVect::new(5, -2));
    }

    #[test]
    #[should_panic(expected = "invalid direction")]
    fn get_invalid_dir_panics() {
        IntVect::ZERO.get(2);
    }

    #[test]
    fn arithmetic() {
        let a = IntVect::new(1, 2);
        let b = IntVect::new(3, 5);
        assert_eq!(a + b, IntVect::new(4, 7));
        assert_eq!(b - a, IntVect::new(2, 3));
        assert_eq!(-a, IntVect::new(-1, -2));
        assert_eq!(a * 3, IntVect::new(3, 6));
        assert_eq!(a * b, IntVect::new(3, 10));
        let mut c = a;
        c += b;
        assert_eq!(c, IntVect::new(4, 7));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max_order() {
        let a = IntVect::new(1, 9);
        let b = IntVect::new(4, 2);
        assert_eq!(a.min(b), IntVect::new(1, 2));
        assert_eq!(a.max(b), IntVect::new(4, 9));
        assert!(IntVect::new(0, 0).all_le(IntVect::new(0, 1)));
        assert!(!IntVect::new(0, 2).all_le(IntVect::new(0, 1)));
        assert!(IntVect::new(0, 0).all_lt(IntVect::new(1, 1)));
        assert!(!IntVect::new(0, 0).all_lt(IntVect::new(1, 0)));
    }

    #[test]
    fn div_floor_matches_mathematical_floor() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
        assert_eq!(div_floor(0, 4), 0);
        assert_eq!(div_floor(-1, 4), -1);
    }

    #[test]
    fn coarsen_refine_round_trip_for_aligned_points() {
        let r = IntVect::splat(4);
        let v = IntVect::new(8, -12);
        assert_eq!(v.coarsen(r).refine(r), v);
        // Non-aligned points coarsen toward -inf.
        assert_eq!(IntVect::new(9, -11).coarsen(r), IntVect::new(2, -3));
    }

    #[test]
    fn reductions() {
        let v = IntVect::new(3, 4);
        assert_eq!(v.sum(), 7);
        assert_eq!(v.prod(), 12);
        assert_eq!(v.max_component(), 4);
        assert_eq!(v.max_dir(), 1);
        assert_eq!(IntVect::new(4, 4).max_dir(), 0);
    }
}
