//! Assignment of grid patches to MPI ranks.
//!
//! `DistributionMapping` mirrors AMReX's type of the same name. The paper's
//! per-task I/O imbalance (Fig. 8) is a direct consequence of this mapping,
//! so all three of AMReX's classic strategies are implemented and compared
//! in the `ablations` bench.

use crate::box_array::BoxArray;
use crate::intvect::Coord;
use crate::morton::{box_center, morton_key_in};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Strategy used to assign boxes to ranks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributionStrategy {
    /// Box `i` goes to rank `i % nranks` (AMReX `ROUNDROBIN`).
    RoundRobin,
    /// Greedy longest-processing-time bin packing on cell counts
    /// (AMReX `KNAPSACK`).
    Knapsack,
    /// Boxes sorted along the Morton space-filling curve, then split into
    /// contiguous chunks of near-equal weight (AMReX `SFC`, the default).
    Sfc,
}

/// Maps each box of a [`BoxArray`] to an owning rank.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributionMapping {
    owners: Vec<usize>,
    nranks: usize,
}

impl DistributionMapping {
    /// Builds a mapping for `ba` over `nranks` ranks with the given strategy.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn new(ba: &BoxArray, nranks: usize, strategy: DistributionStrategy) -> Self {
        assert!(nranks > 0, "DistributionMapping: zero ranks");
        let owners = match strategy {
            DistributionStrategy::RoundRobin => round_robin(ba.len(), nranks),
            DistributionStrategy::Knapsack => {
                let weights: Vec<Coord> = ba.iter().map(|b| b.num_pts()).collect();
                knapsack(&weights, nranks)
            }
            DistributionStrategy::Sfc => sfc(ba, nranks),
        };
        Self { owners, nranks }
    }

    /// A mapping from explicit owner indices (for tests / replay).
    ///
    /// # Panics
    /// Panics if any owner is `>= nranks` or `nranks == 0`.
    pub fn from_owners(owners: Vec<usize>, nranks: usize) -> Self {
        assert!(nranks > 0, "DistributionMapping: zero ranks");
        assert!(
            owners.iter().all(|&r| r < nranks),
            "DistributionMapping: owner out of range"
        );
        Self { owners, nranks }
    }

    /// Owning rank of box `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        self.owners[i]
    }

    /// Number of ranks in the mapping.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of boxes mapped.
    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when no boxes are mapped.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Slice of owners, indexed by box.
    pub fn owners(&self) -> &[usize] {
        &self.owners
    }

    /// Box indices owned by `rank`.
    pub fn boxes_of(&self, rank: usize) -> Vec<usize> {
        self.owners
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| (r == rank).then_some(i))
            .collect()
    }

    /// Per-rank total weight given per-box weights (e.g. cell counts).
    pub fn rank_loads(&self, weights: &[Coord]) -> Vec<Coord> {
        let mut loads = vec![0; self.nranks];
        for (i, &r) in self.owners.iter().enumerate() {
            loads[r] += weights[i];
        }
        loads
    }

    /// Load-imbalance ratio `max(load) / mean(load)` (1.0 = perfectly
    /// balanced; only ranks receiving work are counted in the mean when
    /// there are fewer boxes than ranks).
    pub fn imbalance(&self, weights: &[Coord]) -> f64 {
        let loads = self.rank_loads(weights);
        let total: Coord = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let active = self.nranks.min(self.owners.len().max(1));
        let mean = total as f64 / active as f64;
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }
}

fn round_robin(nboxes: usize, nranks: usize) -> Vec<usize> {
    (0..nboxes).map(|i| i % nranks).collect()
}

/// Greedy LPT knapsack: sort weights descending, assign each to the
/// currently lightest rank.
fn knapsack(weights: &[Coord], nranks: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (Reverse(weights[i]), i));
    // Min-heap of (load, rank).
    let mut heap: BinaryHeap<Reverse<(Coord, usize)>> =
        (0..nranks).map(|r| Reverse((0, r))).collect();
    let mut owners = vec![0usize; weights.len()];
    for i in order {
        let Reverse((load, rank)) = heap.pop().expect("nranks > 0");
        owners[i] = rank;
        heap.push(Reverse((load + weights[i], rank)));
    }
    owners
}

/// SFC strategy: order boxes by the Morton key of their centers, then cut
/// the ordered sequence into `nranks` contiguous chunks of near-equal
/// total weight.
fn sfc(ba: &BoxArray, nranks: usize) -> Vec<usize> {
    let n = ba.len();
    if n == 0 {
        return Vec::new();
    }
    let origin = ba.minimal_box().lo();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (morton_key_in(box_center(&ba.get(i)), origin), i));

    let weights: Vec<Coord> = ba.iter().map(|b| b.num_pts()).collect();
    let total: Coord = weights.iter().sum();
    let mut owners = vec![0usize; n];
    let mut acc: Coord = 0;
    let mut rank = 0usize;
    for (pos, &i) in order.iter().enumerate() {
        // Advance to the next rank when this rank's fair share is consumed,
        // but never leave later boxes without a rank.
        let fair = total as f64 * (rank + 1) as f64 / nranks as f64;
        if acc as f64 >= fair && rank + 1 < nranks && (n - pos) >= 1 {
            rank += 1;
        }
        owners[i] = rank;
        acc += weights[i];
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_box::IndexBox;
    use crate::intvect::IntVect;

    fn grid_ba(nx: Coord, ny: Coord, max: Coord) -> BoxArray {
        BoxArray::single(IndexBox::at_origin(IntVect::new(nx, ny))).max_size(max)
    }

    #[test]
    fn round_robin_cycles() {
        let ba = grid_ba(64, 64, 16); // 16 boxes
        let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::RoundRobin);
        assert_eq!(dm.len(), 16);
        assert_eq!(dm.owner(0), 0);
        assert_eq!(dm.owner(5), 1);
        for r in 0..4 {
            assert_eq!(dm.boxes_of(r).len(), 4);
        }
    }

    #[test]
    fn knapsack_balances_unequal_weights() {
        // Weights 8,1,1,1,1,1,1,1,1 over 2 ranks: LPT puts the 8 alone-ish.
        let boxes = vec![
            IndexBox::at_origin(IntVect::new(8, 1)),
            IndexBox::new(IntVect::new(0, 10), IntVect::new(0, 10)),
            IndexBox::new(IntVect::new(2, 10), IntVect::new(2, 10)),
            IndexBox::new(IntVect::new(4, 10), IntVect::new(4, 10)),
            IndexBox::new(IntVect::new(6, 10), IntVect::new(6, 10)),
            IndexBox::new(IntVect::new(8, 10), IntVect::new(8, 10)),
            IndexBox::new(IntVect::new(10, 10), IntVect::new(10, 10)),
            IndexBox::new(IntVect::new(12, 10), IntVect::new(12, 10)),
            IndexBox::new(IntVect::new(14, 10), IntVect::new(14, 10)),
        ];
        let ba = BoxArray::new(boxes);
        let dm = DistributionMapping::new(&ba, 2, DistributionStrategy::Knapsack);
        let weights: Vec<Coord> = ba.iter().map(|b| b.num_pts()).collect();
        let loads = dm.rank_loads(&weights);
        assert_eq!(loads.iter().sum::<Coord>(), 16);
        assert_eq!(*loads.iter().max().unwrap(), 8);
        assert!(dm.imbalance(&weights) <= 1.01);
    }

    #[test]
    fn knapsack_beats_round_robin_on_skewed_weights() {
        // Alternating huge/tiny boxes is adversarial for round-robin.
        let mut boxes = Vec::new();
        for i in 0..8 {
            let x0 = i * 40;
            if i % 2 == 0 {
                boxes.push(IndexBox::from_lo_size(
                    IntVect::new(x0, 0),
                    IntVect::new(32, 32),
                ));
            } else {
                boxes.push(IndexBox::from_lo_size(
                    IntVect::new(x0, 0),
                    IntVect::new(2, 2),
                ));
            }
        }
        let ba = BoxArray::new(boxes);
        let weights: Vec<Coord> = ba.iter().map(|b| b.num_pts()).collect();
        let rr = DistributionMapping::new(&ba, 2, DistributionStrategy::RoundRobin);
        let ks = DistributionMapping::new(&ba, 2, DistributionStrategy::Knapsack);
        assert!(ks.imbalance(&weights) < rr.imbalance(&weights));
    }

    #[test]
    fn sfc_assigns_every_box_and_balances_uniform_grid() {
        let ba = grid_ba(128, 128, 16); // 64 equal boxes
        let dm = DistributionMapping::new(&ba, 8, DistributionStrategy::Sfc);
        let weights: Vec<Coord> = ba.iter().map(|b| b.num_pts()).collect();
        let loads = dm.rank_loads(&weights);
        assert_eq!(loads.len(), 8);
        assert_eq!(loads.iter().sum::<Coord>(), 128 * 128);
        assert!(dm.imbalance(&weights) < 1.05, "loads {loads:?}");
    }

    #[test]
    fn sfc_ranks_are_contiguous_along_curve() {
        let ba = grid_ba(64, 64, 16);
        let dm = DistributionMapping::new(&ba, 4, DistributionStrategy::Sfc);
        // Re-derive curve order and check rank sequence is non-decreasing.
        let origin = ba.minimal_box().lo();
        let mut order: Vec<usize> = (0..ba.len()).collect();
        order.sort_by_key(|&i| (morton_key_in(box_center(&ba.get(i)), origin), i));
        let ranks: Vec<usize> = order.iter().map(|&i| dm.owner(i)).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks {ranks:?}");
    }

    #[test]
    fn more_ranks_than_boxes_leaves_some_idle() {
        let ba = grid_ba(32, 32, 32); // single box
        for strat in [
            DistributionStrategy::RoundRobin,
            DistributionStrategy::Knapsack,
            DistributionStrategy::Sfc,
        ] {
            let dm = DistributionMapping::new(&ba, 8, strat);
            assert_eq!(dm.len(), 1);
            assert!(dm.owner(0) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        DistributionMapping::new(&BoxArray::empty(), 0, DistributionStrategy::RoundRobin);
    }

    #[test]
    fn from_owners_validates() {
        let dm = DistributionMapping::from_owners(vec![0, 1, 1], 2);
        assert_eq!(dm.boxes_of(1), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "owner out of range")]
    fn from_owners_rejects_bad_rank() {
        DistributionMapping::from_owners(vec![0, 5], 2);
    }
}
