//! Cell tagging for refinement.
//!
//! A `TagMap` is a level-wide bitmap of cells flagged for refinement,
//! the input to the Berger–Rigoutsos grid generator in [`crate::cluster`](crate::cluster()).
//! It plays the role of AMReX's `TagBoxArray` collapsed to a global view
//! (legitimate here because the simulated-MPI runtime shares one address
//! space; ownership only matters for I/O, not for tagging).

use crate::index_box::IndexBox;
use crate::intvect::{Coord, IntVect};

/// Level-wide refinement-tag bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagMap {
    domain: IndexBox,
    tags: Vec<bool>,
}

impl TagMap {
    /// Creates an untagged map over `domain`.
    ///
    /// # Panics
    /// Panics if `domain` is invalid.
    pub fn new(domain: IndexBox) -> Self {
        assert!(domain.is_valid(), "TagMap: invalid domain");
        Self {
            domain,
            tags: vec![false; domain.num_pts() as usize],
        }
    }

    /// The tag map's domain.
    #[inline]
    pub fn domain(&self) -> IndexBox {
        self.domain
    }

    /// True if cell `p` is tagged. Cells outside the domain are untagged.
    #[inline]
    pub fn get(&self, p: IntVect) -> bool {
        self.domain.contains(p) && self.tags[self.domain.offset(p)]
    }

    /// Tags or untags cell `p`; out-of-domain cells are ignored.
    #[inline]
    pub fn set(&mut self, p: IntVect, v: bool) {
        if self.domain.contains(p) {
            let i = self.domain.offset(p);
            self.tags[i] = v;
        }
    }

    /// Tags every cell in `region` (clipped to the domain).
    pub fn tag_region(&mut self, region: &IndexBox) {
        if let Some(r) = self.domain.intersection(region) {
            for p in r.cells() {
                let i = self.domain.offset(p);
                self.tags[i] = true;
            }
        }
    }

    /// Number of tagged cells.
    pub fn count(&self) -> usize {
        self.tags.iter().filter(|&&t| t).count()
    }

    /// True when no cell is tagged.
    pub fn is_empty(&self) -> bool {
        !self.tags.iter().any(|&t| t)
    }

    /// Smallest box containing all tagged cells (invalid box when empty).
    pub fn bounding_box(&self) -> IndexBox {
        let mut lo = IntVect::new(Coord::MAX, Coord::MAX);
        let mut hi = IntVect::new(Coord::MIN, Coord::MIN);
        let mut any = false;
        for p in self.domain.cells() {
            if self.tags[self.domain.offset(p)] {
                lo = lo.min(p);
                hi = hi.max(p);
                any = true;
            }
        }
        if any {
            IndexBox::new(lo, hi)
        } else {
            IndexBox::empty()
        }
    }

    /// Number of tagged cells inside `region`.
    pub fn count_in(&self, region: &IndexBox) -> usize {
        match self.domain.intersection(region) {
            Some(r) => r
                .cells()
                .filter(|p| self.tags[self.domain.offset(*p)])
                .count(),
            None => 0,
        }
    }

    /// Grows every tag by `n` cells in all directions (clipped to the
    /// domain). This is AMReX's `n_error_buf` buffering: refined regions
    /// must extend past steep gradients so features do not escape between
    /// regrids.
    pub fn buffer(&mut self, n: Coord) {
        if n <= 0 {
            return;
        }
        let src = self.clone();
        for p in src.domain.cells() {
            if src.tags[src.domain.offset(p)] {
                self.tag_region(&IndexBox::new(p, p).grow(n));
            }
        }
    }

    /// Coarsens the map by `ratio`: a coarse cell is tagged when any of its
    /// fine cells is tagged. Grid generation runs at `blocking_factor`
    /// granularity in AMReX; this provides that view.
    pub fn coarsen(&self, ratio: IntVect) -> TagMap {
        let mut out = TagMap::new(self.domain.coarsen(ratio));
        for p in self.domain.cells() {
            if self.tags[self.domain.offset(p)] {
                let cp = p.coarsen(ratio);
                out.set(cp, true);
            }
        }
        out
    }

    /// Per-row/column tag counts ("signatures") over `region`, the core
    /// quantity of the Berger–Rigoutsos algorithm.
    pub fn signatures(&self, region: &IndexBox, dir: usize) -> Vec<usize> {
        let Some(r) = self.domain.intersection(region) else {
            return Vec::new();
        };
        let len = r.length(dir) as usize;
        let mut sig = vec![0usize; len];
        for p in r.cells() {
            if self.tags[self.domain.offset(p)] {
                sig[(p.get(dir) - r.lo().get(dir)) as usize] += 1;
            }
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: Coord) -> IndexBox {
        IndexBox::at_origin(IntVect::splat(n))
    }

    #[test]
    fn starts_empty() {
        let t = TagMap::new(dom(8));
        assert!(t.is_empty());
        assert_eq!(t.count(), 0);
        assert!(!t.bounding_box().is_valid());
    }

    #[test]
    fn set_get_out_of_domain_is_safe() {
        let mut t = TagMap::new(dom(8));
        t.set(IntVect::new(100, 100), true); // ignored
        assert!(t.is_empty());
        assert!(!t.get(IntVect::new(100, 100)));
        t.set(IntVect::new(3, 3), true);
        assert!(t.get(IntVect::new(3, 3)));
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn tag_region_clips() {
        let mut t = TagMap::new(dom(8));
        t.tag_region(&IndexBox::new(IntVect::new(6, 6), IntVect::new(12, 12)));
        assert_eq!(t.count(), 4); // [6..7]^2
        assert_eq!(
            t.bounding_box(),
            IndexBox::new(IntVect::new(6, 6), IntVect::new(7, 7))
        );
    }

    #[test]
    fn count_in_subregion() {
        let mut t = TagMap::new(dom(8));
        t.tag_region(&IndexBox::at_origin(IntVect::splat(4)));
        assert_eq!(t.count_in(&dom(8)), 16);
        assert_eq!(t.count_in(&IndexBox::at_origin(IntVect::splat(2))), 4);
        let outside = IndexBox::from_lo_size(IntVect::new(100, 0), IntVect::UNIT);
        assert_eq!(t.count_in(&outside), 0);
    }

    #[test]
    fn buffer_grows_tags() {
        let mut t = TagMap::new(dom(9));
        t.set(IntVect::new(4, 4), true);
        t.buffer(1);
        assert_eq!(t.count(), 9);
        assert_eq!(
            t.bounding_box(),
            IndexBox::new(IntVect::new(3, 3), IntVect::new(5, 5))
        );
        // Buffering at the edge clips to the domain.
        let mut e = TagMap::new(dom(4));
        e.set(IntVect::ZERO, true);
        e.buffer(2);
        assert_eq!(e.count(), 9); // [0..2]^2
    }

    #[test]
    fn buffer_zero_is_noop() {
        let mut t = TagMap::new(dom(4));
        t.set(IntVect::new(1, 1), true);
        let before = t.clone();
        t.buffer(0);
        assert_eq!(t, before);
    }

    #[test]
    fn coarsen_ors_fine_tags() {
        let mut t = TagMap::new(dom(8));
        t.set(IntVect::new(3, 3), true); // coarse cell (1,1) at ratio 2
        t.set(IntVect::new(6, 0), true); // coarse cell (3,0)
        let c = t.coarsen(IntVect::splat(2));
        assert_eq!(c.domain(), dom(4));
        assert!(c.get(IntVect::new(1, 1)));
        assert!(c.get(IntVect::new(3, 0)));
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn signatures_count_per_slice() {
        let mut t = TagMap::new(dom(4));
        t.tag_region(&IndexBox::new(IntVect::new(1, 0), IntVect::new(2, 3)));
        let sx = t.signatures(&dom(4), 0);
        assert_eq!(sx, vec![0, 4, 4, 0]);
        let sy = t.signatures(&dom(4), 1);
        assert_eq!(sy, vec![2, 2, 2, 2]);
        let total: usize = sx.iter().sum();
        assert_eq!(total, t.count());
    }
}
