//! Rectangular regions of cell index space.
//!
//! `IndexBox` mirrors AMReX's cell-centered `Box`: an inclusive `[lo, hi]`
//! rectangle of cell indices. All grid generation, intersection, and
//! refinement logic in the workspace is built on this type.

use crate::intvect::{Coord, IntVect, SPACEDIM};
use serde::{Deserialize, Serialize};

/// An inclusive rectangle `[lo, hi]` of 2-D cell indices.
///
/// A box is *valid* when `lo <= hi` component-wise; invalid boxes represent
/// the empty region and are produced by, e.g., empty intersections.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct IndexBox {
    lo: IntVect,
    hi: IntVect,
}

impl IndexBox {
    /// Creates the box `[lo, hi]` (inclusive on both ends).
    #[inline]
    pub const fn new(lo: IntVect, hi: IntVect) -> Self {
        Self { lo, hi }
    }

    /// Creates a box from a low corner and a size (cell counts per side).
    ///
    /// # Panics
    /// Panics if any size component is `<= 0`.
    #[inline]
    pub fn from_lo_size(lo: IntVect, size: IntVect) -> Self {
        assert!(
            size.x > 0 && size.y > 0,
            "IndexBox::from_lo_size: non-positive size {size}"
        );
        Self::new(lo, lo + size - IntVect::UNIT)
    }

    /// The box `[0, n-1]^2` for an `n.x` by `n.y` cell domain at the origin.
    #[inline]
    pub fn at_origin(n: IntVect) -> Self {
        Self::from_lo_size(IntVect::ZERO, n)
    }

    /// A canonical invalid (empty) box.
    #[inline]
    pub fn empty() -> Self {
        Self::new(IntVect::UNIT, IntVect::ZERO)
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> IntVect {
        self.lo
    }

    /// High corner (inclusive).
    #[inline]
    pub fn hi(&self) -> IntVect {
        self.hi
    }

    /// True when the box contains at least one cell.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lo.all_le(self.hi)
    }

    /// Cell counts per side; zero vector for invalid boxes.
    #[inline]
    pub fn size(&self) -> IntVect {
        if self.is_valid() {
            self.hi - self.lo + IntVect::UNIT
        } else {
            IntVect::ZERO
        }
    }

    /// Extent along direction `dir`.
    #[inline]
    pub fn length(&self, dir: usize) -> Coord {
        self.size().get(dir)
    }

    /// Shortest side length.
    #[inline]
    pub fn shortest_side(&self) -> Coord {
        let s = self.size();
        s.x.min(s.y)
    }

    /// Longest side length.
    #[inline]
    pub fn longest_side(&self) -> Coord {
        self.size().max_component()
    }

    /// Direction of the longest side (ties favour x).
    #[inline]
    pub fn longest_dir(&self) -> usize {
        self.size().max_dir()
    }

    /// Number of cells in the box (0 if invalid).
    #[inline]
    pub fn num_pts(&self) -> Coord {
        self.size().prod()
    }

    /// True if cell `p` lies inside the box.
    #[inline]
    pub fn contains(&self, p: IntVect) -> bool {
        self.lo.all_le(p) && p.all_le(self.hi)
    }

    /// True if `other` lies entirely inside `self` (empty boxes are contained
    /// in everything).
    #[inline]
    pub fn contains_box(&self, other: &IndexBox) -> bool {
        !other.is_valid() || (self.contains(other.lo) && self.contains(other.hi))
    }

    /// True if the two boxes share at least one cell.
    #[inline]
    pub fn intersects(&self, other: &IndexBox) -> bool {
        self.intersection(other).is_some()
    }

    /// The overlapping region, or `None` when disjoint or either box is empty.
    #[inline]
    pub fn intersection(&self, other: &IndexBox) -> Option<IndexBox> {
        let b = IndexBox::new(self.lo.max(other.lo), self.hi.min(other.hi));
        b.is_valid().then_some(b)
    }

    /// Smallest box containing both inputs (invalid inputs are ignored).
    #[inline]
    pub fn bounding(&self, other: &IndexBox) -> IndexBox {
        match (self.is_valid(), other.is_valid()) {
            (true, true) => IndexBox::new(self.lo.min(other.lo), self.hi.max(other.hi)),
            (true, false) => *self,
            (false, true) => *other,
            (false, false) => IndexBox::empty(),
        }
    }

    /// Grows the box by `n` cells on every face (negative shrinks).
    #[inline]
    pub fn grow(&self, n: Coord) -> IndexBox {
        IndexBox::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }

    /// Grows by a per-direction amount on both faces of each direction.
    #[inline]
    pub fn grow_vect(&self, n: IntVect) -> IndexBox {
        IndexBox::new(self.lo - n, self.hi + n)
    }

    /// Translates the box by `shift` cells.
    #[inline]
    pub fn shift(&self, shift: IntVect) -> IndexBox {
        IndexBox::new(self.lo + shift, self.hi + shift)
    }

    /// Refines the box by `ratio`: each coarse cell becomes a `ratio.x` by
    /// `ratio.y` block of fine cells (AMReX `Box::refine` semantics).
    #[inline]
    pub fn refine(&self, ratio: IntVect) -> IndexBox {
        IndexBox::new(
            self.lo.refine(ratio),
            (self.hi + IntVect::UNIT).refine(ratio) - IntVect::UNIT,
        )
    }

    /// Coarsens the box by `ratio` with floor semantics (AMReX
    /// `Box::coarsen`): the result covers every coarse cell that overlaps
    /// any fine cell of `self`.
    #[inline]
    pub fn coarsen(&self, ratio: IntVect) -> IndexBox {
        IndexBox::new(self.lo.coarsen(ratio), self.hi.coarsen(ratio))
    }

    /// True when the box, refined then coarsened by `ratio`, is unchanged;
    /// i.e. its corners are aligned to the `ratio` lattice.
    #[inline]
    pub fn is_aligned(&self, ratio: IntVect) -> bool {
        self.coarsen(ratio).refine(ratio) == *self
    }

    /// Splits at index `at` along `dir`: returns `(low part, high part)`
    /// where the low part is `[lo, at-1]` and the high part `[at, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo.get(dir) < at <= hi.get(dir)` (both halves must be
    /// non-empty).
    pub fn chop(&self, dir: usize, at: Coord) -> (IndexBox, IndexBox) {
        assert!(dir < SPACEDIM, "chop: invalid direction {dir}");
        assert!(
            self.lo.get(dir) < at && at <= self.hi.get(dir),
            "chop: position {at} outside the interior of {self:?} along dir {dir}"
        );
        let mut lo_hi = self.hi;
        lo_hi.set(dir, at - 1);
        let mut hi_lo = self.lo;
        hi_lo.set(dir, at);
        (IndexBox::new(self.lo, lo_hi), IndexBox::new(hi_lo, self.hi))
    }

    /// Iterates over all cells of the box in y-major (row) order, i.e. the x
    /// index varies fastest — matching the Fortran storage order AMReX uses.
    pub fn cells(&self) -> impl Iterator<Item = IntVect> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        let valid = self.is_valid();
        (lo.y..=hi.y)
            .flat_map(move |y| (lo.x..=hi.x).map(move |x| IntVect::new(x, y)))
            .filter(move |_| valid)
    }

    /// Linear offset of cell `p` within the box in y-major order.
    ///
    /// # Panics
    /// Panics (debug only) if `p` is outside the box.
    #[inline]
    pub fn offset(&self, p: IntVect) -> usize {
        debug_assert!(self.contains(p), "offset: {p} outside {self:?}");
        let s = self.size();
        ((p.y - self.lo.y) * s.x + (p.x - self.lo.x)) as usize
    }
}

impl std::fmt::Display for IndexBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lx: Coord, ly: Coord, hx: Coord, hy: Coord) -> IndexBox {
        IndexBox::new(IntVect::new(lx, ly), IntVect::new(hx, hy))
    }

    #[test]
    fn sizes_and_validity() {
        let v = b(0, 0, 3, 1);
        assert!(v.is_valid());
        assert_eq!(v.size(), IntVect::new(4, 2));
        assert_eq!(v.num_pts(), 8);
        assert_eq!(v.longest_side(), 4);
        assert_eq!(v.longest_dir(), 0);
        assert_eq!(v.shortest_side(), 2);
        assert!(!IndexBox::empty().is_valid());
        assert_eq!(IndexBox::empty().num_pts(), 0);
    }

    #[test]
    fn from_lo_size_round_trip() {
        let v = IndexBox::from_lo_size(IntVect::new(-2, 5), IntVect::new(3, 7));
        assert_eq!(v.lo(), IntVect::new(-2, 5));
        assert_eq!(v.size(), IntVect::new(3, 7));
        assert_eq!(IndexBox::at_origin(IntVect::splat(8)), b(0, 0, 7, 7));
    }

    #[test]
    fn containment() {
        let v = b(0, 0, 7, 7);
        assert!(v.contains(IntVect::new(0, 0)));
        assert!(v.contains(IntVect::new(7, 7)));
        assert!(!v.contains(IntVect::new(8, 0)));
        assert!(v.contains_box(&b(2, 2, 5, 5)));
        assert!(!v.contains_box(&b(2, 2, 8, 5)));
        assert!(v.contains_box(&IndexBox::empty()));
    }

    #[test]
    fn intersection_cases() {
        let v = b(0, 0, 7, 7);
        assert_eq!(v.intersection(&b(4, 4, 10, 10)), Some(b(4, 4, 7, 7)));
        assert_eq!(v.intersection(&b(8, 0, 9, 7)), None);
        assert_eq!(v.intersection(&v), Some(v));
        assert!(!v.intersects(&b(-3, -3, -1, -1)));
        // Touching at a single cell counts as intersecting.
        assert!(v.intersects(&b(7, 7, 9, 9)));
    }

    #[test]
    fn bounding_ignores_empty() {
        let v = b(0, 0, 1, 1);
        let w = b(4, 4, 5, 5);
        assert_eq!(v.bounding(&w), b(0, 0, 5, 5));
        assert_eq!(v.bounding(&IndexBox::empty()), v);
        assert_eq!(IndexBox::empty().bounding(&w), w);
    }

    #[test]
    fn grow_shift() {
        let v = b(0, 0, 3, 3);
        assert_eq!(v.grow(2), b(-2, -2, 5, 5));
        assert_eq!(v.grow(2).grow(-2), v);
        assert_eq!(v.grow_vect(IntVect::new(1, 0)), b(-1, 0, 4, 3));
        assert_eq!(v.shift(IntVect::new(10, -1)), b(10, -1, 13, 2));
    }

    #[test]
    fn refine_coarsen_semantics() {
        let r = IntVect::splat(2);
        let v = b(1, 1, 2, 3);
        // Refine: covers all fine cells of each coarse cell.
        assert_eq!(v.refine(r), b(2, 2, 5, 7));
        assert_eq!(v.refine(r).num_pts(), v.num_pts() * 4);
        // Coarsen is the left inverse of refine.
        assert_eq!(v.refine(r).coarsen(r), v);
        // Coarsening an unaligned box rounds outward (floor on both corners).
        assert_eq!(b(1, 1, 4, 4).coarsen(r), b(0, 0, 2, 2));
        assert!(b(2, 2, 5, 7).is_aligned(r));
        assert!(!b(1, 2, 5, 7).is_aligned(r));
    }

    #[test]
    fn chop_partitions() {
        let v = b(0, 0, 7, 3);
        let (lo, hi) = v.chop(0, 4);
        assert_eq!(lo, b(0, 0, 3, 3));
        assert_eq!(hi, b(4, 0, 7, 3));
        assert_eq!(lo.num_pts() + hi.num_pts(), v.num_pts());
        assert!(lo.intersection(&hi).is_none());
    }

    #[test]
    #[should_panic(expected = "outside the interior")]
    fn chop_at_lo_panics() {
        b(0, 0, 7, 3).chop(0, 0);
    }

    #[test]
    fn cell_iteration_order_matches_offset() {
        let v = b(1, 2, 3, 4);
        let cells: Vec<_> = v.cells().collect();
        assert_eq!(cells.len(), v.num_pts() as usize);
        assert_eq!(cells[0], IntVect::new(1, 2));
        assert_eq!(cells[1], IntVect::new(2, 2)); // x fastest
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(v.offset(*c), i);
        }
        assert_eq!(IndexBox::empty().cells().count(), 0);
    }
}
