//! Per-patch floating-point data arrays.
//!
//! `FArrayBox` mirrors AMReX's Fortran-ordered array box: multi-component
//! double-precision data over an [`IndexBox`], with x varying fastest.

use crate::index_box::IndexBox;
use crate::intvect::IntVect;

/// Multi-component `f64` data over a box of cells.
///
/// Storage is component-major: all cells of component 0, then component 1,
/// and within a component y-major with x fastest (Fortran order), matching
/// the byte layout the AMReX plotfile `Cell_D` format expects.
#[derive(Clone, Debug, PartialEq)]
pub struct FArrayBox {
    domain: IndexBox,
    ncomp: usize,
    data: Vec<f64>,
}

impl FArrayBox {
    /// Allocates a zero-initialized fab over `domain` with `ncomp`
    /// components.
    ///
    /// # Panics
    /// Panics if `domain` is invalid or `ncomp == 0`.
    pub fn new(domain: IndexBox, ncomp: usize) -> Self {
        assert!(domain.is_valid(), "FArrayBox: invalid domain {domain}");
        assert!(ncomp > 0, "FArrayBox: zero components");
        let n = domain.num_pts() as usize * ncomp;
        Self {
            domain,
            ncomp,
            data: vec![0.0; n],
        }
    }

    /// Allocates and fills every cell of every component with `value`.
    pub fn filled(domain: IndexBox, ncomp: usize, value: f64) -> Self {
        let mut f = Self::new(domain, ncomp);
        f.data.fill(value);
        f
    }

    /// The index region this fab covers (including any ghost cells the
    /// caller built into it).
    #[inline]
    pub fn domain(&self) -> IndexBox {
        self.domain
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Cells per component.
    #[inline]
    pub fn cells_per_comp(&self) -> usize {
        self.domain.num_pts() as usize
    }

    /// Flat storage index of `(p, comp)`.
    #[inline]
    fn idx(&self, p: IntVect, comp: usize) -> usize {
        debug_assert!(comp < self.ncomp, "component {comp} out of range");
        comp * self.cells_per_comp() + self.domain.offset(p)
    }

    /// Value at cell `p`, component `comp`.
    #[inline]
    pub fn get(&self, p: IntVect, comp: usize) -> f64 {
        self.data[self.idx(p, comp)]
    }

    /// Sets the value at cell `p`, component `comp`.
    #[inline]
    pub fn set(&mut self, p: IntVect, comp: usize, v: f64) {
        let i = self.idx(p, comp);
        self.data[i] = v;
    }

    /// Adds to the value at cell `p`, component `comp`.
    #[inline]
    pub fn add(&mut self, p: IntVect, comp: usize, v: f64) {
        let i = self.idx(p, comp);
        self.data[i] += v;
    }

    /// Read-only slice of one component in layout order.
    pub fn comp(&self, comp: usize) -> &[f64] {
        let n = self.cells_per_comp();
        &self.data[comp * n..(comp + 1) * n]
    }

    /// Mutable slice of one component in layout order.
    pub fn comp_mut(&mut self, comp: usize) -> &mut [f64] {
        let n = self.cells_per_comp();
        &mut self.data[comp * n..(comp + 1) * n]
    }

    /// Full backing storage (component-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copies `comp`-component data from `src` over the cells of `region`,
    /// which must lie inside both fabs' domains.
    pub fn copy_from(&mut self, src: &FArrayBox, region: &IndexBox, comp_map: &[(usize, usize)]) {
        debug_assert!(self.domain.contains_box(region));
        debug_assert!(src.domain.contains_box(region));
        for (sc, dc) in comp_map {
            for p in region.cells() {
                let v = src.get(p, *sc);
                self.set(p, *dc, v);
            }
        }
    }

    /// Copies all matching components from `src` over `region`.
    pub fn copy_all_from(&mut self, src: &FArrayBox, region: &IndexBox) {
        let ncomp = self.ncomp.min(src.ncomp);
        let map: Vec<(usize, usize)> = (0..ncomp).map(|c| (c, c)).collect();
        self.copy_from(src, region, &map);
    }

    /// Fills every cell of component `comp` inside `region` with `v`.
    pub fn fill_region(&mut self, region: &IndexBox, comp: usize, v: f64) {
        let Some(isect) = self.domain.intersection(region) else {
            return;
        };
        for p in isect.cells() {
            self.set(p, comp, v);
        }
    }

    /// Minimum over component `comp` restricted to `region`.
    pub fn min_in(&self, region: &IndexBox, comp: usize) -> f64 {
        region
            .intersection(&self.domain)
            .map(|r| {
                r.cells()
                    .map(|p| self.get(p, comp))
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap_or(f64::INFINITY)
    }

    /// Maximum over component `comp` restricted to `region`.
    pub fn max_in(&self, region: &IndexBox, comp: usize) -> f64 {
        region
            .intersection(&self.domain)
            .map(|r| {
                r.cells()
                    .map(|p| self.get(p, comp))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Sum over component `comp` restricted to `region`.
    pub fn sum_in(&self, region: &IndexBox, comp: usize) -> f64 {
        region
            .intersection(&self.domain)
            .map(|r| r.cells().map(|p| self.get(p, comp)).sum())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> IndexBox {
        IndexBox::at_origin(IntVect::new(4, 3))
    }

    #[test]
    fn zero_initialized() {
        let f = FArrayBox::new(dom(), 2);
        assert_eq!(f.ncomp(), 2);
        assert_eq!(f.cells_per_comp(), 12);
        assert!(f.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn filled_constructor() {
        let f = FArrayBox::filled(dom(), 1, 3.5);
        assert!(f.comp(0).iter().all(|&v| v == 3.5));
    }

    #[test]
    fn get_set_round_trip() {
        let mut f = FArrayBox::new(dom(), 2);
        f.set(IntVect::new(2, 1), 1, 7.0);
        assert_eq!(f.get(IntVect::new(2, 1), 1), 7.0);
        assert_eq!(f.get(IntVect::new(2, 1), 0), 0.0);
        f.add(IntVect::new(2, 1), 1, 1.0);
        assert_eq!(f.get(IntVect::new(2, 1), 1), 8.0);
    }

    #[test]
    fn component_layout_is_x_fastest() {
        let mut f = FArrayBox::new(dom(), 1);
        f.set(IntVect::new(1, 0), 0, 1.0);
        f.set(IntVect::new(0, 1), 0, 2.0);
        let c = f.comp(0);
        assert_eq!(c[1], 1.0); // x=1,y=0 is the second entry
        assert_eq!(c[4], 2.0); // x=0,y=1 starts the second row (width 4)
    }

    #[test]
    fn copy_from_subregion() {
        let mut a = FArrayBox::new(dom(), 1);
        let b = FArrayBox::filled(dom(), 1, 2.0);
        let region = IndexBox::at_origin(IntVect::new(2, 2));
        a.copy_all_from(&b, &region);
        assert_eq!(a.get(IntVect::new(0, 0), 0), 2.0);
        assert_eq!(a.get(IntVect::new(1, 1), 0), 2.0);
        assert_eq!(a.get(IntVect::new(2, 2), 0), 0.0);
    }

    #[test]
    fn copy_from_component_map() {
        let mut a = FArrayBox::new(dom(), 2);
        let mut b = FArrayBox::new(dom(), 2);
        for p in dom().cells() {
            b.set(p, 0, 1.0);
            b.set(p, 1, 2.0);
        }
        // Swap components while copying.
        a.copy_from(&b, &dom(), &[(0, 1), (1, 0)]);
        assert_eq!(a.get(IntVect::ZERO, 0), 2.0);
        assert_eq!(a.get(IntVect::ZERO, 1), 1.0);
    }

    #[test]
    fn reductions_respect_region() {
        let mut f = FArrayBox::new(dom(), 1);
        f.set(IntVect::new(0, 0), 0, -5.0);
        f.set(IntVect::new(3, 2), 0, 9.0);
        assert_eq!(f.min_in(&dom(), 0), -5.0);
        assert_eq!(f.max_in(&dom(), 0), 9.0);
        assert_eq!(f.sum_in(&dom(), 0), 4.0);
        let corner = IndexBox::at_origin(IntVect::new(1, 1));
        assert_eq!(f.max_in(&corner, 0), -5.0);
        // Region outside the fab gives identity elements.
        let outside = IndexBox::from_lo_size(IntVect::new(100, 100), IntVect::UNIT);
        assert_eq!(f.sum_in(&outside, 0), 0.0);
    }

    #[test]
    fn fill_region_clips_to_domain() {
        let mut f = FArrayBox::new(dom(), 1);
        f.fill_region(&dom().grow(5), 0, 1.0);
        assert!(f.comp(0).iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid domain")]
    fn invalid_domain_panics() {
        FArrayBox::new(IndexBox::empty(), 1);
    }
}
