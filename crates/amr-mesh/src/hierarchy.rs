//! Level-hierarchy grid generation.
//!
//! Combines tagging, blocking-factor alignment, Berger–Rigoutsos
//! clustering, and `max_grid_size` chopping into the grid-creation pipeline
//! AMReX runs at each regrid (`AmrMesh::MakeNewGrids`), driven by the same
//! input-file parameters Castro exposes (`amr.ref_ratio`,
//! `amr.blocking_factor`, `amr.max_grid_size`, `amr.grid_eff`,
//! `amr.n_error_buf`).

use crate::box_array::BoxArray;
use crate::cluster::{cluster, ClusterParams};
use crate::index_box::IndexBox;
use crate::intvect::{Coord, IntVect};
use crate::tagging::TagMap;
use serde::{Deserialize, Serialize};

/// Grid-generation parameters shared by all levels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridParams {
    /// Refinement ratio between consecutive levels (`amr.ref_ratio`).
    pub ref_ratio: Coord,
    /// Grid corners must align to multiples of this many cells
    /// (`amr.blocking_factor`).
    pub blocking_factor: Coord,
    /// No grid side may exceed this many cells (`amr.max_grid_size`).
    pub max_grid_size: Coord,
    /// Tagged regions are buffered by this many cells before clustering
    /// (`amr.n_error_buf`).
    pub n_error_buf: Coord,
    /// Target clustering efficiency (`amr.grid_eff`).
    pub grid_eff: f64,
}

impl Default for GridParams {
    /// The Castro Sedov input-file defaults (Listing 2 of the paper):
    /// `ref_ratio = 2`, `blocking_factor = 8`, `max_grid_size = 256`,
    /// with AMReX's defaults `n_error_buf = 1`, `grid_eff = 0.7`.
    fn default() -> Self {
        Self {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 256,
            n_error_buf: 1,
            grid_eff: 0.7,
        }
    }
}

impl GridParams {
    /// Validates divisibility constraints the pipeline relies on.
    ///
    /// # Panics
    /// Panics if `ref_ratio` does not divide `blocking_factor`, or
    /// `blocking_factor` does not divide `max_grid_size`, or any value is
    /// non-positive.
    pub fn validate(&self) {
        assert!(self.ref_ratio >= 2, "GridParams: ref_ratio must be >= 2");
        assert!(
            self.blocking_factor >= 1 && self.blocking_factor % self.ref_ratio == 0,
            "GridParams: ref_ratio {} must divide blocking_factor {}",
            self.ref_ratio,
            self.blocking_factor
        );
        assert!(
            self.max_grid_size >= self.blocking_factor
                && self.max_grid_size % self.blocking_factor == 0,
            "GridParams: blocking_factor {} must divide max_grid_size {}",
            self.blocking_factor,
            self.max_grid_size
        );
        assert!(self.n_error_buf >= 0, "GridParams: negative n_error_buf");
    }

    /// Clustering granularity in *coarse-level* cells: new fine grids must
    /// align to `blocking_factor` fine cells, i.e. to
    /// `blocking_factor / ref_ratio` coarse cells.
    pub fn coarse_granularity(&self) -> Coord {
        (self.blocking_factor / self.ref_ratio).max(1)
    }
}

/// Builds the next-finer level's grids from cells tagged on the coarse
/// level.
///
/// Pipeline (all in the coarse level's index space until the last step):
/// 1. buffer tags by `n_error_buf`;
/// 2. coarsen the tag map to blocking-factor granularity;
/// 3. Berger–Rigoutsos clustering at that granularity;
/// 4. chop so no side exceeds `max_grid_size` (in fine cells);
/// 5. refine to the fine level's index space and clip to the fine domain.
///
/// Returns an empty `BoxArray` when nothing is tagged.
pub fn make_fine_grids(tags: &TagMap, coarse_domain: IndexBox, params: &GridParams) -> BoxArray {
    params.validate();
    assert!(
        coarse_domain.contains_box(&tags.domain()),
        "make_fine_grids: tag map extends outside the coarse domain"
    );

    let mut tags = tags.clone();
    tags.buffer(params.n_error_buf);

    let g = params.coarse_granularity();
    let granular = tags.coarsen(IntVect::splat(g));

    let boxes = cluster(
        &granular,
        ClusterParams {
            grid_eff: params.grid_eff,
            min_width: 1,
        },
    );
    if boxes.is_empty() {
        return BoxArray::empty();
    }

    // One granular cell = `blocking_factor` fine cells, so the max side in
    // granular units is max_grid_size / blocking_factor.
    let max_granular = params.max_grid_size / params.blocking_factor;
    let ba = BoxArray::new(boxes).max_size(max_granular);

    // Granular -> fine index space: one granular cell covers
    // g * ref_ratio = blocking_factor fine cells.
    let to_fine = IntVect::splat(params.blocking_factor);
    let fine_domain = coarse_domain.refine(IntVect::splat(params.ref_ratio));
    let fine_boxes: Vec<IndexBox> = ba
        .iter()
        .map(|b| b.refine(to_fine))
        .filter_map(|b| b.intersection(&fine_domain))
        .collect();
    BoxArray::new(fine_boxes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: Coord) -> IndexBox {
        IndexBox::at_origin(IntVect::splat(n))
    }

    fn params() -> GridParams {
        GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 32,
            n_error_buf: 1,
            grid_eff: 0.7,
        }
    }

    #[test]
    fn default_matches_castro_listing() {
        let p = GridParams::default();
        p.validate();
        assert_eq!(p.ref_ratio, 2);
        assert_eq!(p.blocking_factor, 8);
        assert_eq!(p.max_grid_size, 256);
        assert_eq!(p.coarse_granularity(), 4);
    }

    #[test]
    fn empty_tags_give_empty_grids() {
        let tags = TagMap::new(dom(64));
        let ba = make_fine_grids(&tags, dom(64), &params());
        assert!(ba.is_empty());
    }

    #[test]
    fn fine_grids_cover_refined_tags() {
        let mut tags = TagMap::new(dom(64));
        tags.tag_region(&IndexBox::new(IntVect::new(20, 20), IntVect::new(30, 28)));
        let p = params();
        let ba = make_fine_grids(&tags, dom(64), &p);
        assert!(!ba.is_empty());
        // Every tagged coarse cell, refined, must be covered.
        for c in tags.domain().cells() {
            if tags.get(c) {
                let fine = IndexBox::new(c, c).refine(IntVect::splat(p.ref_ratio));
                for fp in fine.cells() {
                    assert!(ba.contains_cell(fp), "fine cell {fp} uncovered");
                }
            }
        }
    }

    #[test]
    fn fine_grids_are_blocked_and_bounded() {
        let mut tags = TagMap::new(dom(128));
        // Ring of tags.
        for c in dom(128).cells() {
            let dx = c.x as f64 - 64.0;
            let dy = c.y as f64 - 64.0;
            let r = (dx * dx + dy * dy).sqrt();
            if (r - 40.0).abs() < 3.0 {
                tags.set(c, true);
            }
        }
        let p = params();
        let ba = make_fine_grids(&tags, dom(128), &p);
        let bf = IntVect::splat(p.blocking_factor);
        let fine_domain = dom(128).refine(IntVect::splat(p.ref_ratio));
        for b in ba.iter() {
            assert!(b.longest_side() <= p.max_grid_size, "{b} too large");
            assert!(fine_domain.contains_box(b), "{b} outside domain");
            // Alignment can only be broken by clipping at the domain edge.
            if fine_domain.grow(-p.blocking_factor).contains_box(b) {
                assert!(b.is_aligned(bf), "{b} not aligned to blocking factor");
            }
        }
        assert!(ba.is_disjoint());
    }

    #[test]
    fn buffered_tags_grow_coverage() {
        let mut tags = TagMap::new(dom(64));
        tags.set(IntVect::new(32, 32), true);
        let mut p = params();
        p.n_error_buf = 0;
        let ba0 = make_fine_grids(&tags, dom(64), &p);
        p.n_error_buf = 4;
        let ba4 = make_fine_grids(&tags, dom(64), &p);
        assert!(ba4.num_pts() >= ba0.num_pts());
    }

    #[test]
    #[should_panic(expected = "must divide blocking_factor")]
    fn invalid_blocking_factor_panics() {
        let p = GridParams {
            ref_ratio: 2,
            blocking_factor: 3,
            max_grid_size: 32,
            n_error_buf: 1,
            grid_eff: 0.7,
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "must divide max_grid_size")]
    fn invalid_max_grid_size_panics() {
        let p = GridParams {
            ref_ratio: 2,
            blocking_factor: 8,
            max_grid_size: 36,
            n_error_buf: 1,
            grid_eff: 0.7,
        };
        p.validate();
    }
}
