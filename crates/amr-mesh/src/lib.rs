//! Block-structured AMR mesh substrate.
//!
//! A from-scratch reimplementation of the AMReX mesh machinery that the
//! paper's I/O study depends on: index-space box algebra, grid patch
//! collections, rank-ownership maps, per-patch field data, refinement
//! tagging, and Berger–Rigoutsos grid generation.
//!
//! The crate is deliberately 2-D (the paper studies the 2-D Sedov case) and
//! deterministic: given the same tags and parameters, grid generation and
//! distribution mapping produce byte-identical results, which the I/O model
//! layers above rely on.
//!
//! **Layer position:** the mesh substrate — `hydro` evolves fields on
//! it, `plotfile` serializes it; it depends on no other workspace crate.
//! Key types: [`IndexBox`], [`BoxArray`], [`DistributionMapping`],
//! [`MultiFab`], [`GridParams`].
//!
//! # Quick tour
//!
//! ```
//! use amr_mesh::prelude::*;
//!
//! // A 64x64 level-0 domain chopped into 32^2 patches:
//! let domain = IndexBox::at_origin(IntVect::splat(64));
//! let ba = BoxArray::single(domain).max_size(32);
//! assert_eq!(ba.len(), 4);
//!
//! // Distribute over 2 ranks along the space-filling curve:
//! let dm = DistributionMapping::new(&ba, 2, DistributionStrategy::Sfc);
//! assert_eq!(dm.nranks(), 2);
//!
//! // Tag a feature and generate aligned fine grids:
//! let mut tags = TagMap::new(domain);
//! tags.tag_region(&IndexBox::from_lo_size(IntVect::new(20, 20), IntVect::splat(10)));
//! let fine = make_fine_grids(&tags, domain, &GridParams::default());
//! assert!(!fine.is_empty());
//! ```

pub mod box_array;
pub mod cluster;
pub mod distribution;
pub mod fab;
pub mod geometry;
pub mod hierarchy;
pub mod index_box;
pub mod intvect;
pub mod morton;
pub mod multifab;
pub mod tagging;

pub use box_array::BoxArray;
pub use cluster::{cluster, efficiency, ClusterParams};
pub use distribution::{DistributionMapping, DistributionStrategy};
pub use fab::FArrayBox;
pub use geometry::Geometry;
pub use hierarchy::{make_fine_grids, GridParams};
pub use index_box::IndexBox;
pub use intvect::{Coord, IntVect, SPACEDIM};
pub use multifab::MultiFab;
pub use tagging::TagMap;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::box_array::BoxArray;
    pub use crate::cluster::{cluster, efficiency, ClusterParams};
    pub use crate::distribution::{DistributionMapping, DistributionStrategy};
    pub use crate::fab::FArrayBox;
    pub use crate::geometry::Geometry;
    pub use crate::hierarchy::{make_fine_grids, GridParams};
    pub use crate::index_box::IndexBox;
    pub use crate::intvect::{Coord, IntVect};
    pub use crate::multifab::MultiFab;
    pub use crate::tagging::TagMap;
}
