//! Physical-domain description of an AMR level.
//!
//! Mirrors AMReX's `Geometry`: the map between cell index space and physical
//! coordinates, per refinement level (`geometry.prob_lo/prob_hi` and
//! `amr.n_cell` in a Castro input file).

use crate::index_box::IndexBox;
use crate::intvect::IntVect;
use serde::{Deserialize, Serialize};

/// Physical geometry of one level: index domain plus coordinate mapping.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Index-space domain of the level (cell-centered).
    pub domain: IndexBox,
    /// Physical coordinates of the low corner of the domain.
    pub prob_lo: [f64; 2],
    /// Physical coordinates of the high corner of the domain.
    pub prob_hi: [f64; 2],
}

impl Geometry {
    /// Creates a geometry for `domain` spanning `[prob_lo, prob_hi]`.
    ///
    /// # Panics
    /// Panics if the domain is invalid or the physical extents are
    /// non-positive.
    pub fn new(domain: IndexBox, prob_lo: [f64; 2], prob_hi: [f64; 2]) -> Self {
        assert!(domain.is_valid(), "Geometry: invalid domain");
        assert!(
            prob_hi[0] > prob_lo[0] && prob_hi[1] > prob_lo[1],
            "Geometry: non-positive physical extent"
        );
        Self {
            domain,
            prob_lo,
            prob_hi,
        }
    }

    /// Unit-square geometry over an `n.x` by `n.y` domain at the origin
    /// (the Castro Sedov default: `prob_lo = 0 0`, `prob_hi = 1 1`).
    pub fn unit_square(n: IntVect) -> Self {
        Self::new(IndexBox::at_origin(n), [0.0, 0.0], [1.0, 1.0])
    }

    /// Cell size along each direction.
    pub fn dx(&self) -> [f64; 2] {
        let s = self.domain.size();
        [
            (self.prob_hi[0] - self.prob_lo[0]) / s.x as f64,
            (self.prob_hi[1] - self.prob_lo[1]) / s.y as f64,
        ]
    }

    /// Physical coordinates of the center of cell `p`.
    pub fn cell_center(&self, p: IntVect) -> [f64; 2] {
        let dx = self.dx();
        [
            self.prob_lo[0] + (p.x - self.domain.lo().x) as f64 * dx[0] + 0.5 * dx[0],
            self.prob_lo[1] + (p.y - self.domain.lo().y) as f64 * dx[1] + 0.5 * dx[1],
        ]
    }

    /// Geometry of the next finer level (same physical extent, refined
    /// index domain).
    pub fn refine(&self, ratio: IntVect) -> Geometry {
        Geometry {
            domain: self.domain.refine(ratio),
            prob_lo: self.prob_lo,
            prob_hi: self.prob_hi,
        }
    }

    /// Cell area (2-D volume element).
    pub fn cell_area(&self) -> f64 {
        let dx = self.dx();
        dx[0] * dx[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_dx() {
        let g = Geometry::unit_square(IntVect::new(32, 32));
        assert_eq!(g.dx(), [1.0 / 32.0, 1.0 / 32.0]);
        assert!((g.cell_area() - 1.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn anisotropic_domain() {
        let g = Geometry::new(
            IndexBox::at_origin(IntVect::new(10, 20)),
            [0.0, -1.0],
            [2.0, 1.0],
        );
        let dx = g.dx();
        assert!((dx[0] - 0.2).abs() < 1e-15);
        assert!((dx[1] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn cell_centers() {
        let g = Geometry::unit_square(IntVect::new(4, 4));
        let c = g.cell_center(IntVect::new(0, 0));
        assert!((c[0] - 0.125).abs() < 1e-15);
        assert!((c[1] - 0.125).abs() < 1e-15);
        let c = g.cell_center(IntVect::new(3, 3));
        assert!((c[0] - 0.875).abs() < 1e-15);
    }

    #[test]
    fn refine_halves_dx() {
        let g = Geometry::unit_square(IntVect::new(8, 8));
        let f = g.refine(IntVect::splat(2));
        assert_eq!(f.domain.size(), IntVect::splat(16));
        assert!((f.dx()[0] - g.dx()[0] / 2.0).abs() < 1e-15);
        assert_eq!(f.prob_lo, g.prob_lo);
    }

    #[test]
    #[should_panic(expected = "non-positive physical extent")]
    fn degenerate_extent_panics() {
        Geometry::new(
            IndexBox::at_origin(IntVect::splat(4)),
            [0.0, 0.0],
            [0.0, 1.0],
        );
    }
}
