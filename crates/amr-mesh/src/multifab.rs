//! Level-wide distributed data: one fab per grid patch.
//!
//! `MultiFab` mirrors AMReX's `MultiFab`: the data of one AMR level spread
//! over the boxes of a [`BoxArray`], owned by ranks according to a
//! [`DistributionMapping`]. In this simulated-MPI substrate every fab is
//! resident in the single address space, but ownership is tracked so the
//! I/O path can reproduce exactly which rank writes which bytes.

use crate::box_array::BoxArray;
use crate::distribution::DistributionMapping;
use crate::fab::FArrayBox;
use crate::index_box::IndexBox;
use crate::intvect::Coord;

/// Distributed per-level data container.
#[derive(Clone, Debug)]
pub struct MultiFab {
    ba: BoxArray,
    dm: DistributionMapping,
    ncomp: usize,
    ngrow: Coord,
    fabs: Vec<FArrayBox>,
}

impl MultiFab {
    /// Allocates a zeroed multifab: one fab per box of `ba`, each grown by
    /// `ngrow` ghost cells on every side.
    ///
    /// # Panics
    /// Panics if `ba` and `dm` have different lengths, `ncomp == 0`, or
    /// `ngrow < 0`.
    pub fn new(ba: BoxArray, dm: DistributionMapping, ncomp: usize, ngrow: Coord) -> Self {
        assert_eq!(ba.len(), dm.len(), "MultiFab: BoxArray/DM length mismatch");
        assert!(ncomp > 0, "MultiFab: zero components");
        assert!(ngrow >= 0, "MultiFab: negative ghost width");
        let fabs = ba
            .iter()
            .map(|b| FArrayBox::new(b.grow(ngrow), ncomp))
            .collect();
        Self {
            ba,
            dm,
            ncomp,
            ngrow,
            fabs,
        }
    }

    /// The level's box array.
    #[inline]
    pub fn box_array(&self) -> &BoxArray {
        &self.ba
    }

    /// The rank ownership map.
    #[inline]
    pub fn distribution_map(&self) -> &DistributionMapping {
        &self.dm
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Ghost-cell width.
    #[inline]
    pub fn ngrow(&self) -> Coord {
        self.ngrow
    }

    /// Number of fabs (== number of boxes).
    #[inline]
    pub fn nfabs(&self) -> usize {
        self.fabs.len()
    }

    /// The valid (non-ghost) region of fab `i`.
    #[inline]
    pub fn valid_box(&self, i: usize) -> IndexBox {
        self.ba.get(i)
    }

    /// Read access to fab `i` (valid + ghost region).
    #[inline]
    pub fn fab(&self, i: usize) -> &FArrayBox {
        &self.fabs[i]
    }

    /// Mutable access to fab `i`.
    #[inline]
    pub fn fab_mut(&mut self, i: usize) -> &mut FArrayBox {
        &mut self.fabs[i]
    }

    /// Mutable access to all fabs at once (for rayon-parallel level loops).
    pub fn fabs_mut(&mut self) -> &mut [FArrayBox] {
        &mut self.fabs
    }

    /// Pairs of `(valid_box, fab)` for iteration.
    pub fn iter(&self) -> impl Iterator<Item = (IndexBox, &FArrayBox)> {
        self.ba.iter().copied().zip(self.fabs.iter())
    }

    /// Sets every cell (including ghosts) of component `comp` to `v`.
    pub fn set_val(&mut self, comp: usize, v: f64) {
        for f in &mut self.fabs {
            f.comp_mut(comp).fill(v);
        }
    }

    /// Fills ghost cells of every fab from the valid regions of neighbouring
    /// fabs on the same level (AMReX `FillBoundary`, non-periodic).
    ///
    /// Ghost cells with no same-level neighbour (physical boundary or
    /// coarse-fine boundary) are left untouched.
    pub fn fill_boundary(&mut self) {
        let n = self.fabs.len();
        for i in 0..n {
            let ghost_region = self.ba.get(i).grow(self.ngrow);
            for j in 0..n {
                if i == j {
                    continue;
                }
                if let Some(overlap) = ghost_region.intersection(&self.ba.get(j)) {
                    // Copy src valid data into dst ghosts. Split borrow.
                    let (src, dst) = if i < j {
                        let (a, b) = self.fabs.split_at_mut(j);
                        (&b[0], &mut a[i])
                    } else {
                        let (a, b) = self.fabs.split_at_mut(i);
                        (&a[j], &mut b[0])
                    };
                    dst.copy_all_from(src, &overlap);
                }
            }
        }
    }

    /// Copies valid-region data from `src` (possibly with a different
    /// BoxArray) into the valid regions of `self` where they overlap
    /// (AMReX `ParallelCopy`).
    pub fn parallel_copy_from(&mut self, src: &MultiFab) {
        let ncomp = self.ncomp.min(src.ncomp);
        let map: Vec<(usize, usize)> = (0..ncomp).map(|c| (c, c)).collect();
        for di in 0..self.fabs.len() {
            let dst_valid = self.ba.get(di);
            for (si, overlap) in src.ba.intersections(&dst_valid) {
                self.fabs[di].copy_from(src.fab(si), &overlap, &map);
            }
        }
    }

    /// Minimum of component `comp` over all valid regions.
    pub fn min(&self, comp: usize) -> f64 {
        self.iter()
            .map(|(b, f)| f.min_in(&b, comp))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum of component `comp` over all valid regions.
    pub fn max(&self, comp: usize) -> f64 {
        self.iter()
            .map(|(b, f)| f.max_in(&b, comp))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of component `comp` over all valid regions.
    pub fn sum(&self, comp: usize) -> f64 {
        self.iter().map(|(b, f)| f.sum_in(&b, comp)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crate::intvect::IntVect;

    fn make(n: Coord, max: Coord, nranks: usize, ncomp: usize, ngrow: Coord) -> MultiFab {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(n))).max_size(max);
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::Sfc);
        MultiFab::new(ba, dm, ncomp, ngrow)
    }

    #[test]
    fn construction_allocates_grown_fabs() {
        let mf = make(32, 16, 2, 3, 2);
        assert_eq!(mf.nfabs(), 4);
        assert_eq!(mf.ncomp(), 3);
        for i in 0..mf.nfabs() {
            assert_eq!(mf.fab(i).domain(), mf.valid_box(i).grow(2));
        }
    }

    #[test]
    fn set_val_and_reductions() {
        let mut mf = make(16, 8, 1, 1, 0);
        mf.set_val(0, 2.0);
        assert_eq!(mf.sum(0), 2.0 * 256.0);
        assert_eq!(mf.min(0), 2.0);
        assert_eq!(mf.max(0), 2.0);
    }

    #[test]
    fn fill_boundary_copies_neighbor_valid_data() {
        let mut mf = make(16, 8, 1, 1, 1);
        // Fill each fab's valid region with its own box index.
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            let f = mf.fab_mut(i);
            f.fill_region(&vb, 0, (i + 1) as f64);
        }
        mf.fill_boundary();
        // Fab 0 is [0..7]^2; its ghost column x=8 should now hold fab 1's
        // value (fab 1 is [8..15]x[0..7] in max_size order).
        let g = mf.fab(0).get(IntVect::new(8, 3), 0);
        assert_eq!(g, 2.0);
        // Ghosts at the physical boundary stay zero.
        assert_eq!(mf.fab(0).get(IntVect::new(-1, 3), 0), 0.0);
        // Corner ghost shared with fab 3 ([8..15]x[8..15]).
        assert_eq!(mf.fab(0).get(IntVect::new(8, 8), 0), 4.0);
    }

    #[test]
    fn fill_boundary_preserves_valid_data() {
        let mut mf = make(16, 8, 1, 1, 1);
        mf.set_val(0, 0.0);
        for i in 0..mf.nfabs() {
            let vb = mf.valid_box(i);
            mf.fab_mut(i).fill_region(&vb, 0, (i + 1) as f64);
        }
        let before: Vec<f64> = (0..mf.nfabs())
            .map(|i| mf.fab(i).sum_in(&mf.valid_box(i), 0))
            .collect();
        mf.fill_boundary();
        let after: Vec<f64> = (0..mf.nfabs())
            .map(|i| mf.fab(i).sum_in(&mf.valid_box(i), 0))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn parallel_copy_between_different_layouts() {
        let mut dst = make(16, 8, 1, 1, 0);
        let mut src = make(16, 4, 1, 1, 0); // finer chopping, same domain
        src.set_val(0, 5.0);
        dst.parallel_copy_from(&src);
        assert_eq!(dst.min(0), 5.0);
        assert_eq!(dst.sum(0), 5.0 * 256.0);
    }

    #[test]
    fn parallel_copy_partial_overlap() {
        let ba_dst = BoxArray::single(IndexBox::at_origin(IntVect::splat(8)));
        let dm_dst = DistributionMapping::new(&ba_dst, 1, DistributionStrategy::RoundRobin);
        let mut dst = MultiFab::new(ba_dst, dm_dst, 1, 0);

        let ba_src = BoxArray::single(IndexBox::from_lo_size(
            IntVect::new(4, 4),
            IntVect::splat(8),
        ));
        let dm_src = DistributionMapping::new(&ba_src, 1, DistributionStrategy::RoundRobin);
        let mut src = MultiFab::new(ba_src, dm_src, 1, 0);
        src.set_val(0, 1.0);

        dst.parallel_copy_from(&src);
        // Only the [4..7]^2 corner overlaps.
        assert_eq!(dst.sum(0), 16.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dm_panics() {
        let ba = BoxArray::single(IndexBox::at_origin(IntVect::splat(8)));
        let dm = DistributionMapping::from_owners(vec![0, 0], 1);
        MultiFab::new(ba, dm, 1, 0);
    }
}
