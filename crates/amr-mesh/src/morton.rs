//! Morton (Z-order) space-filling-curve encoding.
//!
//! Used by the SFC distribution-mapping strategy to order grid patches so
//! that index-space locality maps to rank locality, mirroring AMReX's
//! `DistributionMapping::SFCProcessorMap`.

use crate::intvect::{Coord, IntVect};

/// Number of low bits per coordinate that participate in the interleave.
/// 31 bits per axis fills a `u64` key and covers domains up to 2^31 cells
/// per side — far beyond the paper's largest 131,072-cell side.
const BITS: u32 = 31;

/// Interleaves the low 31 bits of `x` into even bit positions.
fn spread(x: u64) -> u64 {
    // Classic bit-twiddling spread for 2-D Morton codes.
    let mut v = x & 0x7fff_ffff;
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Morton key for a (non-negative) 2-D index. Coordinates are clamped to the
/// supported 31-bit range.
///
/// # Panics
/// Panics (debug only) on negative coordinates; callers should shift their
/// index space to be non-negative first (see [`morton_key_in`]).
pub fn morton_key(p: IntVect) -> u64 {
    debug_assert!(
        p.x >= 0 && p.y >= 0,
        "morton_key: negative coordinate {p}; shift to a non-negative frame"
    );
    let mask = (1u64 << BITS) - 1;
    let x = (p.x as u64) & mask;
    let y = (p.y as u64) & mask;
    spread(x) | (spread(y) << 1)
}

/// Morton key of `p` relative to a frame origin, so that negative global
/// indices are supported as long as `p >= origin` component-wise.
pub fn morton_key_in(p: IntVect, origin: IntVect) -> u64 {
    morton_key(p - origin)
}

/// Orders points by Morton key; a strict weak ordering suitable for sorting
/// box centers along the Z-curve.
pub fn morton_cmp(a: IntVect, b: IntVect, origin: IntVect) -> std::cmp::Ordering {
    morton_key_in(a, origin).cmp(&morton_key_in(b, origin))
}

/// Center cell of a box (rounded toward the low corner).
pub fn box_center(b: &crate::index_box::IndexBox) -> IntVect {
    IntVect::new(avg_floor(b.lo().x, b.hi().x), avg_floor(b.lo().y, b.hi().y))
}

fn avg_floor(a: Coord, b: Coord) -> Coord {
    // Overflow-safe midpoint.
    a + (b - a) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_box::IndexBox;

    #[test]
    fn key_zero_is_zero() {
        assert_eq!(morton_key(IntVect::ZERO), 0);
    }

    #[test]
    fn keys_interleave_bits() {
        // (1,0) -> bit 0, (0,1) -> bit 1, (2,0) -> bit 2, (0,2) -> bit 3.
        assert_eq!(morton_key(IntVect::new(1, 0)), 0b0001);
        assert_eq!(morton_key(IntVect::new(0, 1)), 0b0010);
        assert_eq!(morton_key(IntVect::new(1, 1)), 0b0011);
        assert_eq!(morton_key(IntVect::new(2, 0)), 0b0100);
        assert_eq!(morton_key(IntVect::new(0, 2)), 0b1000);
        assert_eq!(morton_key(IntVect::new(3, 3)), 0b1111);
    }

    #[test]
    fn keys_are_unique_in_a_tile() {
        let mut keys = Vec::new();
        for y in 0..16 {
            for x in 0..16 {
                keys.push(morton_key(IntVect::new(x, y)));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 256);
    }

    #[test]
    fn z_order_visits_quadrants_in_order() {
        // Quadrant order for a 4x4 tile: lower-left, lower-right(x-high),
        // upper-left, upper-right.
        let k_ll = morton_key(IntVect::new(0, 0));
        let k_lr = morton_key(IntVect::new(2, 0));
        let k_ul = morton_key(IntVect::new(0, 2));
        let k_ur = morton_key(IntVect::new(2, 2));
        assert!(k_ll < k_lr && k_lr < k_ul && k_ul < k_ur);
    }

    #[test]
    fn relative_frame_supports_negative_coords() {
        let origin = IntVect::new(-8, -8);
        let a = IntVect::new(-8, -8);
        let c = IntVect::new(-7, -8);
        assert_eq!(morton_key_in(a, origin), 0);
        assert_eq!(morton_key_in(c, origin), 1);
        assert_eq!(morton_cmp(a, c, origin), std::cmp::Ordering::Less);
    }

    #[test]
    fn large_coordinates_do_not_collide() {
        let a = IntVect::new(131_072, 0);
        let b = IntVect::new(0, 131_072);
        assert_ne!(morton_key(a), morton_key(b));
    }

    #[test]
    fn box_center_rounds_low() {
        let bx = IndexBox::new(IntVect::new(0, 0), IntVect::new(3, 4));
        assert_eq!(box_center(&bx), IntVect::new(1, 2));
        let single = IndexBox::new(IntVect::new(5, 5), IntVect::new(5, 5));
        assert_eq!(box_center(&single), IntVect::new(5, 5));
    }
}
