//! Berger–Rigoutsos grid generation.
//!
//! Turns a [`TagMap`] of cells flagged for refinement into a set of
//! rectangular patches, following the classic Berger–Rigoutsos point
//! clustering algorithm AMReX uses: recursively split tag clusters at
//! signature holes, then at inflection points of the signature's second
//! difference, until every box meets the target filling efficiency
//! (`amr.grid_eff`, default 0.7).

use crate::index_box::IndexBox;
use crate::intvect::{Coord, SPACEDIM};
use crate::tagging::TagMap;

/// Tunable knobs of the clustering algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterParams {
    /// Minimum fraction of tagged cells a produced box must contain
    /// (AMReX `amr.grid_eff`).
    pub grid_eff: f64,
    /// Minimum side length of any produced box, in the tag map's index
    /// space. When clustering at blocking-factor granularity this is 1.
    pub min_width: Coord,
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self {
            grid_eff: 0.7,
            min_width: 1,
        }
    }
}

/// Clusters tagged cells into boxes in the tag map's own index space.
///
/// Guarantees:
/// * every tagged cell is covered by exactly one returned box;
/// * returned boxes are mutually disjoint and lie inside `tags.domain()`;
/// * each box is the minimal bounding box of the tags it contains.
pub fn cluster(tags: &TagMap, params: ClusterParams) -> Vec<IndexBox> {
    assert!(
        params.grid_eff > 0.0 && params.grid_eff <= 1.0,
        "cluster: grid_eff must be in (0, 1], got {}",
        params.grid_eff
    );
    assert!(params.min_width >= 1, "cluster: min_width must be >= 1");

    let mut out = Vec::new();
    let root = tags.bounding_box();
    if !root.is_valid() {
        return out;
    }
    let mut work = vec![root];
    while let Some(b) = work.pop() {
        let count = tags.count_in(&b);
        if count == 0 {
            continue;
        }
        let b = shrink_to_tags(tags, &b);
        let eff = count as f64 / b.num_pts() as f64;
        if eff >= params.grid_eff {
            out.push(b);
            continue;
        }
        match split(tags, &b, params.min_width) {
            Some((b1, b2)) => {
                work.push(b1);
                work.push(b2);
            }
            None => out.push(b),
        }
    }
    out
}

/// Minimal box containing all tags inside `b` (assumes at least one tag).
fn shrink_to_tags(tags: &TagMap, b: &IndexBox) -> IndexBox {
    let mut lo = b.lo();
    let mut hi = b.hi();
    for dir in 0..SPACEDIM {
        let sig = tags.signatures(b, dir);
        let first = sig.iter().position(|&s| s > 0).expect("tags present");
        let last = sig.iter().rposition(|&s| s > 0).expect("tags present");
        lo.set(dir, b.lo().get(dir) + first as Coord);
        hi.set(dir, b.lo().get(dir) + last as Coord);
    }
    IndexBox::new(lo, hi)
}

/// Chooses a split position for `b`, or `None` when the box cannot be split
/// without violating `min_width`.
fn split(tags: &TagMap, b: &IndexBox, min_width: Coord) -> Option<(IndexBox, IndexBox)> {
    // 1. Holes: a zero in the signature separates two clusters cleanly.
    //    Prefer the hole closest to the box center, longest direction first.
    let mut dirs = [b.longest_dir(), 1 - b.longest_dir()];
    if b.length(dirs[0]) == b.length(dirs[1]) {
        dirs = [0, 1];
    }
    for dir in dirs {
        if let Some(at) = find_hole(tags, b, dir, min_width) {
            return Some(b.chop(dir, at));
        }
    }
    // 2. Inflection points of the signature's second difference.
    let mut best: Option<(usize, Coord, usize)> = None; // (dir, at, strength)
    for dir in dirs {
        if let Some((at, strength)) = find_inflection(tags, b, dir, min_width) {
            if best.map(|(_, _, s)| strength > s).unwrap_or(true) {
                best = Some((dir, at, strength));
            }
        }
    }
    if let Some((dir, at, _)) = best {
        return Some(b.chop(dir, at));
    }
    // 3. Fall back to a midpoint bisection of the longest side.
    let dir = b.longest_dir();
    if b.length(dir) >= 2 * min_width {
        let at = b.lo().get(dir) + b.length(dir) / 2;
        return Some(b.chop(dir, at));
    }
    None
}

/// Finds the interior hole (zero signature slice) closest to the center,
/// honouring `min_width` on both sides; returns the chop coordinate.
fn find_hole(tags: &TagMap, b: &IndexBox, dir: usize, min_width: Coord) -> Option<Coord> {
    let sig = tags.signatures(b, dir);
    let len = sig.len() as Coord;
    let mid = len / 2;
    let mut best: Option<(Coord, Coord)> = None; // (distance to mid, index)
    for (i, &s) in sig.iter().enumerate() {
        let i = i as Coord;
        if s == 0 && i >= min_width && i <= len - 1 - min_width {
            let d = (i - mid).abs();
            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                best = Some((d, i));
            }
        }
    }
    best.map(|(_, i)| b.lo().get(dir) + i)
}

/// Finds the strongest sign change of the second difference of the
/// signature (Berger–Rigoutsos "Laplacian" criterion); returns the chop
/// coordinate and the change magnitude.
fn find_inflection(
    tags: &TagMap,
    b: &IndexBox,
    dir: usize,
    min_width: Coord,
) -> Option<(Coord, usize)> {
    let sig = tags.signatures(b, dir);
    if sig.len() < 4 {
        return None;
    }
    let d2: Vec<i64> = (1..sig.len() - 1)
        .map(|i| sig[i + 1] as i64 - 2 * sig[i] as i64 + sig[i - 1] as i64)
        .collect();
    let len = sig.len() as Coord;
    let mut best: Option<(Coord, usize)> = None;
    for i in 0..d2.len() - 1 {
        if d2[i].signum() * d2[i + 1].signum() < 0 {
            // Chop between signature slots i+1 and i+2 (d2 index i maps to
            // signature index i+1).
            let at_rel = (i + 2) as Coord;
            if at_rel < min_width || at_rel > len - min_width {
                continue;
            }
            let strength = (d2[i + 1] - d2[i]).unsigned_abs() as usize;
            if best.map(|(_, s)| strength > s).unwrap_or(true) {
                best = Some((b.lo().get(dir) + at_rel, strength));
            }
        }
    }
    best
}

/// Overall filling efficiency of a set of boxes for the given tags:
/// tagged cells / total box cells.
pub fn efficiency(tags: &TagMap, boxes: &[IndexBox]) -> f64 {
    let covered: Coord = boxes.iter().map(IndexBox::num_pts).sum();
    if covered == 0 {
        return 1.0;
    }
    let tagged: usize = boxes.iter().map(|b| tags.count_in(b)).sum();
    tagged as f64 / covered as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box_array::BoxArray;
    use crate::intvect::IntVect;

    fn dom(n: Coord) -> IndexBox {
        IndexBox::at_origin(IntVect::splat(n))
    }

    fn check_invariants(tags: &TagMap, boxes: &[IndexBox]) {
        // Disjoint.
        assert!(BoxArray::new(boxes.to_vec()).is_disjoint(), "{boxes:?}");
        // Every tag covered exactly once.
        let covered: usize = boxes.iter().map(|b| tags.count_in(b)).sum();
        assert_eq!(covered, tags.count());
        // Inside the domain.
        for b in boxes {
            assert!(tags.domain().contains_box(b));
        }
    }

    #[test]
    fn empty_tags_produce_no_boxes() {
        let tags = TagMap::new(dom(16));
        assert!(cluster(&tags, ClusterParams::default()).is_empty());
    }

    #[test]
    fn single_cluster_single_box() {
        let mut tags = TagMap::new(dom(16));
        tags.tag_region(&IndexBox::new(IntVect::new(3, 4), IntVect::new(6, 9)));
        let boxes = cluster(&tags, ClusterParams::default());
        assert_eq!(boxes.len(), 1);
        assert_eq!(
            boxes[0],
            IndexBox::new(IntVect::new(3, 4), IntVect::new(6, 9))
        );
        check_invariants(&tags, &boxes);
        assert_eq!(efficiency(&tags, &boxes), 1.0);
    }

    #[test]
    fn two_separated_clusters_split_at_hole() {
        let mut tags = TagMap::new(dom(32));
        tags.tag_region(&IndexBox::new(IntVect::new(2, 2), IntVect::new(5, 5)));
        tags.tag_region(&IndexBox::new(IntVect::new(20, 20), IntVect::new(25, 25)));
        let boxes = cluster(&tags, ClusterParams::default());
        assert_eq!(boxes.len(), 2);
        check_invariants(&tags, &boxes);
        assert_eq!(efficiency(&tags, &boxes), 1.0);
    }

    #[test]
    fn l_shape_splits_into_efficient_boxes() {
        let mut tags = TagMap::new(dom(32));
        // L shape: vertical bar + horizontal bar.
        tags.tag_region(&IndexBox::new(IntVect::new(0, 0), IntVect::new(3, 19)));
        tags.tag_region(&IndexBox::new(IntVect::new(0, 0), IntVect::new(19, 3)));
        let p = ClusterParams::default();
        let boxes = cluster(&tags, p);
        check_invariants(&tags, &boxes);
        assert!(boxes.len() >= 2);
        assert!(
            efficiency(&tags, &boxes) >= p.grid_eff,
            "eff {}",
            efficiency(&tags, &boxes)
        );
    }

    #[test]
    fn annulus_meets_efficiency_target() {
        // A ring of tags like the Sedov shock front.
        let n = 64;
        let mut tags = TagMap::new(dom(n));
        let c = n as f64 / 2.0;
        for p in dom(n).cells() {
            let dx = p.x as f64 + 0.5 - c;
            let dy = p.y as f64 + 0.5 - c;
            let r = (dx * dx + dy * dy).sqrt();
            if (r - 20.0).abs() < 2.5 {
                tags.set(p, true);
            }
        }
        let p = ClusterParams::default();
        let boxes = cluster(&tags, p);
        check_invariants(&tags, &boxes);
        assert!(
            efficiency(&tags, &boxes) >= p.grid_eff,
            "eff {} with {} boxes",
            efficiency(&tags, &boxes),
            boxes.len()
        );
        // A thin ring cannot be one efficient rectangle.
        assert!(boxes.len() >= 4);
    }

    #[test]
    fn min_width_is_respected() {
        let mut tags = TagMap::new(dom(64));
        for p in dom(64).cells() {
            if (p.x + p.y) % 9 == 0 {
                tags.set(p, true);
            }
        }
        let p = ClusterParams {
            grid_eff: 0.95,
            min_width: 4,
        };
        let boxes = cluster(&tags, p);
        check_invariants(&tags, &boxes);
        // Boxes shrink to tag bounds, so widths below min_width can appear
        // only via shrinking, never via splitting; the pre-shrink pieces are
        // all >= min_width, so no box can be wider than the root. Check we
        // still terminated with full coverage (the real invariant).
        assert!(!boxes.is_empty());
    }

    #[test]
    fn full_domain_tags_return_domain() {
        let mut tags = TagMap::new(dom(16));
        tags.tag_region(&dom(16));
        let boxes = cluster(&tags, ClusterParams::default());
        assert_eq!(boxes, vec![dom(16)]);
    }

    #[test]
    fn diagonal_line_terminates_and_covers() {
        let mut tags = TagMap::new(dom(64));
        for i in 0..64 {
            tags.set(IntVect::new(i, i), true);
        }
        let p = ClusterParams::default();
        let boxes = cluster(&tags, p);
        check_invariants(&tags, &boxes);
        // Diagonal features force many small boxes.
        assert!(boxes.len() >= 8, "got {} boxes", boxes.len());
    }

    #[test]
    #[should_panic(expected = "grid_eff")]
    fn invalid_grid_eff_panics() {
        let tags = TagMap::new(dom(4));
        cluster(
            &tags,
            ClusterParams {
                grid_eff: 0.0,
                min_width: 1,
            },
        );
    }
}
