//! The Table III parameter campaign.
//!
//! The paper performed 47 Summit runs sweeping `amr.n_cell`,
//! `amr.max_level`, `amr.plot_int`, `castro.cfl`, and the task count.
//! This module defines the equivalent 47-run campaign (hydro engine at
//! small scales, oracle at paper scales) and executes it in parallel.

use crate::config::{CastroSedovConfig, Engine};
use crate::run::{run_simulation, run_simulation_attached, RunResult};
use amr_mesh::GridParams;
use hydro::TimestepControl;
use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Summary of one campaign run (serializable for the figure benches).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Run label.
    pub name: String,
    /// Level-0 cells per direction.
    pub n_cell: i64,
    /// `amr.max_level`.
    pub max_level: usize,
    /// `amr.plot_int`.
    pub plot_int: u64,
    /// `castro.cfl`.
    pub cfl: f64,
    /// Task count.
    pub nprocs: usize,
    /// Engine used.
    pub oracle: bool,
    /// I/O backend the run wrote through (`fpp`, `agg:<r>`, `deferred:<w>`).
    pub backend: String,
    /// Compression codec applied to plot data (`identity`, `rle:<r>`,
    /// `quant:<b>`).
    pub codec: String,
    /// Eq. (1)/(2) cumulative series.
    pub series: Vec<(f64, f64)>,
    /// Total logical bytes the workload produced (backend- and
    /// codec-invariant; the tracker's view).
    pub total_bytes: u64,
    /// Logical payload bytes through the backend plus checkpoint state
    /// (equals `physical_bytes - overhead_bytes` under the identity
    /// codec).
    pub logical_bytes: u64,
    /// Physical bytes shipped to storage (what compression reduces).
    pub physical_bytes: u64,
    /// Declared bookkeeping bytes inside `physical_bytes` (aggregation
    /// index tables, compression sidecars).
    pub overhead_bytes: u64,
    /// Logical output records in the tracker (backend-invariant).
    pub total_files: u64,
    /// Physical files the backend created (what aggregation reduces).
    pub physical_files: u64,
    /// Simulated wall-clock seconds (compute + I/O; 0 without a storage
    /// model).
    pub wall_time: f64,
    /// Modeled codec CPU seconds inside `wall_time`.
    pub codec_seconds: f64,
    /// True when the run restart-read its last dump back (the
    /// read-after-write campaign axis).
    pub restart: bool,
    /// Logical bytes restart-read back (0 for write-only runs;
    /// backend- and codec-invariant).
    pub read_bytes: u64,
    /// Physical bytes fetched from storage during the restart read
    /// (what compression and aggregation shrink).
    pub physical_read_bytes: u64,
    /// Simulated seconds of the restart-read phase (inside `wall_time`).
    pub read_wall: f64,
    /// Selective analysis-read pattern of the run (`none` without one;
    /// otherwise the `ReadSelection` spelling: `level:1`, `field:...`,
    /// `box:...`, `full`).
    pub read_pattern: String,
    /// True when the analysis read was served from the reorganized
    /// (read-optimized) layout instead of the raw written one.
    pub reorganized: bool,
    /// Logical bytes the selective analysis read delivered (layout- and
    /// codec-invariant: the matched chunks' logical volume).
    pub selective_read_bytes: u64,
    /// Physical bytes the selective analysis read fetched — the column
    /// the raw-vs-reorganized comparison prices.
    pub selective_physical_read_bytes: u64,
    /// Simulated seconds of the selective analysis read (inside
    /// `wall_time`; excludes the reorganization pass).
    pub selective_read_wall: f64,
    /// Simulated seconds of the reorganization pass itself (0 for raw
    /// runs) — what selective-read savings must amortize.
    pub reorg_wall: f64,
    /// Canonical spelling of the scenario the run executed (`write`,
    /// `write;restart`, `write;check@4;fail@10;restart`, ...).
    pub scenario: String,
    /// Restart reads performed (mid-run recoveries + trailing reads).
    pub restarts: u32,
    /// Physical bytes of checkpoint dumps inside `physical_bytes` (the
    /// checkpoint plane is priced through the same backend/codec stack
    /// but reported separately from plot totals).
    pub check_bytes: u64,
    /// Physical files of checkpoint dumps inside `physical_files`.
    pub check_files: u64,
    /// Simulated seconds of checkpoint bursts (inside `wall_time`).
    pub check_wall: f64,
    /// Simulated seconds of compute phases (inside `wall_time`; includes
    /// compute re-paid after mid-run restarts).
    pub compute_wall: f64,
    /// Simulated seconds of plot-dump bursts on the application clock.
    pub plot_wall: f64,
    /// Simulated seconds the closing flush barrier waited on drains.
    pub drain_wall: f64,
    /// Tenant index on the shared fabric (0 for solo runs; defaulted so
    /// pre-tenancy summary blobs still deserialize).
    #[serde(default)]
    pub tenant: usize,
    /// Tenants sharing the fabric during this run (1 for solo runs).
    #[serde(default)]
    pub tenants: usize,
    /// Wall the same workload would have taken alone on the same
    /// storage (equals `wall_time` for solo runs; 0 in pre-tenancy
    /// blobs).
    #[serde(default)]
    pub solo_wall: f64,
    /// `wall_time / solo_wall` — the interference slowdown (1.0 solo).
    #[serde(default)]
    pub slowdown: f64,
    /// Simulated seconds lost to other tenants' traffic (fair share
    /// below solo rate).
    #[serde(default)]
    pub contention_stall: f64,
    /// Simulated seconds lost to this tenant's own QoS cap (rate below
    /// fair share).
    #[serde(default)]
    pub throttle_stall: f64,
    /// Simulated seconds bursts waited for shared burst-buffer space.
    #[serde(default)]
    pub staging_wait: f64,
    /// Bytes shipped over the modeled interconnect instead of storage
    /// (in-transit streaming backends only; defaulted so pre-streaming
    /// summary blobs still deserialize).
    #[serde(default)]
    pub net_bytes: u64,
    /// Link-transfer seconds for `net_bytes` (inside
    /// `plot_wall`/`check_wall`).
    #[serde(default)]
    pub net_wall: f64,
    /// Producer seconds stalled on consumer-window back-pressure
    /// (disjoint from `net_wall`; the streaming twin of `staging_wait`).
    #[serde(default)]
    pub window_stall: f64,
}

impl RunSummary {
    fn from_result(r: &RunResult) -> Self {
        let xy = r.xy_series();
        // The read-plane columns derive from the *effective* scenario,
        // so scenario-first configs and legacy boolean configs report
        // identically.
        let scenario = r.config.effective_scenario();
        let analyze = scenario.ops.iter().find_map(|op| match op {
            io_engine::ScenarioOp::Analyze { sel, reorganize }
            | io_engine::ScenarioOp::AnalyzeEvery {
                sel, reorganize, ..
            } => Some((sel.clone(), *reorganize)),
            _ => None,
        });
        Self {
            name: r.config.name.clone(),
            n_cell: r.config.n_cell,
            max_level: r.config.max_level,
            plot_int: r.config.plot_int,
            cfl: r.config.cfl(),
            nprocs: r.config.nprocs,
            oracle: r.config.engine == Engine::Oracle,
            backend: r.config.backend.name(),
            codec: r.config.codec.name(),
            series: xy.points.iter().map(|p| (p.x, p.y)).collect(),
            total_bytes: xy.final_bytes() as u64,
            logical_bytes: r.logical_bytes,
            physical_bytes: r.physical_bytes,
            overhead_bytes: r.overhead_bytes,
            total_files: r.tracker.total_files(),
            physical_files: r.files_written,
            wall_time: r.wall_time,
            codec_seconds: r.codec_seconds,
            restart: r.restarts > 0,
            read_bytes: r.read_bytes,
            physical_read_bytes: r.physical_read_bytes,
            read_wall: r.read_wall,
            read_pattern: analyze
                .as_ref()
                .map_or_else(|| "none".to_string(), |(sel, _)| sel.name()),
            // Reorganization only runs as part of an analysis read; a
            // config with the flag set but no pattern rewrote nothing.
            reorganized: analyze.as_ref().is_some_and(|(_, reorg)| *reorg),
            selective_read_bytes: r.selective_read_bytes,
            selective_physical_read_bytes: r.selective_physical_read_bytes,
            selective_read_wall: r.selective_read_wall,
            reorg_wall: r.reorg_wall,
            scenario: r.scenario.clone(),
            restarts: r.restarts,
            check_bytes: r.check_bytes,
            check_files: r.check_files,
            check_wall: r.check_wall,
            compute_wall: r.compute_wall,
            plot_wall: r.plot_wall,
            drain_wall: r.drain_wall,
            // Solo tenancy defaults; `run_campaign_fabric` overlays the
            // shared-fabric columns after the tenants join.
            tenant: 0,
            tenants: 1,
            solo_wall: r.wall_time,
            slowdown: 1.0,
            contention_stall: 0.0,
            throttle_stall: 0.0,
            staging_wait: 0.0,
            net_bytes: r.net_bytes,
            net_wall: r.net_wall,
            window_stall: r.window_stall,
        }
    }

    /// Wall-clock seconds per level-0 cell — the per-cell cost metric the
    /// backend × codec sweeps report.
    pub fn wall_per_cell(&self) -> f64 {
        self.wall_time / (self.n_cell as f64 * self.n_cell as f64)
    }

    /// Achieved compression ratio on payload bytes (logical / physical
    /// net of declared bookkeeping; exactly 1.0 for identity, whatever
    /// the backend's index overhead).
    pub fn compression_ratio(&self) -> f64 {
        let payload = self.physical_bytes - self.overhead_bytes;
        if payload == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / payload as f64
        }
    }
}

/// Builds the 47-run campaign of Table III.
///
/// Scales and ranks follow the paper's ladder (32^2 on 1 task up to
/// 8192^2 on the equivalent of 64 nodes); the paper's two largest
/// configurations (17 G cells) are represented by the 8192^2 oracle runs,
/// as documented in DESIGN.md.
pub fn table3_campaign() -> Vec<CastroSedovConfig> {
    let mut runs = Vec::new();
    let grid = GridParams {
        ref_ratio: 2,
        blocking_factor: 8,
        max_grid_size: 256,
        n_error_buf: 2,
        grid_eff: 0.7,
    };
    // (n_cell, nprocs, engine) ladder.
    let ladder: &[(i64, usize, Engine)] = &[
        (32, 1, Engine::Hydro),
        (64, 2, Engine::Hydro),
        (128, 4, Engine::Hydro),
        (256, 8, Engine::Hydro),
        (512, 32, Engine::Oracle),
        (1024, 64, Engine::Oracle),
        (2048, 128, Engine::Oracle),
        (4096, 512, Engine::Oracle),
        (8192, 1024, Engine::Oracle),
    ];
    let mut push = |n: i64, p: usize, e: Engine, maxl: usize, cfl: f64, plot_int: u64| {
        let max_grid = grid.max_grid_size.min(n.max(grid.blocking_factor));
        // The hydro engine needs Castro's protective ramp but a faster one
        // than init_shrink=0.01 so the blast ignites within the campaign's
        // step budget; the oracle starts CFL-limited (see cases.rs).
        let ctrl = match e {
            Engine::Hydro => TimestepControl {
                cfl,
                init_shrink: 0.5,
                change_max: 1.4,
            },
            Engine::Oracle => TimestepControl {
                cfl,
                init_shrink: 1.0,
                change_max: 1.1,
            },
        };
        runs.push(CastroSedovConfig {
            name: format!("n{n}_p{p}_l{maxl}_cfl{cfl}_pi{plot_int}"),
            engine: e,
            n_cell: n,
            max_level: maxl,
            max_step: 120,
            stop_time: 0.5,
            plot_int,
            regrid_int: 2,
            grid: GridParams {
                max_grid_size: max_grid,
                ..grid
            },
            nprocs: p,
            ctrl,
            account_only: true,
            ..Default::default()
        });
    };
    // Base sweep: every rung at the Listing 2 defaults.
    for &(n, p, e) in ladder {
        push(n, p, e, 2, 0.5, 2);
    }
    // Level sweep on the middle rungs (the Fig. 6 driver).
    for &(n, p, e) in &ladder[2..7] {
        for maxl in [3, 4] {
            push(n, p, e, maxl, 0.5, 2);
        }
    }
    // CFL sweep (Table III range 0.3-0.6; the smallest rung keeps only
    // the extremes, which is what lands the campaign at 47 runs).
    for &(n, p, e) in &ladder[2..7] {
        for cfl in [0.3, 0.4, 0.6] {
            if n == 128 && cfl == 0.4 {
                continue;
            }
            push(n, p, e, 2, cfl, 2);
        }
    }
    // Output-frequency sweep (plot_int 1-20).
    for &(n, p, e) in &ladder[3..7] {
        for pi in [1, 5, 20] {
            push(n, p, e, 2, 0.5, pi);
        }
    }
    // The paper's heavy pivot combinations (case4/case27 relatives).
    push(512, 32, Engine::Oracle, 4, 0.4, 1);
    push(1024, 64, Engine::Oracle, 3, 0.5, 10);
    debug_assert_eq!(runs.len(), 47, "Table III count");
    runs
}

/// Expands a set of configurations across a backend axis: every `(run,
/// backend)` pair becomes one scenario, with the backend name suffixed to
/// the run label. This is the scenario-matrix product the backend sweeps
/// (example `backend_sweep`, bench `backend_compare`) build on.
///
/// *Legacy shim:* compiles through [`crate::spec::ExperimentSpec`] —
/// prefer declaring the axis on a spec directly (you also get excludes,
/// zips, collision-checked labels, and store resume). Property-tested
/// byte-identical to the original hand-written enumeration.
pub fn backend_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
) -> Vec<CastroSedovConfig> {
    crate::spec::ExperimentSpec::over("backend_sweep", configs)
        .backends(backends)
        .compile_configs()
        .expect("backend_sweep: base run labels collide")
}

/// Expands a set of configurations across the backend × codec plane:
/// every `(run, backend, codec)` triple becomes one scenario. This is the
/// compression-axis generalization of [`backend_sweep`] — the identity
/// codec column reproduces `backend_sweep` exactly, non-identity columns
/// add the data-reduction lever (AMRIC-style) on top of each layout.
///
/// *Legacy shim:* compiles through [`crate::spec::ExperimentSpec`];
/// prefer declaring the axes on a spec directly.
pub fn backend_codec_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
) -> Vec<CastroSedovConfig> {
    crate::spec::ExperimentSpec::over("backend_codec_sweep", configs)
        .backends(backends)
        .codecs(codecs)
        .compile_configs()
        .expect("backend_codec_sweep: base run labels collide")
}

/// Expands a set of configurations across the backend × codec ×
/// {write, restart} cube: every [`backend_codec_sweep`] scenario appears
/// once write-only and once with a read-after-write restart phase
/// (suffix `_restart`). This is the read-plane generalization of the
/// sweep — the write half reproduces `backend_codec_sweep` exactly, the
/// restart half additionally prices recovery reads.
///
/// *Legacy shim:* compiles through [`crate::spec::ExperimentSpec`]'s
/// `mode` axis; prefer declaring the axes on a spec directly.
pub fn restart_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
) -> Vec<CastroSedovConfig> {
    crate::spec::ExperimentSpec::over("restart_sweep", configs)
        .backends(backends)
        .codecs(codecs)
        .modes(&[crate::spec::RunMode::Write, crate::spec::RunMode::Restart])
        .compile_configs()
        .expect("restart_sweep: base run labels collide")
}

/// Expands a set of configurations across the backend × codec ×
/// {raw, reorganized} × read-pattern cube: every [`backend_codec_sweep`]
/// scenario appears once per read pattern on the raw written layout
/// (suffix `_raw`) and once served from the reorganized layout (suffix
/// `_reorg`). This is the analysis-read generalization of the sweep
/// family — it makes "how much does online layout reorganization buy
/// each read pattern" (Wan et al.) a priced campaign question: the
/// summaries carry selective-read physical bytes and wall for both
/// layouts, plus the reorganization cost the savings must amortize.
///
/// Pattern spellings flatten to name-safe tokens (`level:1` ->
/// `level1`, `box:0-1,2-5` -> `box0to1_2to5`); lossy collisions are
/// index-disambiguated (`io_engine::grammar::disambiguate_tags`).
///
/// *Legacy shim:* compiles through [`crate::spec::ExperimentSpec`]'s
/// `pattern` and `layout` axes; prefer declaring the axes on a spec
/// directly.
pub fn analysis_sweep(
    configs: &[CastroSedovConfig],
    backends: &[BackendSpec],
    codecs: &[CodecSpec],
    patterns: &[ReadSelection],
) -> Vec<CastroSedovConfig> {
    crate::spec::ExperimentSpec::over("analysis_sweep", configs)
        .backends(backends)
        .codecs(codecs)
        .patterns(patterns)
        .layouts(&[crate::spec::Layout::Raw, crate::spec::Layout::Reorg])
        .compile_configs()
        .expect("analysis_sweep: base run labels collide")
}

/// Expands a set of configurations across a scenario axis: every
/// `(run, scenario)` pair becomes one configuration with the scenario's
/// spelling flattened into the run label. This is the scenario-plane
/// generalization of the sweep family — one base run crossed with, say,
/// `write`, `write;check@4;fail@10;restart`, and
/// `write;analyze_every:2:level:1` prices what failures, checkpoint
/// cadence, and in-run analysis each cost on the same workload.
///
/// Scenario spellings flatten to name-safe tokens (`write;check@4` ->
/// `write_check4`); lossy collisions are index-disambiguated.
///
/// *Legacy shim:* compiles through [`crate::spec::ExperimentSpec`]'s
/// `scenario` axis; prefer declaring the axis on a spec directly.
pub fn scenario_sweep(
    configs: &[CastroSedovConfig],
    scenarios: &[Scenario],
) -> Vec<CastroSedovConfig> {
    crate::spec::ExperimentSpec::over("scenario_sweep", configs)
        .scenarios(scenarios)
        .compile_configs()
        .expect("scenario_sweep: base run labels collide")
}

/// Runs a set of configurations in parallel (the rayon stand-in fans
/// the work across threads), returning summaries in the input order.
/// Deterministic: identical to [`run_campaign_serial`] on the same
/// configs, pinned by a test.
pub fn run_campaign(configs: &[CastroSedovConfig]) -> Vec<RunSummary> {
    configs
        .par_iter()
        .map(|cfg| RunSummary::from_result(&run_simulation(cfg, None, None)))
        .collect()
}

/// Sequential reference implementation of [`run_campaign`] (debugging,
/// and the determinism oracle for the parallel path).
pub fn run_campaign_serial(configs: &[CastroSedovConfig]) -> Vec<RunSummary> {
    configs
        .iter()
        .map(|cfg| RunSummary::from_result(&run_simulation(cfg, None, None)))
        .collect()
}

/// Like [`run_campaign`] but timing every run against `storage`, so
/// summaries carry comparable wall-clock times (the backend axis's
/// dependent variable). Parallel over configs with deterministic,
/// input-ordered results.
pub fn run_campaign_timed(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
) -> Vec<RunSummary> {
    configs
        .par_iter()
        .map(|cfg| RunSummary::from_result(&run_simulation(cfg, None, Some(storage))))
        .collect()
}

/// Runs a set of configurations *concurrently* against one shared
/// storage fabric — the machine-room campaign. Every config becomes a
/// tenant on the fabric (registration order = input order), all runs
/// overlap in simulated time, and the returned summaries carry the
/// tenancy columns: shared wall (`wall_time`), the exact solo wall the
/// same workload would have taken alone (`solo_wall`), their ratio
/// (`slowdown`), and the stall attribution split between neighbour
/// traffic (`contention_stall`) and the tenant's own QoS cap
/// (`throttle_stall`).
///
/// `qos` assigns per-tenant policies positionally; missing entries get
/// the fair default. `staging_bytes` bounds a shared burst-buffer pool
/// for deferred-backend tenants (`None` = unbounded).
///
/// Tenants run on `std::thread::scope` natives rather than rayon
/// tasks: a tenant blocks inside the shared event engine while other
/// tenants make progress, and parking a rayon worker on that condvar
/// could starve the pool that is supposed to run the peers.
pub fn run_campaign_fabric(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
    staging_bytes: Option<u64>,
    qos: &[iosim::QosPolicy],
) -> Vec<RunSummary> {
    run_campaign_fabric_linked(configs, storage, staging_bytes, qos, None)
}

/// [`run_campaign_fabric`] with a shared interconnect: streamed
/// (in-transit) tenants split `link`'s bandwidth evenly — the network
/// twin of stored tenants sharing the servers — while stored tenants
/// never touch it. Without a link, streamed tenants keep the solo link
/// their own backend spec configured.
pub fn run_campaign_fabric_linked(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
    staging_bytes: Option<u64>,
    qos: &[iosim::QosPolicy],
    link: Option<mpi_sim::NetworkModel>,
) -> Vec<RunSummary> {
    if configs.is_empty() {
        return Vec::new();
    }
    let mut fabric = iosim::Fabric::new(*storage);
    if let Some(bytes) = staging_bytes {
        fabric = fabric.with_staging(bytes);
    }
    if let Some(net) = link {
        fabric = fabric.with_link(net);
        fabric.set_stream_tenants(configs.iter().filter(|c| c.backend.in_transit()).count());
    }
    // Register every tenant before the first burst (the fabric's
    // conservative clock needs the full quorum up front).
    let handles: Vec<iosim::FabricHandle> = configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| fabric.tenant_with(&cfg.name, qos.get(i).copied().unwrap_or_default()))
        .collect();
    let mut summaries: Vec<RunSummary> = std::thread::scope(|s| {
        let joins: Vec<_> = configs
            .iter()
            .zip(handles)
            .map(|(cfg, handle)| {
                s.spawn(move || {
                    RunSummary::from_result(&run_simulation_attached(
                        cfg,
                        None,
                        iosim::StorageAttach::Fabric(handle),
                    ))
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("fabric tenant run panicked"))
            .collect()
    });
    for (summary, stats) in summaries.iter_mut().zip(fabric.tenant_stats()) {
        summary.tenant = stats.tenant;
        summary.tenants = configs.len();
        summary.solo_wall = stats.solo_wall;
        summary.slowdown = stats.slowdown();
        summary.contention_stall = stats.contention_stall;
        summary.throttle_stall = stats.throttle_stall;
        summary.staging_wait = stats.staging_wait;
    }
    summaries
}

/// [`run_campaign_fabric`] with a memoized solo shadow: the fleet still
/// runs one native thread per tenant on one shared fabric, but the solo
/// baseline is priced once per `solo_key` across a campaign. On a memo
/// hit every tenant's scheduler gets [`iosim::SoloPricing::Known`] and
/// skips its shadow replay; on a miss the replay runs cold and the
/// first tenant's solo wall fills the memo. The shadow is a passive
/// observer (a private model copy), so pricing mode never perturbs the
/// shared simulation — `known_solo_pricing_matches_the_cold_shadow_bit_for_bit`
/// in `iosim::schedule` pins that.
///
/// This is also the *semantic anchor* for the solo columns: one
/// configuration has one solo baseline, taken from the first cell that
/// prices it. Re-deriving it per tenancy rung reproduces the same
/// number only to within an ulp (the shared clock's magnitude leaks
/// into the float rounding of the replayed compute deltas), so the
/// spec executors — serial and parallel alike — route every tenancy
/// cell through a memo to keep their outputs bit-identical.
pub fn run_campaign_fabric_memoized(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
    memo: &iosim::SoloMemo,
    solo_key: &str,
) -> Vec<RunSummary> {
    if configs.is_empty() {
        return Vec::new();
    }
    let fabric = iosim::Fabric::new(*storage);
    let mut handles: Vec<iosim::FabricHandle> =
        configs.iter().map(|cfg| fabric.tenant(&cfg.name)).collect();
    let hit = memo.get(solo_key);
    if let Some(wall) = hit {
        for handle in handles.iter_mut() {
            handle.set_solo_pricing(iosim::SoloPricing::Known(wall));
        }
    }
    let mut summaries: Vec<RunSummary> = std::thread::scope(|s| {
        let joins: Vec<_> = configs
            .iter()
            .zip(handles)
            .map(|(cfg, handle)| {
                s.spawn(move || {
                    RunSummary::from_result(&run_simulation_attached(
                        cfg,
                        None,
                        iosim::StorageAttach::Fabric(handle),
                    ))
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("fabric tenant run panicked"))
            .collect()
    });
    let stats = fabric.tenant_stats();
    if hit.is_none() {
        memo.fill(solo_key, stats[0].solo_wall);
    }
    for (summary, stats) in summaries.iter_mut().zip(stats) {
        summary.tenant = stats.tenant;
        summary.tenants = configs.len();
        summary.solo_wall = stats.solo_wall;
        summary.slowdown = stats.slowdown();
        summary.contention_stall = stats.contention_stall;
        summary.throttle_stall = stats.throttle_stall;
        summary.staging_wait = stats.staging_wait;
    }
    summaries
}

/// [`run_campaign_fabric`] specialized to *identical clones* — the
/// throughput-scaling cells, N copies of one configuration differing
/// only in display name. Instead of N application runs on N native
/// threads, the single real run drives a clone group
/// ([`iosim::Fabric::tenant_clones`]): the engine synthesizes the
/// mirrors' traffic, prices contention over the full N-tenant job set,
/// and the clones' summaries are composed from the real run plus each
/// mirror slot's stats. Clone symmetry makes this bit-identical to the
/// threaded fleet (request paths and noise draws are independent of the
/// display name), which the spec-parallel property tests pin against
/// [`run_campaign_fabric`].
///
/// `memo` optionally memoizes the solo shadow replay under `solo_key`
/// (the cell's label/tenancy-independent config key): a hit hands the
/// scheduler the known wall ([`iosim::SoloPricing::Known`]) and skips
/// the replay; a miss runs the exact replay and fills the memo.
///
/// # Panics
/// Panics if `configs` are not identical modulo `name` — the caller
/// (the spec executor) constructs them as clones by definition.
pub fn run_campaign_fabric_cloned(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
    memo: Option<(&iosim::SoloMemo, &str)>,
) -> Vec<RunSummary> {
    if configs.is_empty() {
        return Vec::new();
    }
    assert!(
        configs.iter().all(|c| {
            let mut normalized = c.clone();
            normalized.name.clone_from(&configs[0].name);
            normalized == configs[0]
        }),
        "run_campaign_fabric_cloned: configs must be identical modulo name"
    );
    let fabric = iosim::Fabric::new(*storage);
    let names: Vec<&str> = configs.iter().map(|c| c.name.as_str()).collect();
    let mut group = fabric.tenant_clones(&names);
    let mut memo_hit = false;
    if let Some((memo, solo_key)) = memo {
        if let Some(wall) = memo.get(solo_key) {
            group.set_solo_pricing(iosim::SoloPricing::Known(wall));
            memo_hit = true;
        }
    }
    // One real application run; the mirror slots' traffic and stats are
    // synthesized inside the engine. No threads: with every mirror seat
    // permanently parked, the lone real tenant always holds the quorum
    // and the engine advances inline.
    let real = RunSummary::from_result(&run_simulation_attached(
        &configs[0],
        None,
        iosim::StorageAttach::Fabric(group),
    ));
    let stats = fabric.tenant_stats();
    if !memo_hit {
        if let Some((memo, solo_key)) = memo {
            memo.fill(solo_key, stats[0].solo_wall);
        }
    }
    configs
        .iter()
        .zip(stats)
        .map(|(cfg, st)| {
            let mut summary = real.clone();
            summary.name.clone_from(&cfg.name);
            summary.tenant = st.tenant;
            summary.tenants = configs.len();
            summary.solo_wall = st.solo_wall;
            summary.slowdown = st.slowdown();
            summary.contention_stall = st.contention_stall;
            summary.throttle_stall = st.throttle_stall;
            summary.staging_wait = st.staging_wait;
            summary
        })
        .collect()
}

/// Sequential reference implementation of [`run_campaign_timed`].
pub fn run_campaign_timed_serial(
    configs: &[CastroSedovConfig],
    storage: &iosim::StorageModel,
) -> Vec<RunSummary> {
    configs
        .iter()
        .map(|cfg| RunSummary::from_result(&run_simulation(cfg, None, Some(storage))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_has_exactly_47_runs() {
        assert_eq!(table3_campaign().len(), 47);
    }

    #[test]
    fn campaign_covers_table3_ranges() {
        let runs = table3_campaign();
        let ncells: Vec<i64> = runs.iter().map(|r| r.n_cell).collect();
        assert!(ncells.contains(&32));
        assert!(ncells.contains(&8192));
        let cfls: Vec<f64> = runs.iter().map(|r| r.ctrl.cfl).collect();
        assert!(cfls.contains(&0.3));
        assert!(cfls.contains(&0.6));
        let pis: Vec<u64> = runs.iter().map(|r| r.plot_int).collect();
        assert!(pis.contains(&1));
        assert!(pis.contains(&20));
        let nprocs: Vec<usize> = runs.iter().map(|r| r.nprocs).collect();
        assert!(nprocs.contains(&1));
        assert!(nprocs.contains(&1024));
        let levels: Vec<usize> = runs.iter().map(|r| r.max_level).collect();
        assert!(levels.contains(&2));
        assert!(levels.contains(&4));
    }

    #[test]
    fn run_names_are_unique() {
        let runs = table3_campaign();
        let mut names: Vec<String> = runs.iter().map(|r| r.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), runs.len());
    }

    #[test]
    fn backend_sweep_is_a_scenario_matrix() {
        let base = vec![
            CastroSedovConfig {
                name: "a".into(),
                ..Default::default()
            },
            CastroSedovConfig {
                name: "b".into(),
                ..Default::default()
            },
        ];
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(4),
            BackendSpec::Deferred(1),
        ];
        let matrix = backend_sweep(&base, &backends);
        assert_eq!(matrix.len(), 6);
        let mut names: Vec<String> = matrix.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6, "scenario names stay unique");
        assert!(matrix
            .iter()
            .any(|c| c.backend == BackendSpec::Aggregated(4)));
        assert!(matrix.iter().any(|c| c.name == "a_agg4"));
    }

    #[test]
    fn streamed_tenant_attributes_stall_to_the_window_not_contention() {
        // A lone streamed tenant on a linked fabric: the slow consumer
        // (10 MB/s behind the shared 100 MB/s link) stalls the producer,
        // and the stall lands in `window_stall` — never in the fabric's
        // `contention_stall`, which belongs to server-plane neighbours.
        let cfg = CastroSedovConfig {
            name: "streamed".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 8,
            plot_int: 2,
            nprocs: 4,
            account_only: true,
            backend: BackendSpec::parse("streaming:100:1:10").unwrap(),
            ..Default::default()
        };
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let link = mpi_sim::NetworkModel::ideal(100e6);
        let summaries = run_campaign_fabric_linked(&[cfg], &storage, None, &[], Some(link));
        let s = &summaries[0];
        assert!(s.net_bytes > 0, "the run streamed");
        assert!(s.net_wall > 0.0);
        assert!(s.window_stall > 0.0, "slow consumer must back-pressure");
        assert_eq!(s.contention_stall, 0.0, "no server-plane neighbours");
        assert_eq!(s.physical_bytes, 0, "nothing reached the servers");
    }

    #[test]
    fn backend_axis_preserves_byte_totals_and_orders_wall_clock() {
        let base = CastroSedovConfig {
            name: "axis".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 8,
            plot_int: 2,
            nprocs: 4,
            account_only: true,
            compute_ns_per_cell: 40_000.0,
            ..Default::default()
        };
        let matrix = backend_sweep(
            &[base],
            &[
                BackendSpec::FilePerProcess,
                BackendSpec::Aggregated(4),
                BackendSpec::Deferred(1),
            ],
        );
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summaries = run_campaign_timed(&matrix, &storage);
        // The workload's byte accounting is backend-invariant.
        assert_eq!(summaries[0].total_bytes, summaries[1].total_bytes);
        assert_eq!(summaries[0].total_bytes, summaries[2].total_bytes);
        // Deferred overlaps drains with compute: strictly less wall-clock
        // than the synchronous N-to-N run of the same byte volume.
        let fpp = summaries[0].wall_time;
        let deferred = summaries[2].wall_time;
        assert!(deferred < fpp, "deferred {deferred} must beat fpp {fpp}");
    }

    #[test]
    fn backend_codec_sweep_is_the_full_matrix() {
        let base = vec![CastroSedovConfig {
            name: "m".into(),
            ..Default::default()
        }];
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(4),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(8),
        ];
        let matrix = backend_codec_sweep(&base, &backends, &codecs);
        assert_eq!(matrix.len(), 9);
        let mut names: Vec<String> = matrix.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9, "scenario names stay unique");
        // Fractional codec parameters stay distinguishable in names.
        let tricky = backend_codec_sweep(
            &base,
            &[BackendSpec::FilePerProcess],
            &[CodecSpec::Rle(2.1), CodecSpec::Rle(21.0)],
        );
        assert_ne!(tricky[0].name, tricky[1].name, "{:?}", tricky[0].name);
        assert!(matrix.iter().any(
            |c| c.backend == BackendSpec::Aggregated(4) && c.codec == CodecSpec::LossyQuant(8)
        ));
        // The identity column matches backend_sweep's spelling convention.
        assert!(matrix.iter().any(|c| c.name == "m_fpp_identity"));
    }

    #[test]
    fn codec_axis_reduces_physical_bytes_and_wall_clock() {
        // The acceptance slice: 3 backends x 3 codecs on the Sedov case,
        // reporting physical bytes, logical bytes, and wall-clock.
        let base = CastroSedovConfig {
            name: "sedov".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 8,
            plot_int: 2,
            nprocs: 4,
            account_only: true,
            compute_ns_per_cell: 40_000.0,
            ..Default::default()
        };
        let matrix = backend_codec_sweep(
            &[base],
            &[
                BackendSpec::FilePerProcess,
                BackendSpec::Aggregated(4),
                BackendSpec::Deferred(1),
            ],
            &[
                CodecSpec::Identity,
                CodecSpec::Rle(2.0),
                CodecSpec::LossyQuant(8),
            ],
        );
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summaries = run_campaign_timed(&matrix, &storage);
        assert_eq!(summaries.len(), 9);
        // Logical accounting is invariant across the whole matrix, and
        // physical payload bytes (net of declared bookkeeping) never
        // exceed logical bytes.
        for s in &summaries {
            assert_eq!(s.total_bytes, summaries[0].total_bytes, "{}", s.name);
            assert!(
                s.physical_bytes - s.overhead_bytes <= s.logical_bytes,
                "{}",
                s.name
            );
            assert!(s.wall_per_cell() > 0.0);
        }
        // LossyQuant strictly reduces physical bytes and wall-clock vs
        // identity on every backend.
        for backend in ["fpp", "agg:4", "deferred:1"] {
            let of = |codec: &str| {
                summaries
                    .iter()
                    .find(|s| s.backend == backend && s.codec == codec)
                    .unwrap_or_else(|| panic!("{backend}/{codec} present"))
            };
            let id = of("identity");
            let quant = of("quant:8");
            assert_eq!(
                id.physical_bytes - id.overhead_bytes,
                id.logical_bytes,
                "identity is 1:1 on payload bytes"
            );
            assert!(
                quant.physical_bytes < id.physical_bytes,
                "{backend}: quant {} must beat identity {}",
                quant.physical_bytes,
                id.physical_bytes
            );
            assert!(
                quant.wall_time < id.wall_time,
                "{backend}: quant {} s must beat identity {} s",
                quant.wall_time,
                id.wall_time
            );
            assert!(quant.codec_seconds > 0.0);
            assert!(quant.compression_ratio() > 3.0, "{backend}");
        }
    }

    #[test]
    fn restart_sweep_crosses_the_full_cube() {
        let base = vec![CastroSedovConfig {
            name: "m".into(),
            ..Default::default()
        }];
        let backends = [
            BackendSpec::FilePerProcess,
            BackendSpec::Aggregated(4),
            BackendSpec::Deferred(1),
        ];
        let codecs = [
            CodecSpec::Identity,
            CodecSpec::Rle(2.0),
            CodecSpec::LossyQuant(8),
        ];
        let matrix = restart_sweep(&base, &backends, &codecs);
        assert_eq!(matrix.len(), 18, "3 backends x 3 codecs x 2 modes");
        assert_eq!(matrix.iter().filter(|c| c.read_after_write).count(), 9);
        let mut names: Vec<String> = matrix.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18, "scenario names stay unique");
        assert!(matrix
            .iter()
            .any(|c| c.name == "m_agg4_quant8_restart" && c.read_after_write));
    }

    #[test]
    fn restart_axis_prices_recovery_reads() {
        let base = CastroSedovConfig {
            name: "rst".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 6,
            plot_int: 2,
            nprocs: 4,
            account_only: true,
            compute_ns_per_cell: 40_000.0,
            ..Default::default()
        };
        let matrix = restart_sweep(
            &[base],
            &[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)],
            &[CodecSpec::Identity, CodecSpec::LossyQuant(8)],
        );
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summaries = run_campaign_timed(&matrix, &storage);
        for s in &summaries {
            if s.restart {
                assert!(s.read_bytes > 0, "{}", s.name);
                assert!(s.read_wall > 0.0, "{}", s.name);
                assert!(s.physical_read_bytes > 0, "{}", s.name);
            } else {
                assert_eq!(s.read_bytes, 0, "{}", s.name);
                assert_eq!(s.read_wall, 0.0, "{}", s.name);
            }
        }
        // Logical read bytes are backend- and codec-invariant; physical
        // read bytes shrink under compression (restart reads less wire).
        let restarts: Vec<_> = summaries.iter().filter(|s| s.restart).collect();
        assert!(restarts
            .windows(2)
            .all(|w| w[0].read_bytes == w[1].read_bytes));
        let of = |backend: &str, codec: &str| {
            restarts
                .iter()
                .find(|s| s.backend == backend && s.codec == codec)
                .copied()
                .unwrap_or_else(|| panic!("{backend}/{codec}"))
        };
        for b in ["fpp", "agg:4"] {
            let id = of(b, "identity");
            let q = of(b, "quant:8");
            assert!(
                q.physical_read_bytes < id.physical_read_bytes,
                "{b}: compressed restart fetches less wire"
            );
            assert!(q.read_wall < id.read_wall, "{b}: and finishes faster");
            // Decode CPU lands in codec_seconds next to the encode cost.
            let q_write = summaries
                .iter()
                .find(|s| !s.restart && s.backend == b && s.codec == "quant:8")
                .unwrap();
            assert!(
                q.codec_seconds > q_write.codec_seconds,
                "{b}: restart adds decode CPU to codec_seconds"
            );
        }
    }

    #[test]
    fn analysis_sweep_crosses_patterns_and_layouts() {
        let base = vec![CastroSedovConfig {
            name: "m".into(),
            ..Default::default()
        }];
        let backends = [BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)];
        let codecs = [CodecSpec::Identity, CodecSpec::LossyQuant(8)];
        let patterns = [
            ReadSelection::Level(1),
            ReadSelection::parse("box:0-1,0-3").unwrap(),
        ];
        let matrix = analysis_sweep(&base, &backends, &codecs, &patterns);
        assert_eq!(matrix.len(), 2 * 2 * 2 * 2, "b x c x pattern x layout");
        let mut names: Vec<String> = matrix.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), matrix.len(), "scenario names stay unique");
        assert!(matrix
            .iter()
            .any(|c| c.name == "m_agg4_quant8_level1_reorg" && c.reorganize));
        assert!(matrix
            .iter()
            .any(|c| c.name == "m_fpp_identity_box0to1_0to3_raw"));
        assert!(matrix
            .iter()
            .all(|c| c.analysis_read.is_some() && !c.read_after_write));

        // Lossy tag flattening must not collapse distinct patterns into
        // one scenario name: colliding tags are index-disambiguated.
        let colliding = analysis_sweep(
            &base,
            &[BackendSpec::FilePerProcess],
            &[CodecSpec::Identity],
            &[
                ReadSelection::Field("a,b".into()),
                ReadSelection::Field("a.b".into()),
            ],
        );
        let mut names: Vec<String> = colliding.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), colliding.len(), "{names:?}");
    }

    #[test]
    fn reorganized_column_requires_an_analysis_read() {
        // A config with the reorganize flag but no analysis pattern
        // rewrites nothing; the summary must not claim it did.
        let cfg = CastroSedovConfig {
            name: "noop".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 4,
            plot_int: 2,
            nprocs: 2,
            account_only: true,
            reorganize: true,
            ..Default::default()
        };
        let s = &run_campaign(&[cfg])[0];
        assert!(!s.reorganized);
        assert_eq!(s.read_pattern, "none");
        assert_eq!(s.reorg_wall, 0.0);
    }

    #[test]
    fn analysis_axis_prices_reorganization_against_selective_reads() {
        // The acceptance slice at campaign level: on the aggregated
        // backend, a by-level analysis read of the reorganized layout
        // fetches strictly fewer physical bytes and strictly less wall
        // than the same selection on the raw layout — and the logical
        // volume delivered is layout-invariant.
        let base = CastroSedovConfig {
            name: "ana".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 6,
            plot_int: 2,
            nprocs: 4,
            account_only: true,
            compute_ns_per_cell: 40_000.0,
            ..Default::default()
        };
        let matrix = analysis_sweep(
            &[base],
            &[BackendSpec::Aggregated(2)],
            &[CodecSpec::Identity],
            &[ReadSelection::Level(1)],
        );
        // Bandwidth-bound storage (one server class): wall tracks bytes
        // moved + files opened. On wide stripes the raw layout's scatter
        // can buy parallelism back — the reorg module docs call out that
        // trade; here we pin the volume/open-count win.
        let storage = iosim::StorageModel {
            open_latency: 1e-3,
            ..iosim::StorageModel::ideal(1, 5e7)
        };
        let summaries = run_campaign_timed(&matrix, &storage);
        assert_eq!(summaries.len(), 2);
        let raw = summaries.iter().find(|s| !s.reorganized).unwrap();
        let opt = summaries.iter().find(|s| s.reorganized).unwrap();
        assert_eq!(raw.read_pattern, "level:1");
        assert!(raw.selective_read_bytes > 0);
        assert_eq!(raw.selective_read_bytes, opt.selective_read_bytes);
        assert!(
            opt.selective_physical_read_bytes < raw.selective_physical_read_bytes,
            "reorg {} must fetch less than raw {}",
            opt.selective_physical_read_bytes,
            raw.selective_physical_read_bytes
        );
        assert!(
            opt.selective_read_wall < raw.selective_read_wall,
            "reorg {} s must beat raw {} s",
            opt.selective_read_wall,
            raw.selective_read_wall
        );
        // The rewrite itself is priced, not free.
        assert!(opt.reorg_wall > 0.0);
        assert_eq!(raw.reorg_wall, 0.0);
    }

    #[test]
    fn scenario_sweep_crosses_configs_and_scenarios() {
        let base = vec![CastroSedovConfig {
            name: "m".into(),
            ..Default::default()
        }];
        let scenarios = [
            Scenario::write_only(),
            Scenario::parse("write;check@4;fail@10;restart").unwrap(),
            Scenario::in_run_analysis(2, ReadSelection::Level(1)),
        ];
        let matrix = scenario_sweep(&base, &scenarios);
        assert_eq!(matrix.len(), 3);
        let mut names: Vec<String> = matrix.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3, "scenario names stay unique");
        assert!(matrix.iter().all(|c| c.scenario.is_some()));
        assert!(matrix.iter().any(|c| c.name == "m_write"));
        assert!(matrix
            .iter()
            .any(|c| c.name == "m_write_check4_fail10_restart"));

        // Lossy tag flattening must not collapse distinct scenarios.
        let colliding = scenario_sweep(
            &base,
            &[
                Scenario::parse("write;analyze:field:a,b").unwrap(),
                Scenario::parse("write;analyze:field:a.b").unwrap(),
            ],
        );
        let mut names: Vec<String> = colliding.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), colliding.len(), "{names:?}");

        // Regression: a disambiguating rename must not collide with a
        // *third* scenario whose flattening already looks renamed
        // (field `xy_s1` flattens to exactly what `xy`'s rename
        // produces). The dedup iterates to a fixed point.
        let adversarial = scenario_sweep(
            &base,
            &[
                Scenario::parse("write;analyze:field:xy").unwrap(),
                Scenario::parse("write;analyze:field:x.y").unwrap(),
                Scenario::parse("write;analyze:field:xy_s1").unwrap(),
            ],
        );
        let mut names: Vec<String> = adversarial.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), adversarial.len(), "{names:?}");
    }

    #[test]
    fn scenario_axis_prices_failures_and_in_run_analysis() {
        // The tentpole acceptance at campaign level: one base workload
        // crossed with three scenario shapes, each summary carrying the
        // scenario spelling and its per-phase walls.
        let base = CastroSedovConfig {
            name: "sc".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 12,
            plot_int: 4,
            nprocs: 4,
            account_only: true,
            compute_ns_per_cell: 40_000.0,
            ..Default::default()
        };
        let matrix = scenario_sweep(
            &[base],
            &[
                Scenario::write_only(),
                Scenario::parse("write;check@4;fail@10;restart").unwrap(),
                Scenario::in_run_analysis(2, ReadSelection::Level(1)),
            ],
        );
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summaries = run_campaign_timed(&matrix, &storage);
        let clean = &summaries[0];
        let failed = &summaries[1];
        let insitu = &summaries[2];
        assert_eq!(clean.scenario, "write");
        assert_eq!(clean.restarts, 0);
        assert_eq!(failed.scenario, "write;check@4;fail@10;restart");
        // The failure re-pays compute and the recovery read, on top of
        // the checkpoint cadence's own write cost.
        assert_eq!(failed.restarts, 1);
        assert!(failed.check_bytes > 0);
        assert!(failed.check_wall > 0.0);
        assert!(failed.compute_wall > clean.compute_wall);
        assert!(failed.read_bytes > 0);
        assert!(failed.wall_time > clean.wall_time);
        // In-run analysis pays selective reads between writes; the
        // write plane stays untouched.
        assert_eq!(insitu.total_bytes, clean.total_bytes);
        assert!(insitu.selective_read_bytes > 0);
        assert!(insitu.wall_time > clean.wall_time);
    }

    #[test]
    fn parallel_campaign_matches_serial_reference() {
        // The rayon fan-out must be a pure speedup: summaries identical
        // to the sequential path, in input order.
        let mut configs: Vec<CastroSedovConfig> = table3_campaign()
            .into_iter()
            .filter(|c| c.n_cell <= 64)
            .collect();
        configs.push(CastroSedovConfig {
            name: "sc_fail".into(),
            engine: Engine::Oracle,
            n_cell: 64,
            max_step: 12,
            plot_int: 4,
            nprocs: 4,
            account_only: true,
            scenario: Some(Scenario::parse("write;check@4;fail@10;restart").unwrap()),
            ..Default::default()
        });
        assert!(configs.len() >= 3);
        let parallel = run_campaign(&configs);
        let serial = run_campaign_serial(&configs);
        assert_eq!(parallel, serial);
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let parallel_timed = run_campaign_timed(&configs, &storage);
        let serial_timed = run_campaign_timed_serial(&configs, &storage);
        assert_eq!(parallel_timed, serial_timed);
        // Order is the input order, not completion order.
        for (s, c) in parallel.iter().zip(&configs) {
            assert_eq!(s.name, c.name);
        }
    }

    #[test]
    fn small_campaign_subset_executes() {
        // Run the four smallest configurations end to end.
        let runs: Vec<CastroSedovConfig> = table3_campaign()
            .into_iter()
            .filter(|c| c.n_cell <= 64)
            .collect();
        assert!(!runs.is_empty());
        let summaries = run_campaign(&runs);
        for s in &summaries {
            assert!(s.total_bytes > 0, "{} wrote nothing", s.name);
            assert!(!s.series.is_empty());
            // Cumulative series is monotone.
            assert!(s.series.windows(2).all(|w| w[1].1 >= w[0].1));
        }
    }
}
