//! Driving one parameterized Castro-Sedov run and collecting its I/O.
//!
//! Mirrors the paper's measurement loop: advance the simulation, dump a
//! plotfile every `plot_int` steps (including the step-0 dump AMReX
//! writes), record every byte at `(step, level, task)` granularity, and
//! (optionally) time each dump burst against the storage model.

use crate::config::{CastroSedovConfig, Engine};
use hydro::{AmrConfig, AmrSim, OracleConfig, OracleSim, StepInfo};
use io_engine::{IoBackend, Reorganizer};
use iosim::{BurstScheduler, BurstTimeline, IoTracker, MemFs, StorageModel, Vfs};
use mpi_sim::{collectives::allreduce_max, SimComm};
use plotfile::{
    account_plotfile_with, castro_sedov_plot_vars, write_plotfile_with, LayoutLevel, PlotLevel,
    PlotfileLayout, PlotfileSpec,
};
use rand::Rng;

/// Everything measured from one run.
pub struct RunResult {
    /// The configuration that produced it.
    pub config: CastroSedovConfig,
    /// Byte records at `(step, level, task)` granularity. The tracker
    /// `step` key is the 1-based output counter (Eq. 1), not the
    /// simulation step number.
    pub tracker: IoTracker,
    /// Per-step advance summaries.
    pub steps: Vec<StepInfo>,
    /// Number of plot dumps performed.
    pub outputs: u32,
    /// Physical files the I/O backend created (differs from the
    /// tracker's logical record count under aggregation).
    pub files_written: u64,
    /// Physical bytes the backend shipped to storage (payloads after any
    /// compression, plus backend overhead and checkpoint state).
    pub physical_bytes: u64,
    /// Logical (pre-compression) payload bytes through the backend plus
    /// checkpoint state — the tracker's view.
    pub logical_bytes: u64,
    /// Declared backend bookkeeping bytes inside `physical_bytes`
    /// (aggregation index tables, compression sidecars).
    pub overhead_bytes: u64,
    /// Modeled codec CPU seconds across the run (0 without compression).
    pub codec_seconds: f64,
    /// Logical bytes restart-read back (0 unless `read_after_write`).
    pub read_bytes: u64,
    /// Physical bytes fetched from storage during the restart read.
    pub physical_read_bytes: u64,
    /// Physical files opened during the restart read.
    pub read_files: u64,
    /// Simulated seconds of the restart-read phase (inside `wall_time`).
    pub read_wall: f64,
    /// Logical bytes delivered by the selective analysis read (0 unless
    /// `analysis_read` is set; exactly the matched chunks' logical
    /// volume, layout- and codec-invariant).
    pub selective_read_bytes: u64,
    /// Physical bytes the selective analysis read fetched from storage
    /// (what the layout — raw vs reorganized — changes).
    pub selective_physical_read_bytes: u64,
    /// Physical files the selective analysis read opened.
    pub selective_read_files: u64,
    /// Simulated seconds of the selective analysis read (inside
    /// `wall_time`; excludes the reorganization pass).
    pub selective_read_wall: f64,
    /// Simulated seconds spent reorganizing the last dump into the
    /// read-optimized layout (0 unless `reorganize`; inside
    /// `wall_time`). The price a campaign weighs against the per-read
    /// savings.
    pub reorg_wall: f64,
    /// Physical bytes the reorganization moved (source fetch + rewrite).
    pub reorg_bytes: u64,
    /// Burst timeline (empty without a storage model).
    pub timeline: BurstTimeline,
    /// Final simulated wall-clock seconds (compute + I/O).
    pub wall_time: f64,
}

impl RunResult {
    /// Per-output-counter total bytes, as the calibration target.
    pub fn per_step_bytes(&self) -> Vec<f64> {
        self.tracker
            .bytes_per_step()
            .values()
            .map(|&b| b as f64)
            .collect()
    }

    /// Eq. (1)/(2) cumulative series.
    pub fn xy_series(&self) -> model::XySeries {
        model::XySeries::from_tracker(
            self.config.name.clone(),
            &self.tracker,
            self.config.n_cell * self.config.n_cell,
        )
    }
}

/// Runs a configuration to `max_step` (or `stop_time`), writing plotfiles
/// through `vfs` (an internal throw-away memory FS when `None`) and timing
/// bursts against `storage` when given.
pub fn run_simulation(
    cfg: &CastroSedovConfig,
    vfs: Option<&dyn Vfs>,
    storage: Option<&StorageModel>,
) -> RunResult {
    let own_fs;
    let fs: &dyn Vfs = match vfs {
        Some(v) => v,
        None => {
            own_fs = MemFs::with_retention(0);
            &own_fs
        }
    };
    match cfg.engine {
        Engine::Hydro => run_hydro(cfg, fs, storage),
        Engine::Oracle => run_oracle(cfg, fs, storage),
    }
}

/// Advances the simulated wall clock through one compute phase: every
/// rank works through its share of `total_cells` with a small
/// deterministic per-rank speed jitter, then all ranks hit the barrier
/// preceding the plot dump (the paper's "bursty" pattern: CPU activity
/// followed by intense I/O activity). Returns the post-barrier time.
fn compute_phase(comm: &SimComm, step: u64, t0: f64, total_cells: i64, ns_per_cell: f64) -> f64 {
    let per_rank_seconds = total_cells as f64 * ns_per_cell / 1e9 / comm.nranks() as f64;
    let finish_times = comm.run(t0, |ctx| {
        // Per-rank, per-step speed jitter in [0.97, 1.03]; seeded by
        // (seed, rank), decorrelated across steps by burning `step` draws.
        let mut jitter = 1.0;
        for _ in 0..=(step % 8) {
            jitter = 0.97 + 0.06 * ctx.rng.gen::<f64>();
        }
        ctx.clock.advance(per_rank_seconds * jitter);
        ctx.clock.now()
    });
    allreduce_max(&finish_times)
}

fn dump_burst(
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    scheduler: &mut Option<BurstScheduler<'_>>,
    output_counter: u32,
    codec_seconds: f64,
    requests: &mut [iosim::WriteRequest],
    bytes: u64,
) {
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next_clock) =
            sched.submit_with_compute(output_counter, *clock, codec_seconds, requests, bytes);
        timeline.push(burst);
        *clock = next_clock;
    } else {
        // No storage model: the codec's CPU cost still lands on the
        // application clock (it is compute, not I/O).
        *clock += codec_seconds;
    }
}

/// Totals of the restart-read phase appended to a run.
#[derive(Clone, Copy, Debug, Default)]
struct ReadPhase {
    read_bytes: u64,
    physical_read_bytes: u64,
    read_files: u64,
    read_wall: f64,
    codec_seconds: f64,
}

/// Restart-reads the last plot dump back through the backend (the
/// recovery phase of an AMR campaign): the backend barriers in-flight
/// drains, the scheduler prices the read burst at the storage model's
/// read bandwidth (recorded in the run's burst timeline like every
/// write burst), and decode CPU lands on the application clock after
/// the bytes arrive. Advances `clock` past the read phase.
fn restart_read(
    backend: &mut dyn IoBackend,
    scheduler: &mut Option<BurstScheduler<'_>>,
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    output_counter: u32,
    dir: &str,
) -> ReadPhase {
    let read_start = match &scheduler {
        // Recovery starts after the run's closing flush.
        Some(sched) => sched.finish(*clock),
        None => *clock,
    };
    *clock = read_start;
    let read = backend
        .read_step(output_counter, dir)
        .expect("restart read of a written step");
    let mut requests = read.stats.requests;
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next_clock) =
            sched.submit_read(output_counter, *clock, &mut requests, read.stats.bytes);
        timeline.push(burst);
        *clock = next_clock;
    }
    *clock += read.stats.codec_seconds;
    ReadPhase {
        read_bytes: read.stats.logical_bytes,
        physical_read_bytes: read.stats.bytes,
        read_files: read.stats.files,
        read_wall: *clock - read_start,
        codec_seconds: read.stats.codec_seconds,
    }
}

/// Totals of the selective analysis phase appended to a run.
#[derive(Clone, Copy, Debug, Default)]
struct AnalysisPhase {
    selective_read_bytes: u64,
    selective_physical_read_bytes: u64,
    selective_read_files: u64,
    selective_read_wall: f64,
    reorg_wall: f64,
    reorg_bytes: u64,
    codec_seconds: f64,
}

/// Performs the selective analysis read of the last plot dump: with
/// `cfg.reorganize`, the dump is first rewritten into the read-optimized
/// layout (source fetch + rewrite both priced as bursts on the simulated
/// clock), then the selection is served from whichever layout applies.
/// Advances `clock` past the whole phase.
// One argument per simulation plane the phase touches, mirroring
// `restart_read` plus the rewrite's filesystem/tracker dependencies.
#[allow(clippy::too_many_arguments)]
fn analysis_read(
    cfg: &CastroSedovConfig,
    backend: &mut dyn IoBackend,
    fs: &dyn Vfs,
    tracker: &IoTracker,
    scheduler: &mut Option<BurstScheduler<'_>>,
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    output_counter: u32,
    dir: &str,
) -> AnalysisPhase {
    let Some(sel) = &cfg.analysis_read else {
        return AnalysisPhase::default();
    };
    let mut phase = AnalysisPhase::default();
    // Analysis happens after the run's closing flush, like a restart.
    let start = match &scheduler {
        Some(sched) => sched.finish(*clock),
        None => *clock,
    };
    *clock = start;

    let read = if cfg.reorganize {
        let mut reorg = Reorganizer::new(fs, tracker, cfg.codec);
        let stats = reorg
            .reorganize(backend, output_counter, dir)
            .expect("reorganize a written step");
        // Price the rewrite: the source fetch as a read burst, its
        // decode CPU, then the clustered rewrite as a write burst with
        // the re-encode CPU charged up front.
        let mut read_reqs = stats.read.requests.clone();
        let mut write_reqs = stats.requests.clone();
        if let Some(sched) = scheduler.as_mut() {
            let (burst, next) =
                sched.submit_read(output_counter, *clock, &mut read_reqs, stats.read.bytes);
            timeline.push(burst);
            *clock = next + stats.read.codec_seconds;
            let (burst, next) = sched.submit_with_compute(
                output_counter,
                *clock,
                stats.codec_seconds,
                &mut write_reqs,
                stats.bytes,
            );
            timeline.push(burst);
            *clock = sched.finish(next);
        } else {
            *clock += stats.read.codec_seconds + stats.codec_seconds;
        }
        phase.reorg_wall = *clock - start;
        phase.reorg_bytes = stats.read.bytes + stats.bytes;
        phase.codec_seconds += stats.read.codec_seconds + stats.codec_seconds;
        reorg
            .read_selection(output_counter, sel)
            .expect("selective read of a reorganized step")
    } else {
        backend
            .read_selection(output_counter, dir, sel)
            .expect("selective read of a written step")
    };

    let sel_start = *clock;
    let mut requests = read.stats.requests;
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next) =
            sched.submit_read(output_counter, *clock, &mut requests, read.stats.bytes);
        timeline.push(burst);
        *clock = next;
    }
    *clock += read.stats.codec_seconds;
    phase.selective_read_bytes = read.stats.logical_bytes;
    phase.selective_physical_read_bytes = read.stats.bytes;
    phase.selective_read_files = read.stats.files;
    phase.selective_read_wall = *clock - sel_start;
    phase.codec_seconds += read.stats.codec_seconds;
    phase
}

fn run_hydro(cfg: &CastroSedovConfig, fs: &dyn Vfs, storage: Option<&StorageModel>) -> RunResult {
    let amr_cfg = AmrConfig {
        n_cell: cfg.n_cell,
        max_level: cfg.max_level,
        grid: cfg.grid,
        regrid_int: cfg.regrid_int,
        nranks: cfg.nprocs,
        strategy: cfg.strategy,
        ctrl: cfg.ctrl,
        tag: cfg.tag,
        problem: cfg.problem,
    };
    let mut sim = AmrSim::new(amr_cfg);
    let tracker = IoTracker::new();
    let comm = SimComm::summit(cfg.nprocs, 0x5ED0);
    let mut backend = cfg.backend.build_with_codec(cfg.codec, fs, &tracker);
    let mut scheduler = storage.map(|m| BurstScheduler::new(m, backend.overlapped()));
    let mut timeline = BurstTimeline::new();
    let mut clock = 0.0f64;
    let mut outputs = 0u32;
    let mut codec_seconds = 0.0f64;
    let var_names = castro_sedov_plot_vars();
    let inputs = cfg.inputs();

    let dump = |sim: &AmrSim,
                step: u64,
                outputs: &mut u32,
                clock: &mut f64,
                codec_seconds: &mut f64,
                timeline: &mut BurstTimeline,
                backend: &mut dyn IoBackend,
                scheduler: &mut Option<BurstScheduler<'_>>| {
        *outputs += 1;
        let stats = if cfg.account_only {
            let layout = PlotfileLayout {
                dir: cfg.plot_dir(step),
                output_counter: *outputs,
                time: sim.time(),
                var_names: var_names.clone(),
                ref_ratio: cfg.grid.ref_ratio,
                levels: sim
                    .levels()
                    .iter()
                    .map(|l| LayoutLevel {
                        geom: l.geom,
                        ba: l.mf.box_array().clone(),
                        dm: l.mf.distribution_map().clone(),
                        level_steps: l.steps,
                    })
                    .collect(),
                inputs: inputs.clone(),
            };
            account_plotfile_with(backend, &layout)
        } else {
            let spec = PlotfileSpec {
                dir: cfg.plot_dir(step),
                output_counter: *outputs,
                time: sim.time(),
                var_names: var_names.clone(),
                ref_ratio: cfg.grid.ref_ratio,
                levels: sim
                    .levels()
                    .iter()
                    .map(|l| PlotLevel {
                        geom: l.geom,
                        mf: &l.mf,
                        level_steps: l.steps,
                    })
                    .collect(),
                inputs: inputs.clone(),
            };
            write_plotfile_with(backend, &spec).expect("plotfile write")
        };
        *codec_seconds += stats.codec_seconds;
        let mut requests = stats.requests;
        dump_burst(
            timeline,
            clock,
            scheduler,
            *outputs,
            stats.codec_seconds,
            &mut requests,
            stats.total_bytes,
        );
    };

    // AMReX writes plt00000 before the first step.
    dump(
        &sim,
        0,
        &mut outputs,
        &mut clock,
        &mut codec_seconds,
        &mut timeline,
        backend.as_mut(),
        &mut scheduler,
    );
    let mut last_plot = (outputs, cfg.plot_dir(0));

    // Checkpoints keep the plain N-to-N accounting path (they are restart
    // state, not analysis output, and stay outside the backend's layout);
    // their files still count toward the run's physical file total and
    // their bursts share the run's drain policy.
    let mut checkpoint_files = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut steps = Vec::new();
    while sim.step_count() < cfg.max_step && sim.time() < cfg.stop_time {
        let info = sim.step();
        let cells: i64 = info.cells.iter().sum();
        clock = compute_phase(&comm, info.step, clock, cells, cfg.compute_ns_per_cell);
        if info.step.is_multiple_of(cfg.plot_int) {
            dump(
                &sim,
                info.step,
                &mut outputs,
                &mut clock,
                &mut codec_seconds,
                &mut timeline,
                backend.as_mut(),
                &mut scheduler,
            );
            last_plot = (outputs, cfg.plot_dir(info.step));
        }
        if cfg.check_int > 0 && info.step.is_multiple_of(cfg.check_int) {
            outputs += 1;
            let spec = plotfile::CheckpointSpec {
                dir: cfg.check_dir(info.step),
                output_counter: outputs,
                time: sim.time(),
                ncomp: hydro::NCOMP,
                ref_ratio: cfg.grid.ref_ratio,
                levels: sim
                    .levels()
                    .iter()
                    .map(|l| plotfile::CheckpointLevel {
                        geom: l.geom,
                        ba: l.mf.box_array().clone(),
                        dm: l.mf.distribution_map().clone(),
                        level_steps: l.steps,
                        dt: info.dt,
                    })
                    .collect(),
            };
            let stats = plotfile::account_checkpoint(&tracker, &spec);
            checkpoint_files += stats.nfiles;
            checkpoint_bytes += stats.total_bytes;
            let mut requests = stats.requests;
            dump_burst(
                &mut timeline,
                &mut clock,
                &mut scheduler,
                outputs,
                0.0,
                &mut requests,
                stats.total_bytes,
            );
        }
        steps.push(info);
    }

    let read_phase = if cfg.read_after_write {
        restart_read(
            backend.as_mut(),
            &mut scheduler,
            &mut timeline,
            &mut clock,
            last_plot.0,
            &last_plot.1,
        )
    } else {
        ReadPhase::default()
    };

    let analysis = analysis_read(
        cfg,
        backend.as_mut(),
        fs,
        &tracker,
        &mut scheduler,
        &mut timeline,
        &mut clock,
        last_plot.0,
        &last_plot.1,
    );

    let engine_report = backend.close().expect("backend close");
    drop(backend);
    let wall_time = match &scheduler {
        Some(sched) => sched.finish(clock),
        None => clock,
    };
    RunResult {
        config: cfg.clone(),
        tracker,
        steps,
        outputs,
        files_written: engine_report.files + checkpoint_files,
        physical_bytes: engine_report.bytes + checkpoint_bytes,
        logical_bytes: engine_report.logical_bytes + checkpoint_bytes,
        overhead_bytes: engine_report.overhead_bytes,
        codec_seconds: codec_seconds + read_phase.codec_seconds + analysis.codec_seconds,
        read_bytes: read_phase.read_bytes,
        physical_read_bytes: read_phase.physical_read_bytes,
        read_files: read_phase.read_files,
        read_wall: read_phase.read_wall,
        selective_read_bytes: analysis.selective_read_bytes,
        selective_physical_read_bytes: analysis.selective_physical_read_bytes,
        selective_read_files: analysis.selective_read_files,
        selective_read_wall: analysis.selective_read_wall,
        reorg_wall: analysis.reorg_wall,
        reorg_bytes: analysis.reorg_bytes,
        timeline,
        wall_time,
    }
}

fn run_oracle(cfg: &CastroSedovConfig, fs: &dyn Vfs, storage: Option<&StorageModel>) -> RunResult {
    let oracle_cfg = OracleConfig {
        n_cell: cfg.n_cell,
        max_level: cfg.max_level,
        grid: cfg.grid,
        regrid_int: cfg.regrid_int,
        nranks: cfg.nprocs,
        strategy: cfg.strategy,
        ctrl: cfg.ctrl,
        problem: cfg.problem,
        shock_halfwidth_cells: 6.0,
    };
    let mut sim = OracleSim::new(oracle_cfg);
    let tracker = IoTracker::new();
    let comm = SimComm::summit(cfg.nprocs, 0x5ED0);
    let mut backend = cfg.backend.build_with_codec(cfg.codec, fs, &tracker);
    let mut scheduler = storage.map(|m| BurstScheduler::new(m, backend.overlapped()));
    let mut timeline = BurstTimeline::new();
    let mut clock = 0.0f64;
    let mut outputs = 0u32;
    let mut codec_seconds = 0.0f64;
    let var_names = castro_sedov_plot_vars();
    let inputs = cfg.inputs();

    let dump = |sim: &OracleSim,
                step: u64,
                outputs: &mut u32,
                clock: &mut f64,
                codec_seconds: &mut f64,
                timeline: &mut BurstTimeline,
                backend: &mut dyn IoBackend,
                scheduler: &mut Option<BurstScheduler<'_>>| {
        *outputs += 1;
        let layout = PlotfileLayout {
            dir: cfg.plot_dir(step),
            output_counter: *outputs,
            time: sim.time(),
            var_names: var_names.clone(),
            ref_ratio: cfg.grid.ref_ratio,
            levels: sim
                .levels()
                .iter()
                .map(|l| LayoutLevel {
                    geom: l.geom,
                    ba: l.ba.clone(),
                    dm: l.dm.clone(),
                    level_steps: l.steps,
                })
                .collect(),
            inputs: inputs.clone(),
        };
        let stats = account_plotfile_with(backend, &layout);
        *codec_seconds += stats.codec_seconds;
        let mut requests = stats.requests;
        dump_burst(
            timeline,
            clock,
            scheduler,
            *outputs,
            stats.codec_seconds,
            &mut requests,
            stats.total_bytes,
        );
    };

    dump(
        &sim,
        0,
        &mut outputs,
        &mut clock,
        &mut codec_seconds,
        &mut timeline,
        backend.as_mut(),
        &mut scheduler,
    );
    let mut last_plot = (outputs, cfg.plot_dir(0));

    // Checkpoints keep the plain N-to-N accounting path (they are restart
    // state, not analysis output, and stay outside the backend's layout);
    // their files still count toward the run's physical file total and
    // their bursts share the run's drain policy.
    let mut checkpoint_files = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut steps = Vec::new();
    while sim.step_count() < cfg.max_step && sim.time() < cfg.stop_time {
        let info = sim.step();
        let cells: i64 = info.cells.iter().sum();
        clock = compute_phase(&comm, info.step, clock, cells, cfg.compute_ns_per_cell);
        if info.step.is_multiple_of(cfg.plot_int) {
            dump(
                &sim,
                info.step,
                &mut outputs,
                &mut clock,
                &mut codec_seconds,
                &mut timeline,
                backend.as_mut(),
                &mut scheduler,
            );
            last_plot = (outputs, cfg.plot_dir(info.step));
        }
        if cfg.check_int > 0 && info.step.is_multiple_of(cfg.check_int) {
            outputs += 1;
            let spec = plotfile::CheckpointSpec {
                dir: cfg.check_dir(info.step),
                output_counter: outputs,
                time: sim.time(),
                ncomp: hydro::NCOMP,
                ref_ratio: cfg.grid.ref_ratio,
                levels: sim
                    .levels()
                    .iter()
                    .map(|l| plotfile::CheckpointLevel {
                        geom: l.geom,
                        ba: l.ba.clone(),
                        dm: l.dm.clone(),
                        level_steps: l.steps,
                        dt: info.dt,
                    })
                    .collect(),
            };
            let stats = plotfile::account_checkpoint(&tracker, &spec);
            checkpoint_files += stats.nfiles;
            checkpoint_bytes += stats.total_bytes;
            let mut requests = stats.requests;
            dump_burst(
                &mut timeline,
                &mut clock,
                &mut scheduler,
                outputs,
                0.0,
                &mut requests,
                stats.total_bytes,
            );
        }
        steps.push(info);
    }

    let read_phase = if cfg.read_after_write {
        restart_read(
            backend.as_mut(),
            &mut scheduler,
            &mut timeline,
            &mut clock,
            last_plot.0,
            &last_plot.1,
        )
    } else {
        ReadPhase::default()
    };

    let analysis = analysis_read(
        cfg,
        backend.as_mut(),
        fs,
        &tracker,
        &mut scheduler,
        &mut timeline,
        &mut clock,
        last_plot.0,
        &last_plot.1,
    );

    let engine_report = backend.close().expect("backend close");
    drop(backend);
    let wall_time = match &scheduler {
        Some(sched) => sched.finish(clock),
        None => clock,
    };
    RunResult {
        config: cfg.clone(),
        tracker,
        steps,
        outputs,
        files_written: engine_report.files + checkpoint_files,
        physical_bytes: engine_report.bytes + checkpoint_bytes,
        logical_bytes: engine_report.logical_bytes + checkpoint_bytes,
        overhead_bytes: engine_report.overhead_bytes,
        codec_seconds: codec_seconds + read_phase.codec_seconds + analysis.codec_seconds,
        read_bytes: read_phase.read_bytes,
        physical_read_bytes: read_phase.physical_read_bytes,
        read_files: read_phase.read_files,
        read_wall: read_phase.read_wall,
        selective_read_bytes: analysis.selective_read_bytes,
        selective_physical_read_bytes: analysis.selective_physical_read_bytes,
        selective_read_files: analysis.selective_read_files,
        selective_read_wall: analysis.selective_read_wall,
        reorg_wall: analysis.reorg_wall,
        reorg_bytes: analysis.reorg_bytes,
        timeline,
        wall_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::IoKind;

    fn small(engine: Engine) -> CastroSedovConfig {
        CastroSedovConfig {
            engine,
            n_cell: 64,
            max_level: 2,
            max_step: 12,
            plot_int: 4,
            nprocs: 4,
            grid: amr_mesh::GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 32,
                n_error_buf: 2,
                grid_eff: 0.7,
            },
            ..Default::default()
        }
    }

    #[test]
    fn hydro_run_produces_expected_dump_count() {
        let r = run_simulation(&small(Engine::Hydro), None, None);
        // Step-0 dump + dumps at steps 4, 8, 12.
        assert_eq!(r.outputs, 4);
        assert_eq!(r.tracker.steps(), vec![1, 2, 3, 4]);
        assert_eq!(r.steps.len(), 12);
        assert!(r.tracker.total_bytes() > 0);
    }

    #[test]
    fn oracle_run_produces_expected_dump_count() {
        let r = run_simulation(&small(Engine::Oracle), None, None);
        assert_eq!(r.outputs, 4);
        assert!(r.tracker.total_bytes() > 0);
        // Oracle refines (annulus grids exist).
        assert!(r.tracker.levels().len() >= 2);
    }

    #[test]
    fn account_only_matches_real_writes() {
        let mut cfg = small(Engine::Hydro);
        let real = run_simulation(&cfg, None, None);
        cfg.account_only = true;
        let accounted = run_simulation(&cfg, None, None);
        assert_eq!(
            real.tracker.total_bytes_of(IoKind::Data),
            accounted.tracker.total_bytes_of(IoKind::Data),
            "sizer and writer must agree on data bytes"
        );
    }

    #[test]
    fn per_level_output_is_recorded() {
        let r = run_simulation(&small(Engine::Hydro), None, None);
        let levels = r.tracker.levels();
        assert!(levels.contains(&0));
        assert!(levels.len() >= 2, "refined levels must write");
        // L0 per-step output is ~constant (paper Fig. 7 observation).
        let series = r.tracker.cumulative_per_level_step();
        let l0 = &series[&0];
        let incr: Vec<u64> = l0.windows(2).map(|w| w[1].1 - w[0].1).collect();
        let min = *incr.iter().min().unwrap() as f64;
        let max = *incr.iter().max().unwrap() as f64;
        assert!(max / min < 1.05, "L0 increments vary: {incr:?}");
    }

    #[test]
    fn storage_model_yields_burst_timeline() {
        let mut cfg = small(Engine::Hydro);
        cfg.compute_ns_per_cell = 10_000.0; // exaggerate compute phases
        let model = StorageModel::summit_alpine(0.05);
        let r = run_simulation(&cfg, None, Some(&model));
        assert_eq!(r.timeline.len(), 4);
        assert!(r.timeline.duty_cycle() < 0.9);
        assert!(r.wall_time > 0.0);
    }

    #[test]
    fn xy_series_is_monotone() {
        let r = run_simulation(&small(Engine::Oracle), None, None);
        let s = r.xy_series();
        assert_eq!(s.points.len(), 4);
        assert!(s.points.windows(2).all(|w| w[1].y >= w[0].y));
        assert!(s.points.windows(2).all(|w| w[1].x > w[0].x));
    }

    #[test]
    fn stop_time_halts_early() {
        let mut cfg = small(Engine::Oracle);
        cfg.stop_time = 1e-12;
        let r = run_simulation(&cfg, None, None);
        assert_eq!(r.steps.len(), 1, "first step overshoots stop_time");
    }

    #[test]
    fn check_int_adds_checkpoint_dumps() {
        let mut cfg = small(Engine::Oracle);
        let plot_only = run_simulation(&cfg, None, None);
        cfg.check_int = 4;
        let with_chk = run_simulation(&cfg, None, None);
        // Checkpoints at steps 4, 8, 12 add 3 outputs.
        assert_eq!(with_chk.outputs, plot_only.outputs + 3);
        assert!(
            with_chk.tracker.total_bytes() > plot_only.tracker.total_bytes(),
            "checkpoints add bytes"
        );
        // Checkpoint state (4 comps) is much smaller than a plot dump
        // (22 vars), so total growth stays well below 2x.
        let ratio = with_chk.tracker.total_bytes() as f64 / plot_only.tracker.total_bytes() as f64;
        assert!((1.05..1.40).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn read_after_write_restart_reads_the_last_dump() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.read_after_write = true;
        let r = run_simulation(&cfg, None, None);
        // The restart reads exactly the last output counter's logical
        // bytes (dumps at steps 0, 4, 8, 12 -> counter 4).
        let last = *r.tracker.steps().last().unwrap();
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&last]);
        assert_eq!(r.tracker.total_read_bytes(), r.read_bytes);
        assert!(r.read_files > 0);
        // Without a storage model only decode CPU could cost time; the
        // identity codec costs none.
        assert_eq!(r.read_wall, 0.0);

        cfg.read_after_write = false;
        let w = run_simulation(&cfg, None, None);
        assert_eq!(w.read_bytes, 0);
        assert_eq!(w.tracker.total_read_bytes(), 0);
        assert_eq!(w.tracker.export(), r.tracker.export(), "writes invariant");
    }

    #[test]
    fn restart_read_costs_wall_clock_under_storage() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        let model = StorageModel::ideal(2, 1e6);
        let write_only = run_simulation(&cfg, None, Some(&model));
        cfg.read_after_write = true;
        let with_read = run_simulation(&cfg, None, Some(&model));
        assert!(with_read.read_wall > 0.0);
        // The restart burst is recorded in the timeline like the writes.
        assert_eq!(with_read.timeline.len(), write_only.timeline.len() + 1);
        assert!(
            with_read.wall_time > write_only.wall_time,
            "restart {} must cost over write-only {}",
            with_read.wall_time,
            write_only.wall_time
        );
        assert!(
            (with_read.wall_time - write_only.wall_time - with_read.read_wall).abs()
                < 1e-9 + with_read.wall_time * 1e-12,
            "the gap is the read phase"
        );
    }

    #[test]
    fn restart_read_round_trips_materialized_hydro_dumps() {
        // Full hydro engine with materialized payloads: the read plane
        // returns exactly the bytes the writers produced.
        let mut cfg = small(Engine::Hydro);
        cfg.read_after_write = true;
        let r = run_simulation(&cfg, None, None);
        let last = *r.tracker.steps().last().unwrap();
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&last]);
        assert_eq!(r.physical_read_bytes, r.read_bytes, "identity codec");
    }

    #[test]
    fn analysis_read_fetches_a_level_subset() {
        use io_engine::ReadSelection;
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.analysis_read = Some(ReadSelection::Level(1));
        let r = run_simulation(&cfg, None, None);
        // The selection delivers exactly the last dump's level-1 logical
        // bytes — a strict subset of a full restart read.
        let last = *r.tracker.steps().last().unwrap();
        assert!(r.selective_read_bytes > 0);
        assert!(r.selective_read_bytes < r.tracker.bytes_per_step()[&last]);
        assert_eq!(
            r.tracker
                .read_bytes_per_level()
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            vec![1],
            "only level 1 was read"
        );
        assert!(r.selective_read_files > 0);
        assert_eq!(r.reorg_wall, 0.0, "raw layout: no rewrite");

        // Reorganized variant under a storage model: the rewrite costs
        // wall, the selective read itself fetches fewer physical bytes.
        // The byte win is an aggregated-layout story (fpp's in-memory
        // manifest already seeks exactly; the BP index blob does not).
        cfg.backend = io_engine::BackendSpec::Aggregated(2);
        let storage = StorageModel::ideal(1, 1e6);
        let raw = run_simulation(&cfg, None, Some(&storage));
        cfg.reorganize = true;
        let opt = run_simulation(&cfg, None, Some(&storage));
        assert!(opt.reorg_wall > 0.0);
        assert!(opt.reorg_bytes > 0);
        assert_eq!(opt.selective_read_bytes, raw.selective_read_bytes);
        assert!(opt.selective_physical_read_bytes < raw.selective_physical_read_bytes);
        assert!(opt.selective_read_wall < raw.selective_read_wall);
        // But the whole run pays for the rewrite.
        assert!(opt.wall_time > raw.wall_time);
    }

    #[test]
    fn compute_phases_are_deterministic_and_jittered() {
        let mut cfg = small(Engine::Oracle);
        cfg.compute_ns_per_cell = 10_000.0;
        let storage = StorageModel::summit_alpine(0.05);
        let a = run_simulation(&cfg, None, Some(&storage));
        let b = run_simulation(&cfg, None, Some(&storage));
        assert_eq!(a.wall_time, b.wall_time, "seeded jitter is reproducible");
        // Jitter means the wall time differs from the exact noiseless sum.
        let exact: f64 = a
            .steps
            .iter()
            .map(|s| {
                s.cells.iter().sum::<i64>() as f64 * cfg.compute_ns_per_cell
                    / 1e9
                    / cfg.nprocs as f64
            })
            .sum();
        assert!(a.wall_time > exact, "barrier waits on the slowest rank");
    }
}
