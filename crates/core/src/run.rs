//! Driving one parameterized Castro-Sedov run and collecting its I/O.
//!
//! Mirrors the paper's measurement loop: advance the simulation, dump a
//! plotfile every `plot_int` steps (including the step-0 dump AMReX
//! writes), record every byte at `(step, level, task)` granularity, and
//! (optionally) time each dump burst against the storage model. The
//! *shape* of the run — where checkpoints, mid-run failures/restarts,
//! and analysis reads interleave with the write stream — is a compiled
//! scenario program executed by the engine-agnostic phase driver in
//! [`crate::driver`].

use crate::config::{CastroSedovConfig, Engine};
use crate::driver::{try_run_scenario_attached, AmrSource, OracleSource};
use hydro::StepInfo;
use iosim::{BurstScheduler, BurstTimeline, IoTracker, MemFs, StorageModel, Vfs};
use mpi_sim::{collectives::allreduce_max, SimComm};

/// Everything measured from one run.
pub struct RunResult {
    /// The configuration that produced it.
    pub config: CastroSedovConfig,
    /// Canonical spelling of the scenario the run executed (the
    /// compiled legacy booleans when `config.scenario` is `None`).
    pub scenario: String,
    /// Byte records at `(step, level, task)` granularity. The tracker
    /// `step` key is the 1-based output counter (Eq. 1), not the
    /// simulation step number.
    pub tracker: IoTracker,
    /// Per-step advance summaries, in the order the clock paid for them
    /// (steps re-computed after a mid-run restart appear twice).
    pub steps: Vec<StepInfo>,
    /// Number of dumps performed (plot + checkpoint output counters).
    pub outputs: u32,
    /// Restart reads performed (mid-run recoveries plus any trailing
    /// read-back phases).
    pub restarts: u32,
    /// Physical files the I/O backend created (differs from the
    /// tracker's logical record count under aggregation).
    pub files_written: u64,
    /// Physical bytes the backend shipped to storage (payloads after any
    /// compression, plus backend overhead and checkpoint state).
    pub physical_bytes: u64,
    /// Logical (pre-compression) payload bytes through the backend plus
    /// checkpoint state — the tracker's view.
    pub logical_bytes: u64,
    /// Declared backend bookkeeping bytes inside `physical_bytes`
    /// (aggregation index tables, compression sidecars).
    pub overhead_bytes: u64,
    /// Modeled codec CPU seconds across the run (0 without compression).
    pub codec_seconds: f64,
    /// Physical bytes of checkpoint dumps inside `physical_bytes` (0
    /// without a checkpoint cadence). Checkpoints ride the same
    /// backend/codec stack as plot dumps but are reported separately,
    /// not folded into plot totals.
    pub check_bytes: u64,
    /// Physical files of checkpoint dumps inside `files_written`.
    pub check_files: u64,
    /// Simulated seconds of checkpoint write bursts (inside
    /// `wall_time`).
    pub check_wall: f64,
    /// Logical bytes restart-read back (0 without a restart phase).
    pub read_bytes: u64,
    /// Physical bytes fetched from storage during restart reads.
    pub physical_read_bytes: u64,
    /// Physical files opened during restart reads.
    pub read_files: u64,
    /// Simulated seconds of restart-read phases (inside `wall_time`).
    pub read_wall: f64,
    /// Logical bytes delivered by selective analysis reads (0 without an
    /// analysis phase; exactly the matched chunks' logical volume,
    /// layout- and codec-invariant).
    pub selective_read_bytes: u64,
    /// Physical bytes the selective analysis reads fetched from storage
    /// (what the layout — raw vs reorganized — changes).
    pub selective_physical_read_bytes: u64,
    /// Physical files the selective analysis reads opened.
    pub selective_read_files: u64,
    /// Simulated seconds of selective analysis reads (inside
    /// `wall_time`; excludes the reorganization passes).
    pub selective_read_wall: f64,
    /// Simulated seconds spent reorganizing dumps into the
    /// read-optimized layout (0 unless analysis phases reorganize;
    /// inside `wall_time`). The price a campaign weighs against the
    /// per-read savings.
    pub reorg_wall: f64,
    /// Physical bytes the reorganization moved (source fetch + rewrite).
    pub reorg_bytes: u64,
    /// Simulated seconds of compute phases (inside `wall_time`; includes
    /// compute re-paid after a mid-run restart).
    pub compute_wall: f64,
    /// Simulated seconds of plot-dump bursts on the application clock
    /// (inside `wall_time`; near zero for overlapped backends).
    pub plot_wall: f64,
    /// Simulated seconds the closing flush barrier waited on in-flight
    /// drains (inside `wall_time`).
    pub drain_wall: f64,
    /// Bytes shipped over the modeled interconnect instead of storage
    /// (in-transit streaming backends only; 0 for every storage
    /// backend) — the network plane's priced column.
    pub net_bytes: u64,
    /// Link-transfer seconds for `net_bytes` (inside `plot_wall` /
    /// `check_wall`: streamed dumps ship where stored dumps burst).
    pub net_wall: f64,
    /// Simulated seconds the producer stalled on consumer-window
    /// back-pressure (inside `plot_wall`/`check_wall`, disjoint from
    /// `net_wall`) — accounted like the staging pool's `staging_wait`.
    pub window_stall: f64,
    /// Burst timeline (empty without a storage model).
    pub timeline: BurstTimeline,
    /// Final simulated wall-clock seconds (compute + I/O).
    pub wall_time: f64,
}

impl RunResult {
    /// Per-output-counter total bytes, as the calibration target.
    pub fn per_step_bytes(&self) -> Vec<f64> {
        self.tracker
            .bytes_per_step()
            .values()
            .map(|&b| b as f64)
            .collect()
    }

    /// Eq. (1)/(2) cumulative series.
    pub fn xy_series(&self) -> model::XySeries {
        model::XySeries::from_tracker(
            self.config.name.clone(),
            &self.tracker,
            self.config.n_cell * self.config.n_cell,
        )
    }
}

/// Runs a configuration to `max_step` (or `stop_time`), writing plotfiles
/// through `vfs` (an internal throw-away memory FS when `None`) and timing
/// bursts against `storage` when given. The run's phase program is
/// `cfg.effective_scenario()` compiled against its cadences — both
/// engines execute through the same [`crate::driver`] plane.
pub fn run_simulation(
    cfg: &CastroSedovConfig,
    vfs: Option<&dyn Vfs>,
    storage: Option<&StorageModel>,
) -> RunResult {
    run_simulation_attached(cfg, vfs, storage.into())
}

/// [`run_simulation`] with an explicit storage attachment — pass
/// [`iosim::StorageAttach::Fabric`] to run as one tenant of a shared
/// machine room (see [`iosim::Fabric`]), contending with every other
/// tenant's bursts on one event-driven clock.
pub fn run_simulation_attached(
    cfg: &CastroSedovConfig,
    vfs: Option<&dyn Vfs>,
    storage: iosim::StorageAttach<'_>,
) -> RunResult {
    try_run_simulation_attached(cfg, vfs, storage).unwrap_or_else(|e| panic!("scenario I/O: {e}"))
}

/// [`run_simulation_attached`], but propagating phase I/O errors instead
/// of panicking — the path callers take when a scenario may legitimately
/// ask a backend for something it cannot serve (e.g. `analyze:SEL`
/// against a step the backend never saw returns the typed
/// [`std::io::ErrorKind::Unsupported`] error naming the backend).
pub fn try_run_simulation_attached(
    cfg: &CastroSedovConfig,
    vfs: Option<&dyn Vfs>,
    storage: iosim::StorageAttach<'_>,
) -> std::io::Result<RunResult> {
    let own_fs;
    let fs: &dyn Vfs = match vfs {
        Some(v) => v,
        None => {
            own_fs = MemFs::with_retention(0);
            &own_fs
        }
    };
    match cfg.engine {
        Engine::Hydro => try_run_scenario_attached(cfg, AmrSource::new(cfg), fs, storage),
        Engine::Oracle => try_run_scenario_attached(cfg, OracleSource::new(cfg), fs, storage),
    }
}

/// Deterministic per-(seed, rank, step) speed jitter in `[0.97, 1.03)`:
/// a splitmix64-style hash, so any two distinct `(rank, step)` pairs
/// draw independent factors — steps 8 apart are as decorrelated as
/// steps 1 apart (the old draw-burning scheme cycled with period 8).
pub(crate) fn rank_step_jitter(seed: u64, rank: u64, step: u64) -> f64 {
    let mut z =
        seed ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ step.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    0.97 + 0.06 * unit
}

/// Advances the simulated wall clock through one compute phase: every
/// rank works through its share of `total_cells` with a small
/// deterministic per-rank speed jitter, then all ranks hit the barrier
/// preceding the plot dump (the paper's "bursty" pattern: CPU activity
/// followed by intense I/O activity). Returns the post-barrier time.
pub(crate) fn compute_phase(
    comm: &SimComm,
    step: u64,
    t0: f64,
    total_cells: i64,
    ns_per_cell: f64,
) -> f64 {
    let per_rank_seconds = total_cells as f64 * ns_per_cell / 1e9 / comm.nranks() as f64;
    let seed = comm.seed();
    let finish_times = comm.run(t0, |ctx| {
        let jitter = rank_step_jitter(seed, ctx.rank as u64, step);
        ctx.clock.advance(per_rank_seconds * jitter);
        ctx.clock.now()
    });
    allreduce_max(&finish_times)
}

/// Submits one dump burst: times it against the storage model when one
/// is attached, otherwise charges only the codec CPU to the clock.
pub(crate) fn dump_burst(
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    scheduler: &mut Option<BurstScheduler<'_>>,
    output_counter: u32,
    codec_seconds: f64,
    requests: &mut [iosim::WriteRequest],
    bytes: u64,
) {
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next_clock) =
            sched.submit_with_compute(output_counter, *clock, codec_seconds, requests, bytes);
        timeline.push(burst);
        *clock = next_clock;
    } else {
        // No storage model: the codec's CPU cost still lands on the
        // application clock (it is compute, not I/O).
        *clock += codec_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use io_engine::Scenario;
    use iosim::IoKind;

    fn small(engine: Engine) -> CastroSedovConfig {
        CastroSedovConfig {
            engine,
            n_cell: 64,
            max_level: 2,
            max_step: 12,
            plot_int: 4,
            nprocs: 4,
            grid: amr_mesh::GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 32,
                n_error_buf: 2,
                grid_eff: 0.7,
            },
            ..Default::default()
        }
    }

    #[test]
    fn hydro_run_produces_expected_dump_count() {
        let r = run_simulation(&small(Engine::Hydro), None, None);
        // Step-0 dump + dumps at steps 4, 8, 12.
        assert_eq!(r.outputs, 4);
        assert_eq!(r.tracker.steps(), vec![1, 2, 3, 4]);
        assert_eq!(r.steps.len(), 12);
        assert!(r.tracker.total_bytes() > 0);
        assert_eq!(r.scenario, "write");
    }

    #[test]
    fn oracle_run_produces_expected_dump_count() {
        let r = run_simulation(&small(Engine::Oracle), None, None);
        assert_eq!(r.outputs, 4);
        assert!(r.tracker.total_bytes() > 0);
        // Oracle refines (annulus grids exist).
        assert!(r.tracker.levels().len() >= 2);
    }

    #[test]
    fn account_only_matches_real_writes() {
        let mut cfg = small(Engine::Hydro);
        let real = run_simulation(&cfg, None, None);
        cfg.account_only = true;
        let accounted = run_simulation(&cfg, None, None);
        assert_eq!(
            real.tracker.total_bytes_of(IoKind::Data),
            accounted.tracker.total_bytes_of(IoKind::Data),
            "sizer and writer must agree on data bytes"
        );
    }

    #[test]
    fn per_level_output_is_recorded() {
        let r = run_simulation(&small(Engine::Hydro), None, None);
        let levels = r.tracker.levels();
        assert!(levels.contains(&0));
        assert!(levels.len() >= 2, "refined levels must write");
        // L0 per-step output is ~constant (paper Fig. 7 observation).
        let series = r.tracker.cumulative_per_level_step();
        let l0 = &series[&0];
        let incr: Vec<u64> = l0.windows(2).map(|w| w[1].1 - w[0].1).collect();
        let min = *incr.iter().min().unwrap() as f64;
        let max = *incr.iter().max().unwrap() as f64;
        assert!(max / min < 1.05, "L0 increments vary: {incr:?}");
    }

    #[test]
    fn storage_model_yields_burst_timeline() {
        let mut cfg = small(Engine::Hydro);
        cfg.compute_ns_per_cell = 10_000.0; // exaggerate compute phases
        let model = StorageModel::summit_alpine(0.05);
        let r = run_simulation(&cfg, None, Some(&model));
        assert_eq!(r.timeline.len(), 4);
        assert!(r.timeline.duty_cycle() < 0.9);
        assert!(r.wall_time > 0.0);
        // Per-phase walls decompose the run: compute + plot bursts are
        // the whole story for a write-only synchronous run.
        assert!(r.compute_wall > 0.0);
        assert!(r.plot_wall > 0.0);
        assert!(
            (r.compute_wall + r.plot_wall + r.drain_wall - r.wall_time).abs()
                < 1e-9 + r.wall_time * 1e-12,
            "phase walls must sum to wall_time for a write-only sync run"
        );
    }

    #[test]
    fn xy_series_is_monotone() {
        let r = run_simulation(&small(Engine::Oracle), None, None);
        let s = r.xy_series();
        assert_eq!(s.points.len(), 4);
        assert!(s.points.windows(2).all(|w| w[1].y >= w[0].y));
        assert!(s.points.windows(2).all(|w| w[1].x > w[0].x));
    }

    #[test]
    fn stop_time_halts_early() {
        let mut cfg = small(Engine::Oracle);
        cfg.stop_time = 1e-12;
        let r = run_simulation(&cfg, None, None);
        assert_eq!(r.steps.len(), 1, "first step overshoots stop_time");
    }

    #[test]
    fn check_int_adds_checkpoint_dumps() {
        let mut cfg = small(Engine::Oracle);
        let plot_only = run_simulation(&cfg, None, None);
        cfg.check_int = 4;
        let with_chk = run_simulation(&cfg, None, None);
        // Checkpoints at steps 4, 8, 12 add 3 outputs.
        assert_eq!(with_chk.outputs, plot_only.outputs + 3);
        assert!(
            with_chk.tracker.total_bytes() > plot_only.tracker.total_bytes(),
            "checkpoints add bytes"
        );
        // Checkpoint state (4 comps) is much smaller than a plot dump
        // (22 vars), so total growth stays well below 2x.
        let ratio = with_chk.tracker.total_bytes() as f64 / plot_only.tracker.total_bytes() as f64;
        assert!((1.05..1.40).contains(&ratio), "ratio {ratio}");
        // The checkpoint plane is reported separately, not folded into
        // plot totals.
        assert!(with_chk.check_bytes > 0);
        assert!(with_chk.check_files > 0);
        assert_eq!(plot_only.check_bytes, 0);
        assert_eq!(
            with_chk.physical_bytes - with_chk.check_bytes,
            plot_only.physical_bytes,
            "plot volume is checkpoint-invariant"
        );
    }

    #[test]
    fn checkpoints_ride_the_backend_and_codec_stack() {
        // The satellite contract: checkpoint dumps go through the same
        // backend/codec stack as plot dumps — aggregation funnels their
        // files, compression shrinks their physical bytes.
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.check_int = 4;
        let fpp = run_simulation(&cfg, None, None);
        cfg.backend = io_engine::BackendSpec::Aggregated(2);
        let agg = run_simulation(&cfg, None, None);
        assert!(
            agg.check_files < fpp.check_files,
            "aggregation must funnel checkpoint files: {} vs {}",
            agg.check_files,
            fpp.check_files
        );
        cfg.backend = io_engine::BackendSpec::FilePerProcess;
        cfg.codec = io_engine::CodecSpec::LossyQuant(8);
        let quant = run_simulation(&cfg, None, None);
        assert!(
            quant.check_bytes < fpp.check_bytes,
            "compression must shrink checkpoint state: {} vs {}",
            quant.check_bytes,
            fpp.check_bytes
        );
        // The logical tracker view stays invariant across the stack.
        assert_eq!(fpp.tracker.total_bytes(), agg.tracker.total_bytes());
        assert_eq!(fpp.tracker.total_bytes(), quant.tracker.total_bytes());
    }

    #[test]
    fn checkpoint_bursts_cost_wall_clock() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.check_int = 4;
        let model = StorageModel::ideal(2, 1e6);
        let r = run_simulation(&cfg, None, Some(&model));
        assert!(r.check_wall > 0.0);
        // 4 plot bursts + 3 checkpoint bursts in the timeline.
        assert_eq!(r.timeline.len(), 7);
    }

    #[test]
    fn read_after_write_restart_reads_the_last_dump() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.read_after_write = true;
        let r = run_simulation(&cfg, None, None);
        // The restart reads exactly the last output counter's logical
        // bytes (dumps at steps 0, 4, 8, 12 -> counter 4).
        let last = *r.tracker.steps().last().unwrap();
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&last]);
        assert_eq!(r.tracker.total_read_bytes(), r.read_bytes);
        assert!(r.read_files > 0);
        assert_eq!(r.restarts, 1);
        assert_eq!(r.scenario, "write;restart");
        // Without a storage model only decode CPU could cost time; the
        // identity codec costs none.
        assert_eq!(r.read_wall, 0.0);

        cfg.read_after_write = false;
        let w = run_simulation(&cfg, None, None);
        assert_eq!(w.read_bytes, 0);
        assert_eq!(w.tracker.total_read_bytes(), 0);
        assert_eq!(w.tracker.export(), r.tracker.export(), "writes invariant");
    }

    #[test]
    fn restart_read_costs_wall_clock_under_storage() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        let model = StorageModel::ideal(2, 1e6);
        let write_only = run_simulation(&cfg, None, Some(&model));
        cfg.read_after_write = true;
        let with_read = run_simulation(&cfg, None, Some(&model));
        assert!(with_read.read_wall > 0.0);
        // The restart burst is recorded in the timeline like the writes.
        assert_eq!(with_read.timeline.len(), write_only.timeline.len() + 1);
        assert!(
            with_read.wall_time > write_only.wall_time,
            "restart {} must cost over write-only {}",
            with_read.wall_time,
            write_only.wall_time
        );
        assert!(
            (with_read.wall_time - write_only.wall_time - with_read.read_wall).abs()
                < 1e-9 + with_read.wall_time * 1e-12,
            "the gap is the read phase"
        );
    }

    #[test]
    fn restart_read_round_trips_materialized_hydro_dumps() {
        // Full hydro engine with materialized payloads: the read plane
        // returns exactly the bytes the writers produced.
        let mut cfg = small(Engine::Hydro);
        cfg.read_after_write = true;
        let r = run_simulation(&cfg, None, None);
        let last = *r.tracker.steps().last().unwrap();
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&last]);
        assert_eq!(r.physical_read_bytes, r.read_bytes, "identity codec");
    }

    #[test]
    fn analysis_read_fetches_a_level_subset() {
        use io_engine::ReadSelection;
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.analysis_read = Some(ReadSelection::Level(1));
        let r = run_simulation(&cfg, None, None);
        // The selection delivers exactly the last dump's level-1 logical
        // bytes — a strict subset of a full restart read.
        let last = *r.tracker.steps().last().unwrap();
        assert!(r.selective_read_bytes > 0);
        assert!(r.selective_read_bytes < r.tracker.bytes_per_step()[&last]);
        assert_eq!(
            r.tracker
                .read_bytes_per_level()
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            vec![1],
            "only level 1 was read"
        );
        assert!(r.selective_read_files > 0);
        assert_eq!(r.reorg_wall, 0.0, "raw layout: no rewrite");

        // Reorganized variant under a storage model: the rewrite costs
        // wall, the selective read itself fetches fewer physical bytes.
        // The byte win is an aggregated-layout story (fpp's in-memory
        // manifest already seeks exactly; the BP index blob does not).
        cfg.backend = io_engine::BackendSpec::Aggregated(2);
        let storage = StorageModel::ideal(1, 1e6);
        let raw = run_simulation(&cfg, None, Some(&storage));
        cfg.reorganize = true;
        let opt = run_simulation(&cfg, None, Some(&storage));
        assert!(opt.reorg_wall > 0.0);
        assert!(opt.reorg_bytes > 0);
        assert_eq!(opt.selective_read_bytes, raw.selective_read_bytes);
        assert!(opt.selective_physical_read_bytes < raw.selective_physical_read_bytes);
        assert!(opt.selective_read_wall < raw.selective_read_wall);
        // But the whole run pays for the rewrite.
        assert!(opt.wall_time > raw.wall_time);
    }

    #[test]
    fn compute_phases_are_deterministic_and_jittered() {
        let mut cfg = small(Engine::Oracle);
        cfg.compute_ns_per_cell = 10_000.0;
        let storage = StorageModel::summit_alpine(0.05);
        let a = run_simulation(&cfg, None, Some(&storage));
        let b = run_simulation(&cfg, None, Some(&storage));
        assert_eq!(a.wall_time, b.wall_time, "seeded jitter is reproducible");
        // Jitter means the wall time differs from the exact noiseless sum.
        let exact: f64 = a
            .steps
            .iter()
            .map(|s| {
                s.cells.iter().sum::<i64>() as f64 * cfg.compute_ns_per_cell
                    / 1e9
                    / cfg.nprocs as f64
            })
            .sum();
        assert!(a.wall_time > exact, "barrier waits on the slowest rank");
    }

    #[test]
    fn jitter_decorrelates_steps_eight_apart() {
        // Regression for the draw-burning bug: `step % 8` RNG burns made
        // steps 8 apart reuse identical jitter. The hash-seeded jitter
        // must draw independently for every (rank, step) pair.
        for rank in 0..4u64 {
            for step in 0..32u64 {
                let a = rank_step_jitter(0x5ED0, rank, step);
                let b = rank_step_jitter(0x5ED0, rank, step + 8);
                assert!(
                    (a - b).abs() > 1e-12,
                    "rank {rank}: steps {step} and {} share jitter {a}",
                    step + 8
                );
            }
        }
        // Range, determinism, and per-rank decorrelation.
        for rank in 0..8u64 {
            for step in 0..64u64 {
                let j = rank_step_jitter(0x5ED0, rank, step);
                assert!((0.97..1.03).contains(&j), "jitter {j} out of range");
                assert_eq!(j, rank_step_jitter(0x5ED0, rank, step));
            }
        }
        assert_ne!(
            rank_step_jitter(0x5ED0, 0, 3),
            rank_step_jitter(0x5ED0, 1, 3),
            "ranks draw independent streams"
        );
    }

    #[test]
    fn fail_restart_repays_compute_but_not_dumps() {
        // The scenario-plane acceptance invariant: a fail@k;restart run
        // re-pays compute for the steps lost since the restart point but
        // never re-writes the dumps it already flushed.
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.compute_ns_per_cell = 40_000.0;
        let storage = StorageModel::ideal(2, 5e7);
        let clean = run_simulation(&cfg, None, Some(&storage));

        cfg.scenario = Some(Scenario::fail_restart(10));
        let failed = run_simulation(&cfg, None, Some(&storage));

        // Write plane identical: no dump is flushed twice.
        assert_eq!(failed.tracker.export(), clean.tracker.export());
        assert_eq!(failed.outputs, clean.outputs);
        assert_eq!(failed.physical_bytes, clean.physical_bytes);
        // Restart point is the plot dump at step 8 (no checkpoints):
        // steps 9 and 10 are computed twice.
        assert_eq!(failed.steps.len(), clean.steps.len() + 2);
        assert_eq!(failed.restarts, 1);
        assert!(failed.read_bytes > 0, "the recovery read is priced");
        assert!(
            failed.compute_wall > clean.compute_wall,
            "lost compute is re-paid"
        );
        assert!(failed.wall_time > clean.wall_time);
        // The replayed steps are byte-identical to the originals (the
        // deterministic engine reproduces the hierarchy).
        assert_eq!(failed.steps[8].cells, failed.steps[12].cells);
        assert_eq!(failed.steps[9].cells, failed.steps[13].cells);
    }

    #[test]
    fn checkpoint_cadence_shortens_the_replay() {
        // With checkpoints every 4 steps, a failure at step 10 restarts
        // from step 8's checkpoint (2 steps lost); without, from the
        // plot dump at step 8 as well — but a checkpointed failure at
        // step 11 loses 3 steps either way while fail@10 with check@5
        // loses none... pin the simple comparison: denser checkpoints
        // mean fewer replayed steps.
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.plot_int = 12; // sparse plots: dumps at 0 and 12 only
        let base_steps = run_simulation(&cfg, None, None).steps.len();

        cfg.scenario = Some(Scenario::parse("write;fail@10;restart").unwrap());
        let sparse = run_simulation(&cfg, None, None);
        // Restart source is the step-0 plot dump: all 10 steps replayed.
        assert_eq!(sparse.steps.len(), base_steps + 10);

        cfg.scenario = Some(Scenario::parse("write;check@4;fail@10;restart").unwrap());
        let dense = run_simulation(&cfg, None, None);
        // Restart source is the step-8 checkpoint: 2 steps replayed.
        assert_eq!(dense.steps.len(), base_steps + 2);
        assert!(dense.check_bytes > 0);
        // The checkpoint read is smaller than the full plot-dump read
        // (4 conserved components vs 22 plot variables).
        assert!(dense.read_bytes < sparse.read_bytes);
    }

    #[test]
    fn in_run_analysis_interleaves_with_writes() {
        use io_engine::ReadSelection;
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.compute_ns_per_cell = 40_000.0;
        cfg.scenario = Some(Scenario::in_run_analysis(2, ReadSelection::Level(1)));
        let storage = StorageModel::ideal(2, 5e7);
        let r = run_simulation(&cfg, None, Some(&storage));
        // Dumps 2 and 4 (steps 4 and 12) are analyzed in-run: the read
        // bursts sit *between* write bursts, not after them all.
        assert!(r.selective_read_bytes > 0);
        assert_eq!(r.timeline.len(), 6, "4 write + 2 analysis bursts");
        let bursts = r.timeline.bursts();
        // The first analysis burst (of output counter 2) ends before the
        // next write burst (counter 3) starts.
        assert!(bursts[2].t_end <= bursts[3].t_start + 1e-12);
        assert_eq!(
            bursts.iter().map(|b| b.step).collect::<Vec<_>>(),
            vec![1, 2, 2, 3, 4, 4],
            "write/read interleave by output counter"
        );
    }

    #[test]
    fn readall_scenario_reads_every_dump() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.scenario = Some(Scenario::parse("write;readall").unwrap());
        let r = run_simulation(&cfg, None, None);
        assert_eq!(r.restarts, 4, "all four dumps read back");
        assert_eq!(
            r.tracker.total_read_bytes(),
            r.tracker.total_bytes(),
            "full campaign read-back"
        );
    }

    #[test]
    fn streaming_backend_ships_over_the_link_not_storage() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        let fpp = run_simulation(&cfg, None, None);
        cfg.backend = io_engine::BackendSpec::parse("streaming").unwrap();
        let model = StorageModel::ideal(2, 1e6);
        let streamed = run_simulation(&cfg, None, Some(&model));
        // Tracker-plane invariance: logical totals identical to storage.
        assert_eq!(streamed.tracker.export(), fpp.tracker.export());
        assert_eq!(streamed.logical_bytes, fpp.logical_bytes);
        // Nothing touches the storage plane.
        assert_eq!(streamed.physical_bytes, 0);
        assert_eq!(streamed.files_written, 0);
        assert_eq!(streamed.timeline.len(), 0, "no storage bursts");
        // The network plane is priced instead (identity codec: shipped
        // bytes equal the logical payload).
        assert_eq!(streamed.net_bytes, streamed.logical_bytes);
        assert!(streamed.net_wall > 0.0);
        assert_eq!(streamed.window_stall, 0.0, "unbounded window");
        // The wall decomposition still closes: streamed ship time lives
        // inside plot_wall, where stored dumps' bursts live.
        assert!(
            (streamed.compute_wall + streamed.plot_wall + streamed.drain_wall - streamed.wall_time)
                .abs()
                < 1e-9 + streamed.wall_time * 1e-12
        );
        assert!(streamed.plot_wall >= streamed.net_wall);
    }

    #[test]
    fn streamed_analysis_reads_cost_zero_physical_bytes() {
        use io_engine::ReadSelection;
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.scenario = Some(Scenario::in_run_analysis(2, ReadSelection::Level(1)));
        let stored = run_simulation(&cfg, None, None);
        cfg.backend = io_engine::BackendSpec::parse("streaming").unwrap();
        let streamed = run_simulation(&cfg, None, None);
        // Logical selection volume is backend-invariant...
        assert!(streamed.selective_read_bytes > 0);
        assert_eq!(streamed.selective_read_bytes, stored.selective_read_bytes);
        assert_eq!(
            streamed.tracker.total_read_bytes(),
            stored.tracker.total_read_bytes()
        );
        // ...but the streamed reads come from the consumer window, not
        // storage: zero physical read bytes, zero files opened.
        assert_eq!(streamed.selective_physical_read_bytes, 0);
        assert_eq!(streamed.selective_read_files, 0);
        assert!(stored.selective_physical_read_bytes > 0);
    }

    #[test]
    fn checkpoints_stream_like_plot_dumps() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.check_int = 4;
        cfg.backend = io_engine::BackendSpec::parse("streaming").unwrap();
        let r = run_simulation(&cfg, None, None);
        // Checkpoint state ships over the link too: no physical bytes,
        // but the checkpoint plane's wall is still charged.
        assert_eq!(r.check_bytes, 0);
        assert_eq!(r.check_files, 0);
        assert!(r.check_wall > 0.0);
        assert!(r.net_bytes > 0);
    }

    #[test]
    fn slow_consumer_back_pressure_stalls_the_producer() {
        // Satellite regression: a deliberately slow consumer (10 MB/s
        // behind a 100 MB/s link) must fill the bounded 1 MiB window and
        // stall the producer on the simulated clock — strictly slower
        // than the same run with an unbounded window, with the whole gap
        // attributed to `window_stall`.
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.backend = io_engine::BackendSpec::parse("streaming:100:1:10").unwrap();
        let bounded = run_simulation(&cfg, None, None);
        cfg.backend = io_engine::BackendSpec::parse("streaming:100:0:10").unwrap();
        let unbounded = run_simulation(&cfg, None, None);
        assert!(bounded.window_stall > 0.0, "the window must back-pressure");
        assert_eq!(unbounded.window_stall, 0.0, "unbounded: no stall");
        assert_eq!(bounded.net_bytes, unbounded.net_bytes);
        assert!(
            bounded.wall_time > unbounded.wall_time,
            "bounded {} must be strictly slower than unbounded {}",
            bounded.wall_time,
            unbounded.wall_time
        );
        // The entire gap is the stall (transfers and compute match).
        assert!(
            (bounded.wall_time - unbounded.wall_time - bounded.window_stall).abs()
                < 1e-9 + bounded.wall_time * 1e-12,
            "the wall gap is exactly the window stall"
        );
    }

    #[test]
    fn stop_time_halt_skips_the_failure_but_keeps_trailing_reads() {
        let mut cfg = small(Engine::Oracle);
        cfg.account_only = true;
        cfg.stop_time = 1e-12; // halts after step 1
        cfg.scenario = Some(Scenario::parse("write;fail@10;restart;restart").unwrap());
        let r = run_simulation(&cfg, None, None);
        assert_eq!(r.steps.len(), 1);
        // The failure at step 10 never happened; the trailing restart
        // still reads the newest dump actually written (step 0's).
        assert_eq!(r.restarts, 1);
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&1]);
    }
}
