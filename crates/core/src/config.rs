//! Full run configuration: the Castro input-file surface of Listing 2.

use amr_mesh::{DistributionStrategy, GridParams};
use hydro::{SedovProblem, TagCriteria, TimestepControl};
use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario, ScenarioOp};
use serde::{Deserialize, Serialize};

/// Which engine generates the grid hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Full MUSCL-HLLC solve (exact; used up to ~512^2 level-0 cells).
    Hydro,
    /// Sedov-Taylor similarity oracle (paper-scale meshes).
    Oracle,
}

/// A Castro-Sedov run description (Table I + Listing 2 + execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CastroSedovConfig {
    /// Run label (e.g. `case4_cfl0.4_maxl4`).
    pub name: String,
    /// Hierarchy engine.
    pub engine: Engine,
    /// `amr.n_cell` per direction.
    pub n_cell: i64,
    /// `amr.max_level`.
    pub max_level: usize,
    /// `amr.max_step`.
    pub max_step: u64,
    /// `stop_time`.
    pub stop_time: f64,
    /// `amr.plot_int` (steps between plot dumps).
    pub plot_int: u64,
    /// `amr.check_int` (steps between checkpoint dumps; 0 disables).
    /// The paper studies plot files only, so the default is 0; Listing 2
    /// sets 20.
    pub check_int: u64,
    /// Checkpoint directory prefix (`amr.check_file`).
    pub check_file: String,
    /// `amr.regrid_int`.
    pub regrid_int: u64,
    /// Grid-generation parameters.
    pub grid: GridParams,
    /// MPI tasks.
    pub nprocs: usize,
    /// Box-to-rank strategy.
    pub strategy: DistributionStrategy,
    /// Time-step control (`castro.cfl` etc.).
    pub ctrl: TimestepControl,
    /// Tagging criteria.
    pub tag: TagCriteria,
    /// Problem setup.
    pub problem: SedovProblem,
    /// Plotfile directory prefix (`amr.plot_file`).
    pub plot_file: String,
    /// Per-cell compute cost in nanoseconds (drives the compute phase of
    /// the burst timeline; a platform constant, not an I/O quantity).
    pub compute_ns_per_cell: f64,
    /// When true, account plotfile bytes exactly without materializing
    /// payloads (always true for the oracle engine).
    pub account_only: bool,
    /// I/O backend the plot dumps write through (the campaign's backend
    /// axis): N-to-N, BP-style aggregation, deferred staging, or
    /// in-transit streaming over the modeled interconnect.
    pub backend: BackendSpec,
    /// In-situ compression codec applied to plot data (the campaign's
    /// compression axis, crossed with the backend axis).
    pub codec: CodecSpec,
    /// When true, the run restart-reads its last plot dump back through
    /// the backend after the simulation finishes (the campaign's
    /// read-after-write axis); `RunResult`/`RunSummary` then carry read
    /// bytes and read wall-clock.
    ///
    /// *Deprecated boolean axis:* compiles to the `write;restart`
    /// scenario (see [`CastroSedovConfig::effective_scenario`]); prefer
    /// setting [`CastroSedovConfig::scenario`] directly. Ignored when
    /// `scenario` is set.
    pub read_after_write: bool,
    /// When set, the run performs a *selective* analysis read of its
    /// last plot dump after the simulation (and any restart phase):
    /// one level, one field, or a spatial key box — the campaign's
    /// analysis-read axis. `RunResult`/`RunSummary` then carry
    /// selective-read bytes and wall-clock.
    ///
    /// *Deprecated boolean axis:* compiles to a trailing `analyze:SEL`
    /// scenario op; prefer [`CastroSedovConfig::scenario`]. Ignored when
    /// `scenario` is set.
    pub analysis_read: Option<ReadSelection>,
    /// When true (and `analysis_read` is set), the last dump is first
    /// rewritten from its write-optimized layout into a read-optimized
    /// one (`io_engine::Reorganizer`) and the analysis read is served
    /// from the reorganized layout; the rewrite's read+write bursts are
    /// charged to the simulated clock like any other I/O.
    ///
    /// *Deprecated boolean axis:* compiles to the `,reorg` suffix of the
    /// trailing `analyze:` op; prefer [`CastroSedovConfig::scenario`].
    /// Ignored when `scenario` is set.
    pub reorganize: bool,
    /// The run's phase program (the scenario plane): how writes,
    /// checkpoints, mid-run failures/restarts, and analysis reads
    /// interleave. `None` compiles the legacy boolean axes above into
    /// their equivalent scenario ([`CastroSedovConfig::effective_scenario`]),
    /// so old configs keep working bit-identically.
    pub scenario: Option<Scenario>,
}

impl Default for CastroSedovConfig {
    /// Listing 2 defaults on a small mesh.
    fn default() -> Self {
        Self {
            name: "sedov".to_string(),
            engine: Engine::Hydro,
            n_cell: 64,
            max_level: 2,
            max_step: 40,
            stop_time: 0.1,
            plot_int: 2,
            check_int: 0,
            check_file: "sedov_2d_cyl_in_cart_chk".to_string(),
            regrid_int: 2,
            grid: GridParams {
                ref_ratio: 2,
                blocking_factor: 8,
                max_grid_size: 256,
                n_error_buf: 2,
                grid_eff: 0.7,
            },
            nprocs: 4,
            strategy: DistributionStrategy::Sfc,
            ctrl: TimestepControl::default(),
            tag: TagCriteria::default(),
            problem: SedovProblem::default(),
            plot_file: "sedov_2d_cyl_in_cart_plt".to_string(),
            compute_ns_per_cell: 100.0,
            account_only: false,
            backend: BackendSpec::default(),
            codec: CodecSpec::default(),
            read_after_write: false,
            analysis_read: None,
            reorganize: false,
            scenario: None,
        }
    }
}

impl CastroSedovConfig {
    /// `castro.cfl` accessor (the knob Table I varies).
    pub fn cfl(&self) -> f64 {
        self.ctrl.cfl
    }

    /// The input-file parameter echo written into `job_info` (and used by
    /// the Table I bench).
    pub fn inputs(&self) -> Vec<(String, String)> {
        vec![
            ("max_step".into(), self.max_step.to_string()),
            ("stop_time".into(), format!("{}", self.stop_time)),
            (
                "amr.n_cell".into(),
                format!("{} {}", self.n_cell, self.n_cell),
            ),
            ("amr.max_level".into(), self.max_level.to_string()),
            ("amr.plot_int".into(), self.plot_int.to_string()),
            ("amr.check_int".into(), self.check_int.to_string()),
            ("amr.regrid_int".into(), self.regrid_int.to_string()),
            (
                "amr.blocking_factor".into(),
                self.grid.blocking_factor.to_string(),
            ),
            (
                "amr.max_grid_size".into(),
                self.grid.max_grid_size.to_string(),
            ),
            ("amr.ref_ratio".into(), self.grid.ref_ratio.to_string()),
            ("castro.cfl".into(), format!("{}", self.ctrl.cfl)),
            (
                "castro.init_shrink".into(),
                format!("{}", self.ctrl.init_shrink),
            ),
            (
                "castro.change_max".into(),
                format!("{}", self.ctrl.change_max),
            ),
            ("nprocs".into(), self.nprocs.to_string()),
        ]
    }

    /// The model-facing input subset (Table I).
    pub fn amr_inputs(&self) -> model::AmrInputs {
        model::AmrInputs {
            max_step: self.max_step,
            n_cell: (self.n_cell, self.n_cell),
            max_level: self.max_level,
            plot_int: self.plot_int,
            cfl: self.ctrl.cfl,
            nprocs: self.nprocs,
        }
    }

    /// Plot directory name for the dump at `step`
    /// (`sedov_2d_cyl_in_cart_plt00020` style).
    pub fn plot_dir(&self, step: u64) -> String {
        format!("/{}{:05}", self.plot_file, step)
    }

    /// Checkpoint directory name for the dump at `step`
    /// (`sedov_2d_cyl_in_cart_chk00020` style).
    pub fn check_dir(&self, step: u64) -> String {
        format!("/{}{:05}", self.check_file, step)
    }

    /// The scenario this run executes: [`CastroSedovConfig::scenario`]
    /// when set, otherwise the legacy boolean axes
    /// (`read_after_write`, `analysis_read`, `reorganize`) compiled into
    /// their equivalent program — `write`, plus a trailing `restart`
    /// and/or `analyze:SEL[,reorg]`. The checkpoint cadence stays on
    /// [`CastroSedovConfig::check_int`] unless the scenario carries a
    /// `check@K` override.
    pub fn effective_scenario(&self) -> Scenario {
        if let Some(s) = &self.scenario {
            return s.clone();
        }
        let mut ops = vec![ScenarioOp::Write];
        if self.read_after_write {
            ops.push(ScenarioOp::Restart);
        }
        if let Some(sel) = &self.analysis_read {
            ops.push(ScenarioOp::Analyze {
                sel: sel.clone(),
                reorganize: self.reorganize,
            });
        }
        Scenario { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_listing2() {
        let cfg = CastroSedovConfig::default();
        assert_eq!(cfg.grid.ref_ratio, 2);
        assert_eq!(cfg.grid.blocking_factor, 8);
        assert_eq!(cfg.grid.max_grid_size, 256);
        assert_eq!(cfg.regrid_int, 2);
        assert_eq!(cfg.ctrl.cfl, 0.5);
        assert_eq!(cfg.ctrl.init_shrink, 0.01);
        assert_eq!(cfg.ctrl.change_max, 1.1);
        assert_eq!(cfg.stop_time, 0.1);
        assert_eq!(cfg.plot_file, "sedov_2d_cyl_in_cart_plt");
    }

    #[test]
    fn inputs_echo_key_parameters() {
        let cfg = CastroSedovConfig::default();
        let inputs = cfg.inputs();
        let get = |k: &str| {
            inputs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("amr.n_cell"), "64 64");
        assert_eq!(get("castro.cfl"), "0.5");
        assert_eq!(get("amr.max_level"), "2");
    }

    #[test]
    fn plot_dir_format_matches_fig2() {
        let cfg = CastroSedovConfig::default();
        assert_eq!(cfg.plot_dir(20), "/sedov_2d_cyl_in_cart_plt00020");
        assert_eq!(cfg.plot_dir(0), "/sedov_2d_cyl_in_cart_plt00000");
    }

    #[test]
    fn legacy_booleans_compile_to_scenarios() {
        let mut cfg = CastroSedovConfig::default();
        assert_eq!(cfg.effective_scenario().name(), "write");
        cfg.read_after_write = true;
        assert_eq!(cfg.effective_scenario().name(), "write;restart");
        cfg.analysis_read = Some(ReadSelection::Level(1));
        cfg.reorganize = true;
        assert_eq!(
            cfg.effective_scenario().name(),
            "write;restart;analyze:level:1,reorg"
        );
        // An explicit scenario wins over the booleans.
        cfg.scenario = Some(Scenario::fail_restart(7));
        assert_eq!(cfg.effective_scenario().name(), "write;fail@7;restart");
    }

    #[test]
    fn config_with_scenario_round_trips_serde() {
        use serde::{Deserialize as _, Serialize as _};
        let cfg = CastroSedovConfig {
            scenario: Some(Scenario::parse("write;check@4;fail@10;restart").unwrap()),
            ..Default::default()
        };
        let v = cfg.to_value();
        let back = CastroSedovConfig::from_value(&v).unwrap();
        assert_eq!(back.scenario, cfg.scenario);
        assert_eq!(back.name, cfg.name);
    }

    #[test]
    fn amr_inputs_projection() {
        let cfg = CastroSedovConfig::default();
        let i = cfg.amr_inputs();
        assert_eq!(i.n_cell, (64, 64));
        assert_eq!(i.plot_int, 2);
        assert_eq!(i.nprocs, 4);
    }
}
