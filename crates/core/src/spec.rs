//! The declarative experiment grammar: [`ExperimentSpec`].
//!
//! The paper's 47-run Summit campaign — and every sweep this repo grew
//! after it — is a cross product of a few named axes: I/O backend,
//! compression codec, read mode, analysis read pattern, storage layout,
//! scenario program, task count, AMR rung, storage profile. The five
//! `*_sweep` functions in [`crate::campaign`] hand-enumerated five
//! corners of that product; this module replaces them with one compiler.
//! An `ExperimentSpec` *declares* the matrix (builder API or a TOML
//! file), and [`ExperimentSpec::compile`] turns it into
//! [`SpecCell`]s — concrete [`CastroSedovConfig`]s with deterministic,
//! collision-checked run labels and a content hash the results store
//! ([`crate::store`]) keys persistence and resume on.
//!
//! The grammar follows the benchpark experiment-spec shape: axes are
//! crossed in declaration order (last declared varies fastest, exactly
//! like the nested loops the legacy sweeps wrote), `zip` groups advance
//! member axes in lockstep instead of crossing them, `exclude` tables
//! drop cells whose canonical axis values match, and a *scaling mode*
//! gives the `scale` axis its meaning: strong (vary ranks at fixed
//! problem), weak (vary ranks at fixed cells-per-rank), or throughput
//! (vary tenant count on the shared machine-room fabric).
//!
//! Label spellings are bit-compatible with the legacy sweeps — the
//! shims in `campaign.rs` are property-tested equal — so labels already
//! persisted in results stores stay addressable.
//!
//! ```
//! use amrproxy::spec::ExperimentSpec;
//! use amrproxy::CastroSedovConfig;
//! use io_engine::{BackendSpec, CodecSpec};
//!
//! let base = CastroSedovConfig {
//!     name: "sedov".into(),
//!     ..Default::default()
//! };
//! let cells = ExperimentSpec::new("smoke")
//!     .base(base)
//!     .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)])
//!     .codecs(&[CodecSpec::Identity, CodecSpec::LossyQuant(8)])
//!     .exclude(&[("backend", "agg:4"), ("codec", "quant:8")])
//!     .compile()
//!     .unwrap();
//! let labels: Vec<&str> = cells.iter().map(|c| c.config.name.as_str()).collect();
//! assert_eq!(
//!     labels,
//!     ["sedov_fpp_identity", "sedov_fpp_quant8", "sedov_agg4_identity"]
//! );
//! ```

use crate::config::CastroSedovConfig;
use io_engine::grammar::{disambiguate_tags, MatrixShape, TomlDoc, TomlSection, TomlValue};
use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario};

/// What the `scale` axis varies (benchpark's experiment modes).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ScalingMode {
    /// Fixed problem, vary ranks: `scale = v` sets `nprocs = v`
    /// (label tag `p{v}`).
    #[default]
    Strong,
    /// Fixed cells per rank, vary ranks: `scale = v` sets `nprocs = v`
    /// and grows `n_cell` by `sqrt(v / base_nprocs)` (2-D mesh), snapped
    /// up to a blocking-factor multiple (label tag `p{v}w`).
    Weak,
    /// Fixed workload, vary tenancy: `scale = v` runs `v` clones of the
    /// cell concurrently on one shared storage fabric (label tag
    /// `x{v}`); the clones form one fabric group in [`SpecCell`].
    Throughput,
}

impl ScalingMode {
    /// Parses a mode spelling (`strong` / `weak` / `throughput`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strong" => Ok(Self::Strong),
            "weak" => Ok(Self::Weak),
            "throughput" => Ok(Self::Throughput),
            other => Err(format!(
                "unknown scaling mode '{other}' (strong, weak, throughput)"
            )),
        }
    }

    /// Canonical spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Strong => "strong",
            Self::Weak => "weak",
            Self::Throughput => "throughput",
        }
    }
}

/// A named storage model an axis can sweep over (the machine half of a
/// cell: the same workload priced on different machines).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum StorageProfile {
    /// `iosim::StorageModel::ideal(servers, bandwidth)`.
    Ideal {
        /// Server count.
        servers: usize,
        /// Per-server bandwidth, bytes/s.
        bandwidth: f64,
    },
    /// `iosim::StorageModel::summit_alpine(scale)`.
    Summit {
        /// Fraction of the full Alpine deployment, in `(0, 1]`.
        scale: f64,
    },
}

impl StorageProfile {
    /// Parses `ideal:<servers>:<bandwidth>` or `summit:<scale>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        match parts.next() {
            Some("ideal") => {
                let servers = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("ideal:<servers>:<bandwidth>, got '{s}'"))?;
                let bandwidth = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("ideal:<servers>:<bandwidth>, got '{s}'"))?;
                Ok(Self::Ideal { servers, bandwidth })
            }
            Some("summit") => {
                let scale: f64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("summit:<scale>, got '{s}'"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(format!("summit scale must be in (0, 1], got {scale}"));
                }
                Ok(Self::Summit { scale })
            }
            _ => Err(format!("unknown storage profile '{s}' (ideal, summit)")),
        }
    }

    /// Canonical spelling (`ideal:8:2.5e8`, `summit:0.5`).
    pub fn name(&self) -> String {
        match self {
            Self::Ideal { servers, bandwidth } => format!("ideal:{servers}:{bandwidth:e}"),
            Self::Summit { scale } => format!("summit:{scale}"),
        }
    }

    /// Name-safe label tag (`ideal82p5e8`, `summit0p5`).
    pub fn tag(&self) -> String {
        self.name().replace(':', "").replace('.', "p")
    }

    /// Builds the concrete storage model.
    pub fn build(&self) -> iosim::StorageModel {
        match *self {
            Self::Ideal { servers, bandwidth } => iosim::StorageModel::ideal(servers, bandwidth),
            Self::Summit { scale } => iosim::StorageModel::summit_alpine(scale),
        }
    }
}

/// Read mode of a cell: write-only or write + restart read-back (the
/// legacy `restart_sweep` doubling).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Write-only (no label tag — matches the legacy spelling where the
    /// write half of `restart_sweep` carries no suffix).
    Write,
    /// Write, then restart-read the last dump (`_restart` suffix).
    Restart,
}

/// Storage layout an analysis read is served from (the legacy
/// `analysis_sweep` raw/reorg doubling).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// The raw written layout (`_raw` suffix).
    Raw,
    /// The read-optimized reorganized layout (`_reorg` suffix).
    Reorg,
}

/// How a dump leaves the application — the `delivery` axis. A coarse
/// three-way cut across the backend space for sweeps that compare
/// delivery *strategies* rather than backend parameters: each value maps
/// to a canonical backend (use the `backend` axis for tuned variants).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Synchronous storage writes ([`BackendSpec::FilePerProcess`]).
    Storage,
    /// In-transit streaming over the modeled interconnect
    /// ([`BackendSpec::Streaming`] with the default link).
    Stream,
    /// Overlapped burst-buffer staging ([`BackendSpec::Deferred`]).
    Deferred,
}

impl Delivery {
    /// The canonical backend this delivery strategy maps to.
    pub fn backend(self) -> BackendSpec {
        match self {
            Delivery::Storage => BackendSpec::FilePerProcess,
            Delivery::Stream => BackendSpec::Streaming(io_engine::StreamSpec::default()),
            Delivery::Deferred => BackendSpec::Deferred(1),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Delivery::Storage => "storage",
            Delivery::Stream => "stream",
            Delivery::Deferred => "deferred",
        }
    }
}

/// One named axis with its values. Declaration order is loop order.
#[derive(Clone, Debug)]
enum Axis {
    Backend(Vec<BackendSpec>),
    Codec(Vec<CodecSpec>),
    Mode(Vec<RunMode>),
    Pattern(Vec<ReadSelection>),
    Layout(Vec<Layout>),
    Scenario(Vec<Scenario>),
    Scale(Vec<usize>),
    Rung(Vec<i64>),
    Storage(Vec<StorageProfile>),
    Delivery(Vec<Delivery>),
}

impl Axis {
    fn key(&self) -> &'static str {
        match self {
            Axis::Backend(_) => "backend",
            Axis::Codec(_) => "codec",
            Axis::Mode(_) => "mode",
            Axis::Pattern(_) => "pattern",
            Axis::Layout(_) => "layout",
            Axis::Scenario(_) => "scenario",
            Axis::Scale(_) => "scale",
            Axis::Rung(_) => "rung",
            Axis::Storage(_) => "storage",
            Axis::Delivery(_) => "delivery",
        }
    }

    fn len(&self) -> usize {
        match self {
            Axis::Backend(v) => v.len(),
            Axis::Codec(v) => v.len(),
            Axis::Mode(v) => v.len(),
            Axis::Pattern(v) => v.len(),
            Axis::Layout(v) => v.len(),
            Axis::Scenario(v) => v.len(),
            Axis::Scale(v) => v.len(),
            Axis::Rung(v) => v.len(),
            Axis::Storage(v) => v.len(),
            Axis::Delivery(v) => v.len(),
        }
    }

    /// Canonical (lossless) spelling of value `i` — what excludes match
    /// on and what collision errors print.
    fn value_name(&self, i: usize) -> String {
        match self {
            Axis::Backend(v) => v[i].name(),
            Axis::Codec(v) => v[i].name(),
            Axis::Mode(v) => match v[i] {
                RunMode::Write => "write".to_string(),
                RunMode::Restart => "restart".to_string(),
            },
            Axis::Pattern(v) => v[i].name(),
            Axis::Layout(v) => match v[i] {
                Layout::Raw => "raw".to_string(),
                Layout::Reorg => "reorg".to_string(),
            },
            Axis::Scenario(v) => v[i].name(),
            Axis::Scale(v) => v[i].to_string(),
            Axis::Rung(v) => v[i].to_string(),
            Axis::Storage(v) => v[i].name(),
            Axis::Delivery(v) => v[i].name().to_string(),
        }
    }

    /// Name-safe label tags for every value, matching the legacy sweep
    /// spellings exactly (lossy flattenings are index-disambiguated
    /// with the same prefix characters the sweeps used).
    fn tags(&self, mode: ScalingMode) -> Vec<String> {
        match self {
            Axis::Backend(v) => v.iter().map(|b| b.name().replace(':', "")).collect(),
            // Codec spellings keep '.' distinct ('p', as in "2p5") so
            // fractional Rle ratios cannot collide (2.1 vs 21).
            Axis::Codec(v) => v
                .iter()
                .map(|c| c.name().replace(':', "").replace('.', "p"))
                .collect(),
            Axis::Mode(v) => v
                .iter()
                .map(|m| match m {
                    RunMode::Write => String::new(),
                    RunMode::Restart => "restart".to_string(),
                })
                .collect(),
            Axis::Pattern(v) => {
                let mut tags: Vec<String> = v
                    .iter()
                    .map(|p| {
                        p.name()
                            .replace(':', "")
                            .replace('-', "to")
                            .replace([',', '/', '.'], "_")
                    })
                    .collect();
                disambiguate_tags(&mut tags, 'p');
                tags
            }
            Axis::Layout(v) => v
                .iter()
                .map(|l| match l {
                    Layout::Raw => "raw".to_string(),
                    Layout::Reorg => "reorg".to_string(),
                })
                .collect(),
            Axis::Scenario(v) => {
                let mut tags: Vec<String> = v
                    .iter()
                    .map(|s| {
                        s.name()
                            .replace([';', ','], "_")
                            .replace('-', "to")
                            .replace([':', '@', '.', '/'], "")
                    })
                    .collect();
                disambiguate_tags(&mut tags, 's');
                tags
            }
            Axis::Scale(v) => v
                .iter()
                .map(|s| match mode {
                    ScalingMode::Strong => format!("p{s}"),
                    ScalingMode::Weak => format!("p{s}w"),
                    ScalingMode::Throughput => format!("x{s}"),
                })
                .collect(),
            Axis::Rung(v) => v.iter().map(|n| format!("n{n}")).collect(),
            Axis::Storage(v) => v.iter().map(StorageProfile::tag).collect(),
            Axis::Delivery(v) => v.iter().map(|d| d.name().to_string()).collect(),
        }
    }
}

/// Errors a spec can fail to compile with.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// TOML or value parse failure.
    Parse(String),
    /// Two compiled cells produced the same run label; the payload names
    /// both cells by their canonical axis coordinates.
    LabelCollision {
        /// The clashing label.
        label: String,
        /// Canonical `axis=value` coordinates of the first cell.
        first: String,
        /// Canonical `axis=value` coordinates of the second cell.
        second: String,
    },
    /// A zip or exclude referenced an axis the spec does not declare.
    UnknownAxis(String),
    /// Zip group validation failed (unequal lengths, overlap, ...).
    Zip(String),
    /// The spec has no base configuration.
    NoBase,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "spec parse error: {msg}"),
            SpecError::LabelCollision {
                label,
                first,
                second,
            } => write!(
                f,
                "run label collision: '{label}' is produced by both cell ({first}) \
                 and cell ({second}); rename the base or add a distinguishing axis"
            ),
            SpecError::UnknownAxis(name) => {
                write!(f, "spec references unknown axis '{name}'")
            }
            SpecError::Zip(msg) => write!(f, "zip group error: {msg}"),
            SpecError::NoBase => write!(f, "spec has no base configuration"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One compiled cell of an experiment matrix: the concrete run
/// configuration, the machine it is priced on, and the identity the
/// results store persists it under.
#[derive(Clone, Debug)]
pub struct SpecCell {
    /// The fully-applied run configuration (label in `config.name`).
    pub config: CastroSedovConfig,
    /// Storage profile from the `storage` axis (`None` = the executor's
    /// default storage).
    pub storage: Option<StorageProfile>,
    /// Concurrent clones of this cell on a shared fabric (1 outside
    /// throughput scaling).
    pub tenants: usize,
    /// Content key: a hash of the canonical config JSON, storage name,
    /// and tenancy — what the append-only store indexes persistence and
    /// resume by. Identical cell, identical key, across processes.
    pub key: String,
    /// Solo-profile key: the same content hash with the display label
    /// cleared and tenancy fixed at 1 — label- and tenancy-independent,
    /// so every throughput rung over one base shares it. The parallel
    /// executor memoizes solo shadow replays under this key
    /// ([`iosim::SoloMemo`]).
    pub solo_key: String,
    /// Canonical `(axis, value)` coordinates (base first) — the
    /// queryable identity of the cell, also used by exclude matching
    /// and collision diagnostics.
    pub coords: Vec<(String, String)>,
}

impl SpecCell {
    fn coords_string(&self) -> String {
        self.coords
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A declarative experiment: bases × axes, zips, excludes, scaling mode.
/// See the module docs for the grammar; build with the fluent API or
/// [`ExperimentSpec::from_toml`].
#[derive(Clone, Debug, Default)]
pub struct ExperimentSpec {
    /// Spec name (campaigns in the store are grouped under it).
    pub name: String,
    bases: Vec<CastroSedovConfig>,
    axes: Vec<Axis>,
    zips: Vec<Vec<String>>,
    excludes: Vec<Vec<(String, String)>>,
    mode: ScalingMode,
}

impl ExperimentSpec {
    /// New empty spec.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Spec over existing base configurations (the legacy sweeps'
    /// calling convention: bases are the outermost loop).
    pub fn over(name: impl Into<String>, bases: &[CastroSedovConfig]) -> Self {
        Self {
            name: name.into(),
            bases: bases.to_vec(),
            ..Default::default()
        }
    }

    /// Adds one base configuration.
    pub fn base(mut self, cfg: CastroSedovConfig) -> Self {
        self.bases.push(cfg);
        self
    }

    /// Declares the backend axis.
    pub fn backends(mut self, backends: &[BackendSpec]) -> Self {
        self.axes.push(Axis::Backend(backends.to_vec()));
        self
    }

    /// Declares the codec axis.
    pub fn codecs(mut self, codecs: &[CodecSpec]) -> Self {
        self.axes.push(Axis::Codec(codecs.to_vec()));
        self
    }

    /// Declares the read-mode axis (write / restart).
    pub fn modes(mut self, modes: &[RunMode]) -> Self {
        self.axes.push(Axis::Mode(modes.to_vec()));
        self
    }

    /// Declares the analysis read-pattern axis.
    pub fn patterns(mut self, patterns: &[ReadSelection]) -> Self {
        self.axes.push(Axis::Pattern(patterns.to_vec()));
        self
    }

    /// Declares the layout axis (raw / reorganized).
    pub fn layouts(mut self, layouts: &[Layout]) -> Self {
        self.axes.push(Axis::Layout(layouts.to_vec()));
        self
    }

    /// Declares the scenario axis.
    pub fn scenarios(mut self, scenarios: &[Scenario]) -> Self {
        self.axes.push(Axis::Scenario(scenarios.to_vec()));
        self
    }

    /// Declares the scale axis; what it varies depends on
    /// [`ExperimentSpec::scaling`].
    pub fn scales(mut self, scales: &[usize]) -> Self {
        self.axes.push(Axis::Scale(scales.to_vec()));
        self
    }

    /// Declares the AMR-rung axis (level-0 `n_cell` per direction).
    pub fn rungs(mut self, rungs: &[i64]) -> Self {
        self.axes.push(Axis::Rung(rungs.to_vec()));
        self
    }

    /// Declares the storage-profile axis.
    pub fn storages(mut self, storages: &[StorageProfile]) -> Self {
        self.axes.push(Axis::Storage(storages.to_vec()));
        self
    }

    /// Declares the delivery axis (storage / stream / deferred).
    pub fn deliveries(mut self, deliveries: &[Delivery]) -> Self {
        self.axes.push(Axis::Delivery(deliveries.to_vec()));
        self
    }

    /// Zips the named axes: they advance in lockstep instead of
    /// crossing (members must have equal lengths).
    pub fn zip(mut self, members: &[&str]) -> Self {
        self.zips
            .push(members.iter().map(|m| m.to_string()).collect());
        self
    }

    /// Excludes every cell whose canonical axis values match all the
    /// given `(axis, value)` clauses (values spelled canonically:
    /// `agg:4`, `quant:8`, `level:1`, `write;restart`, ...).
    pub fn exclude(mut self, clauses: &[(&str, &str)]) -> Self {
        self.excludes.push(
            clauses
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        self
    }

    /// Sets the scaling mode the `scale` axis is interpreted under.
    pub fn scaling(mut self, mode: ScalingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Compiles the spec: enumerates the (zipped) matrix per base, in
    /// declaration order with the last axis varying fastest, applies
    /// excludes, stamps deterministic labels, and rejects collisions.
    pub fn compile(&self) -> Result<Vec<SpecCell>, SpecError> {
        if self.bases.is_empty() {
            return Err(SpecError::NoBase);
        }
        for zip in &self.zips {
            for member in zip {
                if !self.axes.iter().any(|a| a.key() == member.as_str()) {
                    return Err(SpecError::UnknownAxis(member.clone()));
                }
            }
        }
        for clause in self.excludes.iter().flatten() {
            if !self.axes.iter().any(|a| a.key() == clause.0) {
                return Err(SpecError::UnknownAxis(clause.0.clone()));
            }
        }
        let mut shape = MatrixShape::new();
        for axis in &self.axes {
            shape = shape.axis(axis.key(), axis.len());
        }
        for zip in &self.zips {
            let members: Vec<&str> = zip.iter().map(String::as_str).collect();
            shape = shape.zip(&members);
        }
        let indices = shape.enumerate().map_err(SpecError::Zip)?;
        let tags: Vec<Vec<String>> = self.axes.iter().map(|a| a.tags(self.mode)).collect();

        let mut cells = Vec::with_capacity(self.bases.len() * indices.len());
        for base in &self.bases {
            'cell: for cell_idx in &indices {
                let mut coords = vec![("base".to_string(), base.name.clone())];
                for (axis, &i) in self.axes.iter().zip(cell_idx) {
                    coords.push((axis.key().to_string(), axis.value_name(i)));
                }
                for clauses in &self.excludes {
                    let hit = clauses
                        .iter()
                        .all(|(k, v)| coords.iter().any(|(ck, cv)| ck == k && cv == v));
                    if !clauses.is_empty() && hit {
                        continue 'cell;
                    }
                }
                let mut label = base.name.clone();
                for (a, &i) in cell_idx.iter().enumerate() {
                    let tag = &tags[a][i];
                    if !tag.is_empty() {
                        label.push('_');
                        label.push_str(tag);
                    }
                }
                let (config, storage, tenants) = self.apply(base, cell_idx, label.clone());
                let key = cell_key(&config, storage.as_ref(), tenants);
                let solo_key = {
                    let mut solo = config.clone();
                    solo.name = String::new();
                    cell_key(&solo, storage.as_ref(), 1)
                };
                cells.push(SpecCell {
                    config,
                    storage,
                    tenants,
                    key,
                    solo_key,
                    coords,
                });
            }
        }
        let mut seen: Vec<(&str, usize)> = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            if let Some(&(_, j)) = seen.iter().find(|(l, _)| *l == cell.config.name) {
                return Err(SpecError::LabelCollision {
                    label: cell.config.name.clone(),
                    first: cells[j].coords_string(),
                    second: cell.coords_string(),
                });
            }
            seen.push((cell.config.name.as_str(), i));
        }
        Ok(cells)
    }

    /// Compiles straight to run configurations (the legacy sweeps'
    /// return type); storage/tenancy cells keep their config half.
    pub fn compile_configs(&self) -> Result<Vec<CastroSedovConfig>, SpecError> {
        Ok(self.compile()?.into_iter().map(|c| c.config).collect())
    }

    /// Applies one cell's axis values to a base, in declaration order.
    fn apply(
        &self,
        base: &CastroSedovConfig,
        cell_idx: &[usize],
        label: String,
    ) -> (CastroSedovConfig, Option<StorageProfile>, usize) {
        let mut cfg = base.clone();
        let mut storage = None;
        let mut tenants = 1usize;
        for (axis, &i) in self.axes.iter().zip(cell_idx) {
            match axis {
                Axis::Backend(v) => cfg.backend = v[i],
                Axis::Codec(v) => cfg.codec = v[i],
                Axis::Mode(v) => {
                    if v[i] == RunMode::Restart {
                        cfg.read_after_write = true;
                    }
                }
                Axis::Pattern(v) => cfg.analysis_read = Some(v[i].clone()),
                Axis::Layout(v) => cfg.reorganize = v[i] == Layout::Reorg,
                Axis::Scenario(v) => cfg.scenario = Some(v[i].clone()),
                Axis::Scale(v) => match self.mode {
                    ScalingMode::Strong => cfg.nprocs = v[i],
                    ScalingMode::Weak => {
                        let base_procs = base.nprocs.max(1) as f64;
                        let factor = (v[i] as f64 / base_procs).sqrt();
                        let bf = cfg.grid.blocking_factor.max(1);
                        let scaled = (cfg.n_cell as f64 * factor).round() as i64;
                        cfg.n_cell = ((scaled + bf - 1) / bf).max(1) * bf;
                        cfg.nprocs = v[i];
                    }
                    ScalingMode::Throughput => tenants = v[i].max(1),
                },
                Axis::Rung(v) => cfg.n_cell = v[i],
                Axis::Storage(v) => storage = Some(v[i]),
                Axis::Delivery(v) => cfg.backend = v[i].backend(),
            }
        }
        cfg.name = label;
        (cfg, storage, tenants)
    }

    /// Parses a spec from the TOML grammar. Sections:
    ///
    /// ```toml
    /// [experiment]
    /// name = "smoke"
    /// scaling = "strong"            # optional
    /// zip = ["backend+codec"]       # optional
    ///
    /// [base]                         # CastroSedovConfig overrides
    /// name = "sedov"
    /// n_cell = 64
    /// nprocs = 4
    ///
    /// [axes]                         # declaration order = loop order
    /// backend = ["fpp", "agg:4"]
    /// codec = ["identity", "quant:8"]
    /// mode = ["write", "restart"]
    ///
    /// [[exclude]]                    # optional, repeatable
    /// backend = "agg:4"
    /// codec = "quant:8"
    /// ```
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let doc = TomlDoc::parse(text).map_err(SpecError::Parse)?;
        let mut spec = ExperimentSpec::new("experiment");
        if let Some(exp) = doc.section("experiment") {
            for (key, value) in &exp.entries {
                match key.as_str() {
                    "name" => {
                        spec.name = value
                            .as_str()
                            .ok_or_else(|| {
                                SpecError::Parse("experiment.name must be a string".into())
                            })?
                            .to_string();
                    }
                    "scaling" => {
                        let s = value.as_str().ok_or_else(|| {
                            SpecError::Parse("experiment.scaling must be a string".into())
                        })?;
                        spec.mode = ScalingMode::parse(s).map_err(SpecError::Parse)?;
                    }
                    "zip" => {
                        let items = value.as_array().ok_or_else(|| {
                            SpecError::Parse("experiment.zip must be an array".into())
                        })?;
                        for item in items {
                            let group = item.as_str().ok_or_else(|| {
                                SpecError::Parse("zip entries must be strings".into())
                            })?;
                            spec.zips
                                .push(group.split('+').map(|m| m.trim().to_string()).collect());
                        }
                    }
                    other => {
                        return Err(SpecError::Parse(format!(
                            "unknown [experiment] key '{other}'"
                        )))
                    }
                }
            }
        }
        let base = match doc.section("base") {
            Some(section) => parse_base(section)?,
            None => CastroSedovConfig::default(),
        };
        spec.bases.push(base);
        if let Some(axes) = doc.section("axes") {
            for (key, value) in &axes.entries {
                spec.axes.push(parse_axis(key, value)?);
            }
        }
        for table in doc.all("exclude") {
            let clauses: Vec<(String, String)> = table
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), v.render()))
                .collect();
            spec.excludes.push(clauses);
        }
        Ok(spec)
    }

    /// Loads and parses a spec file from disk.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Parse(format!("cannot read spec {}: {e}", path.display())))?;
        Self::from_toml(&text)
    }
}

/// Content key of a compiled cell: FNV-1a 64 over the canonical config
/// JSON plus the storage/tenancy half. Deterministic across processes
/// (no hasher randomization), so stores written yesterday resume today.
fn cell_key(
    config: &CastroSedovConfig,
    storage: Option<&StorageProfile>,
    tenants: usize,
) -> String {
    let canonical = format!(
        "{}|{}|{}",
        serde_json::to_string(config).unwrap_or_default(),
        storage.map(StorageProfile::name).unwrap_or_default(),
        tenants
    );
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn parse_base(section: &TomlSection) -> Result<CastroSedovConfig, SpecError> {
    use crate::config::Engine;
    let mut cfg = CastroSedovConfig::default();
    let bad = |key: &str, want: &str| SpecError::Parse(format!("base.{key} must be {want}"));
    for (key, value) in &section.entries {
        match key.as_str() {
            "name" => cfg.name = value.as_str().ok_or_else(|| bad(key, "a string"))?.into(),
            "engine" => {
                cfg.engine = match value.as_str().ok_or_else(|| bad(key, "a string"))? {
                    "hydro" => Engine::Hydro,
                    "oracle" => Engine::Oracle,
                    other => {
                        return Err(SpecError::Parse(format!(
                            "unknown engine '{other}' (hydro, oracle)"
                        )))
                    }
                }
            }
            "n_cell" => cfg.n_cell = value.as_i64().ok_or_else(|| bad(key, "an integer"))?,
            "max_level" => {
                cfg.max_level = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as usize
            }
            "max_step" => {
                cfg.max_step = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as u64
            }
            "stop_time" => cfg.stop_time = value.as_f64().ok_or_else(|| bad(key, "a number"))?,
            "plot_int" => {
                cfg.plot_int = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as u64
            }
            "check_int" => {
                cfg.check_int = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as u64
            }
            "regrid_int" => {
                cfg.regrid_int = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as u64
            }
            "nprocs" => cfg.nprocs = value.as_i64().ok_or_else(|| bad(key, "an integer"))? as usize,
            "cfl" => cfg.ctrl.cfl = value.as_f64().ok_or_else(|| bad(key, "a number"))?,
            "compute_ns_per_cell" => {
                cfg.compute_ns_per_cell = value.as_f64().ok_or_else(|| bad(key, "a number"))?
            }
            "account_only" => {
                cfg.account_only = value.as_bool().ok_or_else(|| bad(key, "a boolean"))?
            }
            "blocking_factor" => {
                cfg.grid.blocking_factor = value.as_i64().ok_or_else(|| bad(key, "an integer"))?
            }
            "max_grid_size" => {
                cfg.grid.max_grid_size = value.as_i64().ok_or_else(|| bad(key, "an integer"))?
            }
            "backend" => {
                cfg.backend =
                    BackendSpec::parse(value.as_str().ok_or_else(|| bad(key, "a string"))?)
                        .map_err(SpecError::Parse)?
            }
            "codec" => {
                cfg.codec = CodecSpec::parse(value.as_str().ok_or_else(|| bad(key, "a string"))?)
                    .map_err(SpecError::Parse)?
            }
            "scenario" => {
                cfg.scenario = Some(
                    Scenario::parse(value.as_str().ok_or_else(|| bad(key, "a string"))?)
                        .map_err(SpecError::Parse)?,
                )
            }
            other => {
                return Err(SpecError::Parse(format!("unknown [base] key '{other}'")));
            }
        }
    }
    Ok(cfg)
}

fn parse_axis(key: &str, value: &TomlValue) -> Result<Axis, SpecError> {
    let items = value
        .as_array()
        .ok_or_else(|| SpecError::Parse(format!("axis '{key}' must be an array")))?;
    if items.is_empty() {
        return Err(SpecError::Parse(format!("axis '{key}' is empty")));
    }
    let strings = || -> Result<Vec<&str>, SpecError> {
        items
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| SpecError::Parse(format!("axis '{key}' wants strings")))
            })
            .collect()
    };
    let ints = || -> Result<Vec<i64>, SpecError> {
        items
            .iter()
            .map(|v| {
                v.as_i64()
                    .ok_or_else(|| SpecError::Parse(format!("axis '{key}' wants integers")))
            })
            .collect()
    };
    match key {
        "backend" => Ok(Axis::Backend(
            strings()?
                .into_iter()
                .map(BackendSpec::parse)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Parse)?,
        )),
        "codec" => Ok(Axis::Codec(
            strings()?
                .into_iter()
                .map(CodecSpec::parse)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Parse)?,
        )),
        "mode" => Ok(Axis::Mode(
            strings()?
                .into_iter()
                .map(|s| match s {
                    "write" => Ok(RunMode::Write),
                    "restart" => Ok(RunMode::Restart),
                    other => Err(SpecError::Parse(format!(
                        "unknown mode '{other}' (write, restart)"
                    ))),
                })
                .collect::<Result<_, _>>()?,
        )),
        "pattern" => Ok(Axis::Pattern(
            strings()?
                .into_iter()
                .map(ReadSelection::parse)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Parse)?,
        )),
        "layout" => Ok(Axis::Layout(
            strings()?
                .into_iter()
                .map(|s| match s {
                    "raw" => Ok(Layout::Raw),
                    "reorg" => Ok(Layout::Reorg),
                    other => Err(SpecError::Parse(format!(
                        "unknown layout '{other}' (raw, reorg)"
                    ))),
                })
                .collect::<Result<_, _>>()?,
        )),
        "scenario" => Ok(Axis::Scenario(
            strings()?
                .into_iter()
                .map(Scenario::parse)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Parse)?,
        )),
        "scale" => Ok(Axis::Scale(
            ints()?.into_iter().map(|v| v.max(1) as usize).collect(),
        )),
        "rung" => Ok(Axis::Rung(ints()?)),
        "storage" => Ok(Axis::Storage(
            strings()?
                .into_iter()
                .map(StorageProfile::parse)
                .collect::<Result<_, _>>()
                .map_err(SpecError::Parse)?,
        )),
        "delivery" => Ok(Axis::Delivery(
            strings()?
                .into_iter()
                .map(|s| match s {
                    "storage" => Ok(Delivery::Storage),
                    "stream" => Ok(Delivery::Stream),
                    "deferred" => Ok(Delivery::Deferred),
                    other => Err(SpecError::Parse(format!(
                        "unknown delivery '{other}' (storage, stream, deferred)"
                    ))),
                })
                .collect::<Result<_, _>>()?,
        )),
        other => Err(SpecError::UnknownAxis(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Engine;

    fn base(name: &str) -> CastroSedovConfig {
        CastroSedovConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    #[test]
    fn backend_codec_labels_match_legacy_spellings() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)])
            .codecs(&[CodecSpec::Identity, CodecSpec::Rle(2.5)])
            .compile()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.config.name.as_str()).collect();
        assert_eq!(
            labels,
            [
                "m_fpp_identity",
                "m_fpp_rle2p5",
                "m_agg4_identity",
                "m_agg4_rle2p5"
            ]
        );
    }

    #[test]
    fn write_mode_is_untagged_and_restart_suffixes() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .backends(&[BackendSpec::FilePerProcess])
            .codecs(&[CodecSpec::Identity])
            .modes(&[RunMode::Write, RunMode::Restart])
            .compile()
            .unwrap();
        assert_eq!(cells[0].config.name, "m_fpp_identity");
        assert!(!cells[0].config.read_after_write);
        assert_eq!(cells[1].config.name, "m_fpp_identity_restart");
        assert!(cells[1].config.read_after_write);
    }

    #[test]
    fn pattern_and_layout_tags_match_analysis_sweep() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .patterns(&[ReadSelection::parse("box:0-1,0-3").unwrap()])
            .layouts(&[Layout::Raw, Layout::Reorg])
            .compile()
            .unwrap();
        assert_eq!(cells[0].config.name, "m_box0to1_0to3_raw");
        assert!(!cells[0].config.reorganize);
        assert_eq!(cells[1].config.name, "m_box0to1_0to3_reorg");
        assert!(cells[1].config.reorganize);
        assert!(cells.iter().all(|c| c.config.analysis_read.is_some()));
    }

    #[test]
    fn zip_advances_axes_in_lockstep() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)])
            .codecs(&[CodecSpec::Identity, CodecSpec::LossyQuant(8)])
            .zip(&["backend", "codec"])
            .compile()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.config.name.as_str()).collect();
        assert_eq!(labels, ["m_fpp_identity", "m_agg4_quant8"]);
    }

    #[test]
    fn excludes_drop_matching_cells_by_canonical_names() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)])
            .codecs(&[CodecSpec::Identity, CodecSpec::LossyQuant(8)])
            .exclude(&[("backend", "agg:4"), ("codec", "quant:8")])
            .compile()
            .unwrap();
        assert_eq!(cells.len(), 3);
        assert!(!cells.iter().any(|c| c.config.name == "m_agg4_quant8"));
    }

    #[test]
    fn label_collisions_are_rejected_naming_both_cells() {
        // Two bases that differ in configuration but not in name: every
        // axis tag is appended to both, so their labels collide cell for
        // cell and the compile must refuse rather than let one cell's
        // results shadow the other's in the store.
        let mut oracle_twin = base("m");
        oracle_twin.engine = Engine::Oracle;
        let err = ExperimentSpec::new("t")
            .base(base("m"))
            .base(oracle_twin)
            .backends(&[BackendSpec::FilePerProcess])
            .codecs(&[CodecSpec::Identity])
            .compile()
            .unwrap_err();
        match &err {
            SpecError::LabelCollision {
                label,
                first,
                second,
            } => {
                assert_eq!(label, "m_fpp_identity");
                assert!(first.contains("base=m"), "{first}");
                assert!(second.contains("backend=fpp"), "{second}");
            }
            other => panic!("expected LabelCollision, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("m_fpp_identity"), "{msg}");
    }

    #[test]
    fn scaling_modes_interpret_the_scale_axis() {
        let mut b = base("s");
        b.nprocs = 4;
        b.n_cell = 64;
        // Strong: ranks vary, problem fixed.
        let strong = ExperimentSpec::new("t")
            .base(b.clone())
            .scales(&[4, 16])
            .scaling(ScalingMode::Strong)
            .compile()
            .unwrap();
        assert_eq!(strong[0].config.name, "s_p4");
        assert_eq!(strong[1].config.name, "s_p16");
        assert_eq!(strong[1].config.nprocs, 16);
        assert_eq!(strong[1].config.n_cell, 64);
        // Weak: cells per rank fixed — 4x ranks doubles n_cell (2-D),
        // snapped to the blocking factor.
        let weak = ExperimentSpec::new("t")
            .base(b.clone())
            .scales(&[4, 16])
            .scaling(ScalingMode::Weak)
            .compile()
            .unwrap();
        assert_eq!(weak[0].config.name, "s_p4w");
        assert_eq!(
            weak[0].config.n_cell, 64,
            "scale == base nprocs is identity"
        );
        assert_eq!(weak[1].config.n_cell, 128);
        assert_eq!(weak[1].config.nprocs, 16);
        assert_eq!(weak[1].config.n_cell % b.grid.blocking_factor, 0);
        // Throughput: tenancy varies, workload fixed.
        let tput = ExperimentSpec::new("t")
            .base(b)
            .scales(&[1, 4])
            .scaling(ScalingMode::Throughput)
            .compile()
            .unwrap();
        assert_eq!(tput[0].config.name, "s_x1");
        assert_eq!(tput[0].tenants, 1);
        assert_eq!(tput[1].config.name, "s_x4");
        assert_eq!(tput[1].tenants, 4);
        assert_eq!(tput[1].config.nprocs, 4, "workload untouched");
    }

    #[test]
    fn rung_and_storage_axes() {
        let cells = ExperimentSpec::new("t")
            .base(base("r"))
            .rungs(&[64, 128])
            .storages(&[
                StorageProfile::Ideal {
                    servers: 8,
                    bandwidth: 2.5e8,
                },
                StorageProfile::Summit { scale: 0.5 },
            ])
            .compile()
            .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].config.name, "r_n64_ideal82p5e8");
        assert_eq!(cells[3].config.name, "r_n128_summit0p5");
        assert_eq!(cells[3].config.n_cell, 128);
        assert_eq!(
            cells[3].storage,
            Some(StorageProfile::Summit { scale: 0.5 })
        );
        let m = cells[3].storage.unwrap().build();
        assert!(m.nservers >= 1);
    }

    #[test]
    fn cell_keys_are_deterministic_and_content_sensitive() {
        let build = || {
            ExperimentSpec::new("t")
                .base(base("k"))
                .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(4)])
                .compile()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a[0].key, b[0].key, "same cell, same key, every compile");
        assert_ne!(a[0].key, a[1].key, "different cell, different key");
        // The storage half is part of the identity.
        let stored = ExperimentSpec::new("t")
            .base(base("k"))
            .backends(&[BackendSpec::FilePerProcess])
            .storages(&[StorageProfile::Ideal {
                servers: 8,
                bandwidth: 2.5e8,
            }])
            .compile()
            .unwrap();
        assert_ne!(stored[0].key, a[0].key);
    }

    #[test]
    fn throughput_rungs_share_one_solo_key() {
        // x2/x4/x8 over one base are identical runs modulo label and
        // tenancy, so they share a solo-profile key (the memo key) while
        // keeping distinct cell keys (the store identity).
        let cells = ExperimentSpec::new("t")
            .base(base("ladder"))
            .scales(&[2, 4, 8])
            .scaling(ScalingMode::Throughput)
            .compile()
            .unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].solo_key, cells[1].solo_key);
        assert_eq!(cells[1].solo_key, cells[2].solo_key);
        assert_ne!(cells[0].key, cells[1].key);
        assert_ne!(cells[1].key, cells[2].key);
        // A different base config gets a different solo profile.
        let other = ExperimentSpec::new("t")
            .base(base("ladder"))
            .backends(&[BackendSpec::Aggregated(4)])
            .scales(&[2])
            .scaling(ScalingMode::Throughput)
            .compile()
            .unwrap();
        assert_ne!(other[0].solo_key, cells[0].solo_key);
    }

    #[test]
    fn delivery_axis_maps_to_canonical_backends() {
        let cells = ExperimentSpec::new("t")
            .base(base("m"))
            .deliveries(&[Delivery::Storage, Delivery::Stream, Delivery::Deferred])
            .compile()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.config.name.as_str()).collect();
        assert_eq!(labels, ["m_storage", "m_stream", "m_deferred"]);
        let backends: Vec<String> = cells.iter().map(|c| c.config.backend.name()).collect();
        assert_eq!(backends, ["fpp", "streaming", "deferred:1"]);
        assert!(cells[1].config.backend.in_transit());
    }

    #[test]
    fn delivery_axis_parses_from_toml() {
        let spec = ExperimentSpec::from_toml(
            r#"
            [experiment]
            name = "d"
            [axes]
            delivery = ["storage", "stream"]
            "#,
        )
        .unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells[1].config.backend.in_transit());

        let bad = ExperimentSpec::from_toml("[axes]\ndelivery = [\"carrier-pigeon\"]").unwrap_err();
        assert!(bad
            .to_string()
            .contains("unknown delivery 'carrier-pigeon'"));
    }

    #[test]
    fn toml_round_trip_compiles_the_matrix() {
        let spec = ExperimentSpec::from_toml(
            r#"
            [experiment]
            name = "smoke"
            scaling = "strong"

            [base]
            name = "sedov"
            engine = "oracle"
            n_cell = 64
            max_step = 8
            plot_int = 2
            nprocs = 4
            account_only = true

            [axes]
            backend = ["fpp", "agg:4"]
            codec = ["identity", "quant:8"]
            mode = ["write", "restart"]

            [[exclude]]
            backend = "agg:4"
            codec = "quant:8"
            "#,
        )
        .unwrap();
        assert_eq!(spec.name, "smoke");
        let cells = spec.compile().unwrap();
        // 2 x 2 x 2 = 8, minus the excluded agg4+quant8 pair (2 modes).
        assert_eq!(cells.len(), 6);
        assert!(cells
            .iter()
            .any(|c| c.config.name == "sedov_fpp_quant8_restart"));
        assert!(!cells.iter().any(|c| c.config.name.contains("agg4_quant8")));
        assert!(cells.iter().all(|c| c.config.engine == Engine::Oracle));
        assert!(cells.iter().all(|c| c.config.account_only));
    }

    #[test]
    fn toml_zip_and_errors() {
        let spec = ExperimentSpec::from_toml(
            r#"
            [experiment]
            name = "z"
            zip = ["backend+codec"]
            [axes]
            backend = ["fpp", "agg:4"]
            codec = ["identity", "quant:8"]
            "#,
        )
        .unwrap();
        assert_eq!(spec.compile().unwrap().len(), 2);

        assert!(matches!(
            ExperimentSpec::from_toml("[axes]\nghost = [1]").unwrap_err(),
            SpecError::UnknownAxis(_)
        ));
        assert!(ExperimentSpec::from_toml("[base]\nnot_a_field = 3").is_err());
        let unequal = ExperimentSpec::from_toml(
            "[experiment]\nzip = [\"backend+codec\"]\n[axes]\nbackend = [\"fpp\"]\ncodec = [\"identity\", \"rle:2\"]",
        )
        .unwrap();
        assert!(matches!(unequal.compile().unwrap_err(), SpecError::Zip(_)));
        let ghost_zip = ExperimentSpec::from_toml(
            "[experiment]\nzip = [\"backend+ghost\"]\n[axes]\nbackend = [\"fpp\"]",
        )
        .unwrap();
        assert!(matches!(
            ghost_zip.compile().unwrap_err(),
            SpecError::UnknownAxis(_)
        ));
    }

    #[test]
    fn storage_profile_parse_round_trips() {
        for spelling in ["ideal:8:2.5e8", "summit:0.5"] {
            let p = StorageProfile::parse(spelling).unwrap();
            assert_eq!(StorageProfile::parse(&p.name()).unwrap(), p);
        }
        assert!(StorageProfile::parse("summit:1.5").is_err());
        assert!(StorageProfile::parse("lustre:3").is_err());
    }
}
