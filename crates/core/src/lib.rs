//! Orchestration of the paper's study: parameterized Castro-Sedov runs,
//! the Table III campaign, and the AMR-vs-MACSio comparison pipeline.
//!
//! **Layer position:** the top of the workspace (package name
//! `amrproxy`): it drives `hydro` workloads through `plotfile` and the
//! `io-engine` stack, times them against `iosim`, and feeds `model`.
//! Key types: [`CastroSedovConfig`], [`RunResult`], [`RunSummary`], the
//! scenario plane ([`Scenario`] programs compiled by [`compile_phases`]
//! and executed by the [`driver`] over a [`StepSource`]), and the sweep
//! family ([`backend_sweep`] → [`backend_codec_sweep`] →
//! [`restart_sweep`] → [`analysis_sweep`] → [`scenario_sweep`]).
//!
//! ```
//! use amrproxy::{run_simulation, CastroSedovConfig, Engine};
//!
//! let cfg = CastroSedovConfig {
//!     engine: Engine::Oracle,
//!     n_cell: 128,
//!     max_step: 8,
//!     plot_int: 4,
//!     ..Default::default()
//! };
//! let result = run_simulation(&cfg, None, None);
//! assert!(result.tracker.total_bytes() > 0);
//! ```

pub mod campaign;
pub mod cases;
pub mod compare;
pub mod config;
pub mod driver;
pub mod run;
pub mod spec;
pub mod store;

pub use campaign::{
    analysis_sweep, backend_codec_sweep, backend_sweep, restart_sweep, run_campaign,
    run_campaign_fabric, run_campaign_fabric_cloned, run_campaign_fabric_linked,
    run_campaign_fabric_memoized, run_campaign_serial, run_campaign_timed,
    run_campaign_timed_serial, scenario_sweep, table3_campaign, RunSummary,
};
pub use cases::{big8192, case27, case4, case4_hydro_scaled};
pub use compare::{compare_with_macsio, Comparison};
pub use config::{CastroSedovConfig, Engine};
pub use driver::{
    compile_phases, run_scenario, run_scenario_attached, try_run_scenario_attached, AmrSource,
    DumpSource, OracleSource, Phase, ScheduledPhase, StepSource,
};
pub use io_engine::{Scenario, ScenarioOp};
pub use run::{run_simulation, run_simulation_attached, try_run_simulation_attached, RunResult};
pub use spec::{
    Delivery, ExperimentSpec, Layout, RunMode, ScalingMode, SpecCell, SpecError, StorageProfile,
};
pub use store::{run_spec, run_spec_serial, update_bench_artifact, ResultsStore, SpecReport};
