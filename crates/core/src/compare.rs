//! End-to-end comparison: AMR run vs calibrated MACSio proxy.
//!
//! The pipeline of the paper's Fig. 1: run (or reuse) an AMReX-Castro
//! simulation, translate its inputs through the model `g`, calibrate the
//! remaining free parameters against the measured per-step output, run
//! MACSio, and report how closely the proxy tracks the real workload
//! (Figs. 9-11).

use crate::run::RunResult;
use iosim::{IoTracker, MemFs};
use model::{
    calibrate_two_parameter, final_rel_err, mape, translate, Calibration, TranslationModel,
};
use serde::{Deserialize, Serialize};

/// Outcome of one AMR-vs-MACSio comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// Run label.
    pub name: String,
    /// Measured AMR bytes per output step.
    pub amr_per_step: Vec<f64>,
    /// MACSio bytes per dump after calibration.
    pub macsio_per_step: Vec<f64>,
    /// The calibration result (growth factor, f, trace).
    pub calibration: Calibration,
    /// The final MACSio command line.
    pub macsio_command: String,
    /// Mean absolute percentage error between the two series.
    pub mape_percent: f64,
    /// Relative error of the final cumulative size.
    pub final_error: f64,
}

/// Translates, calibrates, and runs MACSio against a completed AMR run.
///
/// `calibration_rounds` alternates the Eq. (3) `f` fit and the
/// `dataset_growth` golden-section search (2 is enough in practice).
pub fn compare_with_macsio(amr: &RunResult, calibration_rounds: usize) -> Comparison {
    let target = amr.per_step_bytes();
    assert!(
        target.len() >= 2,
        "compare_with_macsio: need at least two output steps"
    );
    let inputs = amr.config.amr_inputs();

    // Starting point: Eq. (3) mid-range f, Appendix A growth guess.
    let model0 = TranslationModel {
        f: 24.0,
        dataset_growth: model::default_growth_guess(inputs.cfl, inputs.max_level),
        compute_time: 0.0,
        meta_size: 0,
        compression_ratio: 1.0,
    };
    let mut base = translate(&inputs, &model0);
    base.num_dumps = target.len() as u32;

    let calibration = calibrate_two_parameter(&base, &target, inputs.n_cell, calibration_rounds);

    // Final proxy run with the calibrated parameters. Real marshalling up
    // to a sanity budget; beyond it, the byte-exact predictor (proven
    // equal to the real run by tests) stands in — the paper's 8192^2 case
    // would otherwise marshal terabytes.
    let mut final_cfg = base.clone();
    final_cfg.dataset_growth = calibration.dataset_growth;
    final_cfg.part_size = model::part_size(
        calibration.f,
        inputs.n_cell.0,
        inputs.n_cell.1,
        inputs.nprocs,
    );
    const REAL_RUN_BUDGET_BYTES: f64 = 8e9;
    let expected: f64 = model::predicted_series(&final_cfg)
        .iter()
        .map(|&b| b as f64)
        .sum();
    let macsio_per_step: Vec<f64> = if expected <= REAL_RUN_BUDGET_BYTES {
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&final_cfg, &fs, &tracker, None).expect("macsio run on memory fs");
        report.bytes_per_dump.iter().map(|&b| b as f64).collect()
    } else {
        model::predicted_series(&final_cfg)
            .iter()
            .map(|&b| b as f64)
            .collect()
    };

    Comparison {
        name: amr.config.name.clone(),
        mape_percent: mape(&target, &macsio_per_step),
        final_error: final_rel_err(&cumulative(&target), &cumulative(&macsio_per_step)),
        amr_per_step: target,
        macsio_per_step,
        calibration,
        macsio_command: final_cfg.command_line(),
    }
}

fn cumulative(v: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    v.iter()
        .map(|x| {
            acc += x;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::case4;
    use crate::run::run_simulation;

    #[test]
    fn calibrated_macsio_tracks_case4() {
        // A reduced case4: 20 outputs like the paper's Fig. 6 pivot.
        let mut cfg = case4(0.4, 3, 20);
        cfg.n_cell = 256; // keep the test light
        let amr = run_simulation(&cfg, None, None);
        let cmp = compare_with_macsio(&amr, 2);
        assert_eq!(cmp.amr_per_step.len(), cmp.macsio_per_step.len());
        // The paper's headline: the kernel approximation is "close
        // enough" — per-step MAPE within ~15% and final cumulative size
        // within ~10%.
        assert!(cmp.mape_percent < 15.0, "MAPE {}", cmp.mape_percent);
        assert!(cmp.final_error.abs() < 0.10, "final {}", cmp.final_error);
        // Calibration landed in the paper's growth band neighbourhood.
        assert!(
            (0.995..=1.08).contains(&cmp.calibration.dataset_growth),
            "growth {}",
            cmp.calibration.dataset_growth
        );
        assert!(cmp.macsio_command.contains("--dataset_growth"));
    }

    #[test]
    fn fitted_f_is_positive_and_sane() {
        let mut cfg = case4(0.5, 2, 12);
        cfg.n_cell = 128;
        cfg.nprocs = 8;
        let amr = run_simulation(&cfg, None, None);
        let cmp = compare_with_macsio(&amr, 2);
        // f reflects ~22 plot variables plus refined levels and headers:
        // order 20-40 (the paper reports 23-25 on Summit).
        assert!(
            (10.0..60.0).contains(&cmp.calibration.f),
            "f = {}",
            cmp.calibration.f
        );
    }

    #[test]
    #[should_panic(expected = "at least two output steps")]
    fn single_step_target_is_rejected() {
        let mut cfg = case4(0.5, 2, 1);
        cfg.n_cell = 128;
        cfg.max_step = 0; // only the step-0 dump exists
        let amr = run_simulation(&cfg, None, None);
        compare_with_macsio(&amr, 1);
    }
}
