//! The scenario plane: one engine-agnostic phase driver.
//!
//! Historically `run.rs` carried two nearly identical run loops —
//! `run_hydro` and `run_oracle` — each hard-coding one workload shape
//! (write everything, then optionally restart-read, then optionally
//! analyze). This module replaces both with a three-part plane:
//!
//! 1. a [`StepSource`] trait over whatever advances the hierarchy (the
//!    MUSCL-HLLC solve, the Sedov similarity oracle);
//! 2. a compiler ([`compile_phases`]) from an [`io_engine::Scenario`]
//!    program (`write;fail@17;restart;analyze:level:2,reorg`) to a flat
//!    list of [`Phase`]s against the run's cadences (`plot_int`,
//!    `check_int` or a `check@K` override, `max_step`);
//! 3. a [`run_scenario`] driver that executes the compiled program
//!    against the backend/scheduler/tracker stack exactly once — there
//!    is no second copy of the dump/restart/analysis sequencing.
//!
//! Mid-run restart semantics: a `RestartRead` phase reads the newest
//! restart dump at or before `from_step` back through the backend (a
//! priced read burst), then the *next* `Compute` phase rewinds the
//! source and silently replays the hierarchy to the restored step — the
//! replay itself is free (the state came off storage), but the compiled
//! program re-emits `Compute` phases for every step lost between the
//! restart point and the failure, so the lost compute is re-paid on the
//! simulated clock while the dumps already flushed are *not* re-written.
//! In-run `AnalysisRead` phases interleave with subsequent write bursts
//! (they read the newest plot dump mid-stream), rather than running
//! after the campaign like the legacy boolean axis did.

use crate::config::CastroSedovConfig;
use crate::run::{compute_phase, dump_burst, RunResult};
use hydro::{AmrConfig, AmrSim, OracleConfig, OracleSim, StepInfo};
use io_engine::{IoBackend, ReadSelection, Reorganizer, ScenarioOp};
use iosim::{BurstScheduler, BurstTimeline, IoTracker, StorageAttach, Vfs};
use mpi_sim::SimComm;
use plotfile::{
    account_checkpoint_with, account_plotfile_with, castro_sedov_plot_vars, write_plotfile_with,
    CheckpointLevel, CheckpointSpec, LayoutLevel, PlotLevel, PlotfileLayout, PlotfileSpec,
    PlotfileStats,
};

/// Which dump registry a [`Phase::RestartRead`] recovers from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpSource {
    /// A plot dump (the legacy read-after-write restart source, and the
    /// fallback when the run writes no checkpoints).
    Plot,
    /// A checkpoint dump (the proper restart state).
    Checkpoint,
}

/// One executable phase of a compiled scenario program.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// Advance the hierarchy one step and charge the compute time (all
    /// ranks work, then barrier — the paper's pre-burst pattern).
    Compute,
    /// Write a plot dump of the current hierarchy through the backend.
    PlotDump,
    /// Write a checkpoint (restart state) through the backend.
    Checkpoint,
    /// Read the newest `source` dump at or before `from_step` back (a
    /// restart): barriers in-flight drains, prices the read burst, and
    /// arms the rewind the next [`Phase::Compute`] performs.
    RestartRead {
        /// Upper bound on the restored step.
        from_step: u64,
        /// Which dump kind restores the state.
        source: DumpSource,
    },
    /// Selective analysis read of the newest plot dump (optionally
    /// served from the reorganized layout, rewrite priced).
    AnalysisRead {
        /// What the read fetches.
        sel: ReadSelection,
        /// Rewrite the dump into the read-optimized layout first.
        reorganize: bool,
    },
    /// Barrier any in-flight drain (the run's closing flush).
    Drain,
}

/// A [`Phase`] plus its gate: the simulation step the phase belongs to.
/// Gated phases are skipped when the run halts (on `stop_time`) before
/// their step; ungated phases (the step-0 dump, trailing reads, the
/// final drain) always execute.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledPhase {
    /// Minimum executed step this phase requires (`None` = always runs).
    pub gate: Option<u64>,
    /// The phase.
    pub phase: Phase,
}

impl ScheduledPhase {
    fn at(gate: u64, phase: Phase) -> Self {
        Self {
            gate: Some(gate),
            phase,
        }
    }

    fn always(phase: Phase) -> Self {
        Self { gate: None, phase }
    }
}

/// Compiles the run's effective scenario into its phase program.
///
/// The program mirrors the legacy loop exactly for `write[;restart]
/// [;analyze:..]` scenarios: step-0 plot dump, then per step a
/// `Compute` followed by its cadenced `PlotDump`/`Checkpoint`, then the
/// trailing reads, then `Drain`. `fail@K;restart` injects a mid-run
/// `RestartRead` right after step `K`'s phases plus one replay
/// `Compute` per lost step; `analyze_every:M:SEL` follows every `M`-th
/// plot dump with an in-run `AnalysisRead`.
pub fn compile_phases(cfg: &CastroSedovConfig) -> Result<Vec<ScheduledPhase>, String> {
    let sc = cfg.effective_scenario();
    sc.validate()?;
    let check_int = sc.check_every().unwrap_or(cfg.check_int);
    let analyze_every = sc.analyze_every_ops();
    let fail = sc.fail_step();
    if let Some(k) = fail {
        if k > cfg.max_step {
            return Err(format!(
                "fail@{k} is beyond max_step {} (the failure would never happen)",
                cfg.max_step
            ));
        }
    }

    let mut out = Vec::new();
    let mut plot_count = 0u64;
    let mut plot_steps = Vec::new();
    let mut emit_plot = |out: &mut Vec<ScheduledPhase>, gate: Option<u64>, step: u64| {
        out.push(ScheduledPhase {
            gate,
            phase: Phase::PlotDump,
        });
        plot_steps.push((gate, step));
        plot_count += 1;
        for (every, sel, reorganize) in &analyze_every {
            if plot_count.is_multiple_of(*every) {
                out.push(ScheduledPhase {
                    gate,
                    phase: Phase::AnalysisRead {
                        sel: sel.clone(),
                        reorganize: *reorganize,
                    },
                });
            }
        }
    };

    // AMReX writes plt00000 before the first step.
    emit_plot(&mut out, None, 0);
    for step in 1..=cfg.max_step {
        out.push(ScheduledPhase::at(step, Phase::Compute));
        if step.is_multiple_of(cfg.plot_int) {
            emit_plot(&mut out, Some(step), step);
        }
        if check_int > 0 && step.is_multiple_of(check_int) {
            out.push(ScheduledPhase::at(step, Phase::Checkpoint));
        }
        if fail == Some(step) {
            // The crash loses in-memory state; recovery restores the
            // newest persisted restart dump (checkpoint if the run
            // writes any, else the newest plot dump) and re-computes
            // every step after it.
            let (restore, source) = if check_int > 0 && step >= check_int {
                ((step / check_int) * check_int, DumpSource::Checkpoint)
            } else {
                // With plot_int 0 only the step-0 dump exists: recovery
                // recomputes the whole run.
                let last_plot = step.checked_div(cfg.plot_int).unwrap_or(0) * cfg.plot_int;
                (last_plot, DumpSource::Plot)
            };
            out.push(ScheduledPhase::at(
                step,
                Phase::RestartRead {
                    from_step: restore,
                    source,
                },
            ));
            for _lost in restore + 1..=step {
                out.push(ScheduledPhase::at(step, Phase::Compute));
            }
        }
    }

    for op in sc.trailing_ops() {
        match op {
            ScenarioOp::Restart => out.push(ScheduledPhase::always(Phase::RestartRead {
                from_step: cfg.max_step,
                source: DumpSource::Plot,
            })),
            ScenarioOp::ReadAll => {
                for &(gate, step) in &plot_steps {
                    out.push(ScheduledPhase {
                        gate,
                        phase: Phase::RestartRead {
                            from_step: step,
                            source: DumpSource::Plot,
                        },
                    });
                }
            }
            ScenarioOp::Analyze { sel, reorganize } => {
                out.push(ScheduledPhase::always(Phase::AnalysisRead {
                    sel,
                    reorganize,
                }))
            }
            _ => unreachable!("trailing_ops yields only read ops"),
        }
    }
    out.push(ScheduledPhase::always(Phase::Drain));
    Ok(out)
}

/// What advances the grid hierarchy: the engine-specific half of a run.
/// Everything the phase driver needs — advancing, rebuilding for a
/// restart replay, and describing the current hierarchy to the plotfile
/// and checkpoint writers.
pub trait StepSource {
    /// Advances one step, returning its summary.
    fn advance(&mut self) -> StepInfo;

    /// Steps taken since construction (or the last [`StepSource::reset`]).
    fn step_count(&self) -> u64;

    /// Current simulation time.
    fn time(&self) -> f64;

    /// Rebuilds the hierarchy at `t = 0` (the driver then replays to the
    /// restored step — deterministic engines make the replayed hierarchy
    /// identical to the checkpointed one).
    fn reset(&mut self);

    /// Account-only layout of the current hierarchy (every engine).
    fn layout_levels(&self) -> Vec<LayoutLevel>;

    /// Materialized plot levels when the engine holds field data
    /// (the hydro solve); `None` for analytic engines (the oracle).
    fn plot_levels(&self) -> Option<Vec<PlotLevel<'_>>>;

    /// Checkpoint layout of the current hierarchy at time-step `dt`.
    fn checkpoint_levels(&self, dt: f64) -> Vec<CheckpointLevel>;
}

/// The MUSCL-HLLC solve as a [`StepSource`].
pub struct AmrSource {
    cfg: AmrConfig,
    sim: AmrSim,
}

impl AmrSource {
    /// Builds the solve for `cfg`.
    pub fn new(cfg: &CastroSedovConfig) -> Self {
        let amr_cfg = AmrConfig {
            n_cell: cfg.n_cell,
            max_level: cfg.max_level,
            grid: cfg.grid,
            regrid_int: cfg.regrid_int,
            nranks: cfg.nprocs,
            strategy: cfg.strategy,
            ctrl: cfg.ctrl,
            tag: cfg.tag,
            problem: cfg.problem,
        };
        Self {
            sim: AmrSim::new(amr_cfg.clone()),
            cfg: amr_cfg,
        }
    }
}

impl StepSource for AmrSource {
    fn advance(&mut self) -> StepInfo {
        self.sim.step()
    }

    fn step_count(&self) -> u64 {
        self.sim.step_count()
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn reset(&mut self) {
        self.sim = AmrSim::new(self.cfg.clone());
    }

    fn layout_levels(&self) -> Vec<LayoutLevel> {
        self.sim
            .levels()
            .iter()
            .map(|l| LayoutLevel {
                geom: l.geom,
                ba: l.mf.box_array().clone(),
                dm: l.mf.distribution_map().clone(),
                level_steps: l.steps,
            })
            .collect()
    }

    fn plot_levels(&self) -> Option<Vec<PlotLevel<'_>>> {
        Some(
            self.sim
                .levels()
                .iter()
                .map(|l| PlotLevel {
                    geom: l.geom,
                    mf: &l.mf,
                    level_steps: l.steps,
                })
                .collect(),
        )
    }

    fn checkpoint_levels(&self, dt: f64) -> Vec<CheckpointLevel> {
        self.sim
            .levels()
            .iter()
            .map(|l| CheckpointLevel {
                geom: l.geom,
                ba: l.mf.box_array().clone(),
                dm: l.mf.distribution_map().clone(),
                level_steps: l.steps,
                dt,
            })
            .collect()
    }
}

/// The Sedov–Taylor similarity oracle as a [`StepSource`].
pub struct OracleSource {
    cfg: OracleConfig,
    sim: OracleSim,
}

impl OracleSource {
    /// Builds the oracle for `cfg`.
    pub fn new(cfg: &CastroSedovConfig) -> Self {
        let oracle_cfg = OracleConfig {
            n_cell: cfg.n_cell,
            max_level: cfg.max_level,
            grid: cfg.grid,
            regrid_int: cfg.regrid_int,
            nranks: cfg.nprocs,
            strategy: cfg.strategy,
            ctrl: cfg.ctrl,
            problem: cfg.problem,
            shock_halfwidth_cells: 6.0,
        };
        Self {
            sim: OracleSim::new(oracle_cfg.clone()),
            cfg: oracle_cfg,
        }
    }
}

impl StepSource for OracleSource {
    fn advance(&mut self) -> StepInfo {
        self.sim.step()
    }

    fn step_count(&self) -> u64 {
        self.sim.step_count()
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn reset(&mut self) {
        self.sim = OracleSim::new(self.cfg.clone());
    }

    fn layout_levels(&self) -> Vec<LayoutLevel> {
        self.sim
            .levels()
            .iter()
            .map(|l| LayoutLevel {
                geom: l.geom,
                ba: l.ba.clone(),
                dm: l.dm.clone(),
                level_steps: l.steps,
            })
            .collect()
    }

    fn plot_levels(&self) -> Option<Vec<PlotLevel<'_>>> {
        None // the oracle carries no field data; dumps are account-only
    }

    fn checkpoint_levels(&self, dt: f64) -> Vec<CheckpointLevel> {
        self.sim
            .levels()
            .iter()
            .map(|l| CheckpointLevel {
                geom: l.geom,
                ba: l.ba.clone(),
                dm: l.dm.clone(),
                level_steps: l.steps,
                dt,
            })
            .collect()
    }
}

/// Totals of one restart-read phase.
#[derive(Clone, Copy, Debug, Default)]
struct ReadPhase {
    read_bytes: u64,
    physical_read_bytes: u64,
    read_files: u64,
    read_wall: f64,
    codec_seconds: f64,
}

/// Restart-reads a dump back through the backend: the backend barriers
/// in-flight drains, the scheduler prices the read burst at the storage
/// model's read bandwidth (recorded in the burst timeline like every
/// write burst), and decode CPU lands on the application clock after
/// the bytes arrive. Advances `clock` past the read phase.
fn restart_read(
    backend: &mut dyn IoBackend,
    scheduler: &mut Option<BurstScheduler<'_>>,
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    output_counter: u32,
    dir: &str,
) -> std::io::Result<ReadPhase> {
    let read_start = match &scheduler {
        // Recovery starts after the in-flight drain lands.
        Some(sched) => sched.finish(*clock),
        None => *clock,
    };
    *clock = read_start;
    let read = backend.read_step(output_counter, dir)?;
    let mut requests = read.stats.requests;
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next_clock) =
            sched.submit_read(output_counter, *clock, &mut requests, read.stats.bytes);
        timeline.push(burst);
        *clock = next_clock;
    }
    *clock += read.stats.codec_seconds;
    Ok(ReadPhase {
        read_bytes: read.stats.logical_bytes,
        physical_read_bytes: read.stats.bytes,
        read_files: read.stats.files,
        read_wall: *clock - read_start,
        codec_seconds: read.stats.codec_seconds,
    })
}

/// Totals of one selective analysis phase.
#[derive(Clone, Copy, Debug, Default)]
struct AnalysisPhase {
    selective_read_bytes: u64,
    selective_physical_read_bytes: u64,
    selective_read_files: u64,
    selective_read_wall: f64,
    reorg_wall: f64,
    reorg_bytes: u64,
    codec_seconds: f64,
}

/// Performs one selective analysis read of a plot dump: with
/// `reorganize`, the dump is first rewritten into the read-optimized
/// layout (source fetch + rewrite both priced as bursts on the simulated
/// clock), then the selection is served from whichever layout applies.
/// Advances `clock` past the whole phase.
// One argument per simulation plane the phase touches, mirroring
// `restart_read` plus the rewrite's filesystem/tracker dependencies.
#[allow(clippy::too_many_arguments)]
fn analysis_read(
    codec: io_engine::CodecSpec,
    sel: &ReadSelection,
    reorganize: bool,
    backend: &mut dyn IoBackend,
    fs: &dyn Vfs,
    tracker: &IoTracker,
    scheduler: &mut Option<BurstScheduler<'_>>,
    timeline: &mut BurstTimeline,
    clock: &mut f64,
    output_counter: u32,
    dir: &str,
) -> std::io::Result<AnalysisPhase> {
    let mut phase = AnalysisPhase::default();
    // Analysis barriers the in-flight drain, like a restart.
    let start = match &scheduler {
        Some(sched) => sched.finish(*clock),
        None => *clock,
    };
    *clock = start;

    let read = if reorganize {
        let mut reorg = Reorganizer::new(fs, tracker, codec);
        let stats = reorg.reorganize(backend, output_counter, dir)?;
        // Price the rewrite: the source fetch as a read burst, its
        // decode CPU, then the clustered rewrite as a write burst with
        // the re-encode CPU charged up front.
        let mut read_reqs = stats.read.requests.clone();
        let mut write_reqs = stats.requests.clone();
        if let Some(sched) = scheduler.as_mut() {
            let (burst, next) =
                sched.submit_read(output_counter, *clock, &mut read_reqs, stats.read.bytes);
            timeline.push(burst);
            *clock = next + stats.read.codec_seconds;
            let (burst, next) = sched.submit_with_compute(
                output_counter,
                *clock,
                stats.codec_seconds,
                &mut write_reqs,
                stats.bytes,
            );
            timeline.push(burst);
            *clock = sched.finish(next);
        } else {
            *clock += stats.read.codec_seconds + stats.codec_seconds;
        }
        phase.reorg_wall = *clock - start;
        phase.reorg_bytes = stats.read.bytes + stats.bytes;
        phase.codec_seconds += stats.read.codec_seconds + stats.codec_seconds;
        reorg.read_selection(output_counter, sel)?
    } else {
        backend.read_selection(output_counter, dir, sel)?
    };

    let sel_start = *clock;
    let mut requests = read.stats.requests;
    if let Some(sched) = scheduler.as_mut() {
        let (burst, next) =
            sched.submit_read(output_counter, *clock, &mut requests, read.stats.bytes);
        timeline.push(burst);
        *clock = next;
    }
    *clock += read.stats.codec_seconds;
    phase.selective_read_bytes = read.stats.logical_bytes;
    phase.selective_physical_read_bytes = read.stats.bytes;
    phase.selective_read_files = read.stats.files;
    phase.selective_read_wall = *clock - sel_start;
    phase.codec_seconds += read.stats.codec_seconds;
    Ok(phase)
}

/// Executes a compiled scenario program over `src` — the single run loop
/// behind [`crate::run::run_simulation`], shared by every engine.
/// Public so custom [`StepSource`] implementations (other hierarchy
/// generators) can ride the same phase pipeline.
///
/// # Panics
/// Panics when the config's scenario fails to compile (malformed
/// program, `fail@` beyond `max_step`) or a phase's I/O fails.
pub fn run_scenario<S: StepSource>(
    cfg: &CastroSedovConfig,
    src: S,
    fs: &dyn Vfs,
    storage: Option<&iosim::StorageModel>,
) -> RunResult {
    run_scenario_attached(cfg, src, fs, storage.into())
}

/// [`run_scenario`] with an explicit storage attachment: none, a private
/// [`iosim::StorageModel`], or one tenant's [`iosim::FabricHandle`] on a
/// shared [`iosim::Fabric`] — the machine-room path, where this run's
/// bursts contend with every other tenant's and the scheduler reports
/// shared vs solo-equivalent walls into the fabric's
/// [`iosim::TenantStats`] when the run seals.
///
/// # Panics
/// Panics when the config's scenario fails to compile (malformed
/// program, `fail@` beyond `max_step`) or a phase's I/O fails.
pub fn run_scenario_attached<S: StepSource>(
    cfg: &CastroSedovConfig,
    src: S,
    fs: &dyn Vfs,
    storage: StorageAttach<'_>,
) -> RunResult {
    try_run_scenario_attached(cfg, src, fs, storage).unwrap_or_else(|e| panic!("scenario I/O: {e}"))
}

/// [`run_scenario_attached`], but propagating phase I/O errors instead of
/// panicking: a scenario that asks a backend for a read it cannot serve
/// (the typed [`std::io::ErrorKind::Unsupported`] error from
/// [`io_engine::unsupported_read`], naming the backend and selection)
/// surfaces as an `Err`, never a panic.
///
/// # Panics
/// Panics when the config's scenario fails to compile (malformed
/// program, `fail@` beyond `max_step`) — a configuration error, not an
/// I/O outcome.
pub fn try_run_scenario_attached<S: StepSource>(
    cfg: &CastroSedovConfig,
    mut src: S,
    fs: &dyn Vfs,
    storage: StorageAttach<'_>,
) -> std::io::Result<RunResult> {
    let program = compile_phases(cfg).unwrap_or_else(|e| panic!("scenario compile: {e}"));
    let scenario_name = cfg.effective_scenario().name();
    let tracker = IoTracker::new();
    let comm = SimComm::summit(cfg.nprocs, 0x5ED0);
    let mut backend = cfg.backend.build_with_codec(cfg.codec, fs, &tracker);
    // On a machine room with an interconnect, a streamed tenant draws
    // its fair share of the shared link — the stream-plane twin of
    // stored tenants sharing the servers.
    if backend.in_transit() {
        if let StorageAttach::Fabric(h) = &storage {
            if let Some(net) = h.stream_link() {
                backend.attach_network(net);
            }
        }
    }
    let in_transit = backend.in_transit();
    let mut scheduler = storage.scheduler(backend.overlapped());
    let mut timeline = BurstTimeline::new();
    let var_names = castro_sedov_plot_vars();
    let inputs = cfg.inputs();

    let mut clock = 0.0f64;
    let mut outputs = 0u32;
    let mut codec_seconds = 0.0f64;
    let mut steps: Vec<StepInfo> = Vec::new();
    let mut last_dt = 0.0f64;
    // Dump registries: (simulation step, output counter, directory).
    let mut plot_dumps: Vec<(u64, u32, String)> = Vec::new();
    let mut check_dumps: Vec<(u64, u32, String)> = Vec::new();
    // Set when `stop_time` halts the run: phases gated at or after this
    // step are skipped (their steps never executed).
    let mut halted_at: Option<u64> = None;
    // Set by a restart read: the next Compute rewinds the source and
    // silently replays the hierarchy to this step first.
    let mut pending_rewind: Option<u64> = None;

    // Per-phase wall accounting and read/checkpoint totals.
    let mut compute_wall = 0.0f64;
    let mut plot_wall = 0.0f64;
    let mut check_wall = 0.0f64;
    let mut drain_wall = 0.0f64;
    let mut check_bytes = 0u64;
    let mut check_files = 0u64;
    let mut read_phase = ReadPhase::default();
    let mut analysis = AnalysisPhase::default();
    let mut restarts = 0u32;
    // The network plane: bytes and seconds streamed dumps spend on the
    // modeled link instead of a storage burst, plus producer stall on
    // consumer-window back-pressure.
    let mut net_bytes = 0u64;
    let mut net_wall = 0.0f64;
    let mut window_stall = 0.0f64;
    // Ships one in-transit dump on the application clock: encode CPU,
    // then the link transfer, then any back-pressure stall — no storage
    // burst, no timeline entry.
    let ship_dump = |clock: &mut f64,
                     net_bytes: &mut u64,
                     net_wall: &mut f64,
                     window_stall: &mut f64,
                     stats: &PlotfileStats| {
        *clock += stats.codec_seconds + stats.net_seconds + stats.window_stall;
        *net_bytes += stats.net_bytes;
        *net_wall += stats.net_seconds;
        *window_stall += stats.window_stall;
    };

    for sp in &program {
        if let (Some(h), Some(g)) = (halted_at, sp.gate) {
            if g >= h {
                continue;
            }
        }
        match &sp.phase {
            Phase::Compute => {
                if let Some(restore) = pending_rewind.take() {
                    if src.step_count() != restore {
                        // Rebuild the hierarchy from the restart dump:
                        // deterministic replay off the simulated clock
                        // (the state came from storage, not compute).
                        src.reset();
                        while src.step_count() < restore {
                            let _ = src.advance();
                        }
                    }
                }
                if src.time() >= cfg.stop_time {
                    halted_at = Some(sp.gate.unwrap_or(u64::MAX));
                    continue;
                }
                let info = src.advance();
                let cells: i64 = info.cells.iter().sum();
                let before = clock;
                clock = compute_phase(&comm, info.step, clock, cells, cfg.compute_ns_per_cell);
                compute_wall += clock - before;
                last_dt = info.dt;
                steps.push(info);
            }
            Phase::PlotDump => {
                let step = src.step_count();
                outputs += 1;
                let dir = cfg.plot_dir(step);
                let mut stats = plot_dump_stats(
                    cfg,
                    &src,
                    backend.as_mut(),
                    outputs,
                    &dir,
                    &var_names,
                    &inputs,
                )?;
                codec_seconds += stats.codec_seconds;
                let before = clock;
                if in_transit {
                    ship_dump(
                        &mut clock,
                        &mut net_bytes,
                        &mut net_wall,
                        &mut window_stall,
                        &stats,
                    );
                } else {
                    dump_burst(
                        &mut timeline,
                        &mut clock,
                        &mut scheduler,
                        outputs,
                        stats.codec_seconds,
                        &mut stats.requests,
                        stats.total_bytes,
                    );
                }
                plot_wall += clock - before;
                plot_dumps.push((step, outputs, dir));
            }
            Phase::Checkpoint => {
                let step = src.step_count();
                outputs += 1;
                let spec = CheckpointSpec {
                    dir: cfg.check_dir(step),
                    output_counter: outputs,
                    time: src.time(),
                    ncomp: hydro::NCOMP,
                    ref_ratio: cfg.grid.ref_ratio,
                    levels: src.checkpoint_levels(last_dt),
                };
                let mut stats = account_checkpoint_with(backend.as_mut(), &spec)?;
                codec_seconds += stats.codec_seconds;
                check_bytes += stats.total_bytes;
                check_files += stats.nfiles;
                let before = clock;
                if in_transit {
                    ship_dump(
                        &mut clock,
                        &mut net_bytes,
                        &mut net_wall,
                        &mut window_stall,
                        &stats,
                    );
                } else {
                    dump_burst(
                        &mut timeline,
                        &mut clock,
                        &mut scheduler,
                        outputs,
                        stats.codec_seconds,
                        &mut stats.requests,
                        stats.total_bytes,
                    );
                }
                check_wall += clock - before;
                check_dumps.push((step, outputs, spec.dir));
            }
            Phase::RestartRead { from_step, source } => {
                let registry = match source {
                    DumpSource::Plot => &plot_dumps,
                    DumpSource::Checkpoint => &check_dumps,
                };
                // Newest dump at or before the requested step; nothing
                // to recover means the phase is a no-op (e.g. the run
                // halted before any dump in range).
                let Some((step, counter, dir)) = registry
                    .iter()
                    .rev()
                    .find(|(s, _, _)| s <= from_step)
                    .cloned()
                else {
                    continue;
                };
                let phase = restart_read(
                    backend.as_mut(),
                    &mut scheduler,
                    &mut timeline,
                    &mut clock,
                    counter,
                    &dir,
                )?;
                read_phase.read_bytes += phase.read_bytes;
                read_phase.physical_read_bytes += phase.physical_read_bytes;
                read_phase.read_files += phase.read_files;
                read_phase.read_wall += phase.read_wall;
                read_phase.codec_seconds += phase.codec_seconds;
                restarts += 1;
                pending_rewind = Some(step);
            }
            Phase::AnalysisRead { sel, reorganize } => {
                let Some((_, counter, dir)) = plot_dumps.last().cloned() else {
                    continue;
                };
                let phase = analysis_read(
                    cfg.codec,
                    sel,
                    *reorganize,
                    backend.as_mut(),
                    fs,
                    &tracker,
                    &mut scheduler,
                    &mut timeline,
                    &mut clock,
                    counter,
                    &dir,
                )?;
                analysis.selective_read_bytes += phase.selective_read_bytes;
                analysis.selective_physical_read_bytes += phase.selective_physical_read_bytes;
                analysis.selective_read_files += phase.selective_read_files;
                analysis.selective_read_wall += phase.selective_read_wall;
                analysis.reorg_wall += phase.reorg_wall;
                analysis.reorg_bytes += phase.reorg_bytes;
                analysis.codec_seconds += phase.codec_seconds;
            }
            Phase::Drain => {
                let before = clock;
                if let Some(sched) = &scheduler {
                    clock = sched.finish(clock);
                }
                drain_wall += clock - before;
            }
        }
    }

    let engine_report = backend.close()?;
    drop(backend);
    // Seal rather than just barrier: on the fabric path this reports the
    // run's shared and solo-equivalent walls to its tenant stats and
    // retires the tenant from the machine room's quorum.
    let wall_time = match &mut scheduler {
        Some(sched) => sched.seal(clock),
        None => clock,
    };
    Ok(RunResult {
        config: cfg.clone(),
        scenario: scenario_name,
        tracker,
        steps,
        outputs,
        restarts,
        files_written: engine_report.files,
        physical_bytes: engine_report.bytes,
        logical_bytes: engine_report.logical_bytes,
        overhead_bytes: engine_report.overhead_bytes,
        codec_seconds: codec_seconds + read_phase.codec_seconds + analysis.codec_seconds,
        check_bytes,
        check_files,
        check_wall,
        read_bytes: read_phase.read_bytes,
        physical_read_bytes: read_phase.physical_read_bytes,
        read_files: read_phase.read_files,
        read_wall: read_phase.read_wall,
        selective_read_bytes: analysis.selective_read_bytes,
        selective_physical_read_bytes: analysis.selective_physical_read_bytes,
        selective_read_files: analysis.selective_read_files,
        selective_read_wall: analysis.selective_read_wall,
        reorg_wall: analysis.reorg_wall,
        reorg_bytes: analysis.reorg_bytes,
        compute_wall,
        plot_wall,
        drain_wall,
        net_bytes,
        net_wall,
        window_stall,
        timeline,
        wall_time,
    })
}

/// Writes (or accounts) one plot dump of the source's current hierarchy
/// through the backend: materialized when the engine holds field data
/// and the run is not account-only, exact size accounting otherwise.
fn plot_dump_stats<S: StepSource>(
    cfg: &CastroSedovConfig,
    src: &S,
    backend: &mut dyn IoBackend,
    output_counter: u32,
    dir: &str,
    var_names: &[String],
    inputs: &[(String, String)],
) -> std::io::Result<PlotfileStats> {
    if !cfg.account_only {
        if let Some(levels) = src.plot_levels() {
            let spec = PlotfileSpec {
                dir: dir.to_string(),
                output_counter,
                time: src.time(),
                var_names: var_names.to_vec(),
                ref_ratio: cfg.grid.ref_ratio,
                levels,
                inputs: inputs.to_vec(),
            };
            return write_plotfile_with(backend, &spec);
        }
    }
    let layout = PlotfileLayout {
        dir: dir.to_string(),
        output_counter,
        time: src.time(),
        var_names: var_names.to_vec(),
        ref_ratio: cfg.grid.ref_ratio,
        levels: src.layout_levels(),
        inputs: inputs.to_vec(),
    };
    Ok(account_plotfile_with(backend, &layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Engine;
    use io_engine::Scenario;

    fn cfg(max_step: u64, plot_int: u64, check_int: u64) -> CastroSedovConfig {
        CastroSedovConfig {
            engine: Engine::Oracle,
            max_step,
            plot_int,
            check_int,
            ..Default::default()
        }
    }

    fn counts(program: &[ScheduledPhase]) -> (usize, usize, usize, usize, usize, usize) {
        let of = |f: fn(&Phase) -> bool| program.iter().filter(|sp| f(&sp.phase)).count();
        (
            of(|p| matches!(p, Phase::Compute)),
            of(|p| matches!(p, Phase::PlotDump)),
            of(|p| matches!(p, Phase::Checkpoint)),
            of(|p| matches!(p, Phase::RestartRead { .. })),
            of(|p| matches!(p, Phase::AnalysisRead { .. })),
            of(|p| matches!(p, Phase::Drain)),
        )
    }

    #[test]
    fn write_only_program_mirrors_the_legacy_loop() {
        let program = compile_phases(&cfg(8, 2, 0)).unwrap();
        // Step-0 dump, 8 computes, dumps at 2,4,6,8, one drain.
        assert_eq!(counts(&program), (8, 5, 0, 0, 0, 1));
        assert_eq!(program[0], ScheduledPhase::always(Phase::PlotDump));
        assert_eq!(program.last().unwrap().phase, Phase::Drain);
        // Every in-loop phase is gated by its step.
        assert!(program[1..program.len() - 1]
            .iter()
            .all(|sp| sp.gate.is_some()));
    }

    #[test]
    fn checkpoint_cadence_inserts_checkpoints_after_plots() {
        let program = compile_phases(&cfg(8, 4, 4)).unwrap();
        let (_, plots, checks, _, _, _) = counts(&program);
        assert_eq!(plots, 3, "plot dumps at steps 0, 4, 8");
        assert_eq!(checks, 2, "checkpoints at steps 4, 8");
        // At a coinciding step the plot dump precedes the checkpoint
        // (the legacy output-counter order).
        let step4: Vec<&Phase> = program
            .iter()
            .filter(|sp| sp.gate == Some(4))
            .map(|sp| &sp.phase)
            .collect();
        assert_eq!(
            step4,
            vec![&Phase::Compute, &Phase::PlotDump, &Phase::Checkpoint]
        );
    }

    #[test]
    fn check_op_overrides_the_config_cadence() {
        let mut c = cfg(8, 4, 4);
        c.scenario = Some(Scenario::parse("write;check@2").unwrap());
        let program = compile_phases(&c).unwrap();
        let (_, _, checks, _, _, _) = counts(&program);
        assert_eq!(checks, 4, "check@2 wins over check_int=4");
    }

    #[test]
    fn fail_restart_program_replays_the_lost_window() {
        let mut c = cfg(12, 4, 0);
        c.scenario = Some(Scenario::fail_restart(10));
        let program = compile_phases(&c).unwrap();
        // Restart point: plot dump at step 8 -> 2 replay computes.
        let (computes, plots, _, restarts, _, _) = counts(&program);
        assert_eq!(computes, 14, "12 steps + 2 replayed");
        assert_eq!(plots, 4, "no dump is re-emitted");
        assert_eq!(restarts, 1);
        let restart = program
            .iter()
            .find(|sp| matches!(sp.phase, Phase::RestartRead { .. }))
            .unwrap();
        assert_eq!(
            restart.phase,
            Phase::RestartRead {
                from_step: 8,
                source: DumpSource::Plot,
            }
        );
        assert_eq!(restart.gate, Some(10), "skipped if the run halts early");

        // With a checkpoint cadence the restart source switches.
        let mut c = cfg(12, 4, 4);
        c.scenario = Some(Scenario::fail_restart(10));
        let program = compile_phases(&c).unwrap();
        let restart = program
            .iter()
            .find(|sp| matches!(sp.phase, Phase::RestartRead { .. }))
            .unwrap();
        assert_eq!(
            restart.phase,
            Phase::RestartRead {
                from_step: 8,
                source: DumpSource::Checkpoint,
            }
        );
    }

    #[test]
    fn in_run_analysis_follows_its_dump_inside_the_loop() {
        let mut c = cfg(8, 2, 0);
        c.scenario = Some(Scenario::parse("write;analyze_every:2:level:1").unwrap());
        let program = compile_phases(&c).unwrap();
        // Dumps 2 and 4 (steps 2 and 6) get an analysis phase, gated at
        // the same step as their dump — in the loop, not trailing.
        let analyses: Vec<Option<u64>> = program
            .iter()
            .filter(|sp| matches!(sp.phase, Phase::AnalysisRead { .. }))
            .map(|sp| sp.gate)
            .collect();
        assert_eq!(analyses, vec![Some(2), Some(6)]);
    }

    #[test]
    fn trailing_ops_compile_in_order_before_the_drain() {
        let mut c = cfg(4, 2, 0);
        c.scenario = Some(Scenario::parse("write;restart;analyze:level:1").unwrap());
        let program = compile_phases(&c).unwrap();
        let n = program.len();
        assert!(matches!(
            program[n - 3].phase,
            Phase::RestartRead {
                source: DumpSource::Plot,
                ..
            }
        ));
        assert!(program[n - 3].gate.is_none(), "trailing reads always run");
        assert!(matches!(program[n - 2].phase, Phase::AnalysisRead { .. }));
        assert_eq!(program[n - 1].phase, Phase::Drain);
    }

    #[test]
    fn readall_compiles_one_gated_read_per_dump() {
        let mut c = cfg(4, 2, 0);
        c.scenario = Some(Scenario::parse("write;readall").unwrap());
        let program = compile_phases(&c).unwrap();
        let reads: Vec<(Option<u64>, u64)> = program
            .iter()
            .filter_map(|sp| match &sp.phase {
                Phase::RestartRead { from_step, .. } => Some((sp.gate, *from_step)),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec![(None, 0), (Some(2), 2), (Some(4), 4)]);
    }

    #[test]
    fn fail_with_zero_plot_int_restores_from_the_step_zero_dump() {
        // Regression: the restart-point arithmetic divided by plot_int,
        // so the (supported) plot_int=0 config panicked. Only the step-0
        // dump exists there — recovery replays the whole run.
        let mut c = cfg(6, 0, 0);
        c.scenario = Some(Scenario::fail_restart(4));
        let program = compile_phases(&c).unwrap();
        let restart = program
            .iter()
            .find(|sp| matches!(sp.phase, Phase::RestartRead { .. }))
            .unwrap();
        assert_eq!(
            restart.phase,
            Phase::RestartRead {
                from_step: 0,
                source: DumpSource::Plot,
            }
        );
        let (computes, plots, _, _, _, _) = counts(&program);
        assert_eq!(computes, 6 + 4, "all 4 lost steps replayed");
        assert_eq!(plots, 1, "only the step-0 dump exists");
        // And the program executes end to end.
        let r = crate::run::run_simulation(&c, None, None);
        assert_eq!(r.restarts, 1);
        assert_eq!(r.read_bytes, r.tracker.bytes_per_step()[&1]);
    }

    #[test]
    fn compile_rejects_unreachable_failures() {
        let mut c = cfg(8, 2, 0);
        c.scenario = Some(Scenario::fail_restart(9));
        assert!(compile_phases(&c).is_err(), "fail@9 > max_step 8");
        c.scenario = Some(Scenario::fail_restart(8));
        assert!(compile_phases(&c).is_ok());
    }
}
