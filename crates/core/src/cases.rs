//! The paper's named cases.
//!
//! * `case4` — the pivot: 512^2 level-0 mesh on 2 Summit nodes (32
//!   tasks), 20 outputs, varied CFL and max_level (Figs. 6, 7, 9, 10).
//! * `case27` — 1024^2 level-0 mesh on 64 ranks, 4 mesh levels, 5 output
//!   steps (Fig. 8).
//! * `big8192` — the large 8192^2 run on 64 Summit nodes (Fig. 11).
//!
//! Exact Summit step counts are not reachable in this environment for the
//! hydro engine; each case has a `scaled` flag variant used by tests and
//! a full variant used by the benches (oracle engine where needed).

use crate::config::{CastroSedovConfig, Engine};
use amr_mesh::GridParams;
use hydro::TimestepControl;

fn grid_default() -> GridParams {
    GridParams {
        ref_ratio: 2,
        blocking_factor: 8,
        max_grid_size: 256,
        n_error_buf: 2,
        grid_eff: 0.7,
    }
}

/// The case4 pivot with configurable CFL and max_level (the Fig. 10
/// grid: cfl in {0.3, 0.6}, maxl in {2, 4}).
///
/// `outputs` controls the number of plot dumps (the paper shows 20 for
/// Fig. 6 and up to 200 steps for Figs. 9-10).
pub fn case4(cfl: f64, max_level: usize, outputs: u64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: format!("case4_cfl{cfl}_maxl{max_level}"),
        engine: Engine::Oracle,
        n_cell: 512,
        max_level,
        max_step: outputs,
        stop_time: 0.5,
        plot_int: 1,
        regrid_int: 2,
        grid: grid_default(),
        nprocs: 32,
        ctrl: TimestepControl {
            cfl,
            // The oracle starts CFL-limited immediately: its dt floor is
            // the similarity solution at the deposit radius, so Castro's
            // protective init_shrink would only freeze the shock for the
            // first ~50 steps without changing any byte counts.
            init_shrink: 1.0,
            change_max: 1.1,
        },
        account_only: true,
        ..Default::default()
    }
}

/// A hydro-engine (exact solver) variant of case4 scaled down for tests.
pub fn case4_hydro_scaled(cfl: f64, max_level: usize) -> CastroSedovConfig {
    CastroSedovConfig {
        name: format!("case4s_cfl{cfl}_maxl{max_level}"),
        engine: Engine::Hydro,
        n_cell: 128,
        max_level,
        max_step: 30,
        plot_int: 2,
        grid: GridParams {
            max_grid_size: 64,
            ..grid_default()
        },
        nprocs: 8,
        ctrl: TimestepControl {
            cfl,
            init_shrink: 0.3,
            change_max: 1.3,
        },
        account_only: true,
        ..Default::default()
    }
}

/// case27: the Fig. 8 per-task study — 1024^2 L0 mesh, 64 ranks, 4 mesh
/// levels, 5 output steps.
pub fn case27() -> CastroSedovConfig {
    CastroSedovConfig {
        name: "case27".to_string(),
        engine: Engine::Oracle,
        n_cell: 1024,
        max_level: 3, // 4 mesh levels L0..L3
        max_step: 50,
        stop_time: 0.5,
        plot_int: 10, // 5 output steps
        regrid_int: 2,
        grid: grid_default(),
        nprocs: 64,
        ctrl: TimestepControl {
            cfl: 0.5,
            init_shrink: 1.0,
            change_max: 1.1,
        },
        account_only: true,
        ..Default::default()
    }
}

/// The large Fig. 11 case: 8192^2 L0 mesh on 64 Summit nodes.
pub fn big8192(outputs: u64) -> CastroSedovConfig {
    CastroSedovConfig {
        name: "big8192".to_string(),
        engine: Engine::Oracle,
        n_cell: 8192,
        max_level: 2,
        max_step: outputs,
        stop_time: 0.5,
        plot_int: 1,
        regrid_int: 4,
        grid: grid_default(),
        nprocs: 128,
        ctrl: TimestepControl {
            cfl: 0.5,
            init_shrink: 1.0,
            change_max: 1.1,
        },
        account_only: true,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_simulation;

    #[test]
    fn case4_matches_paper_description() {
        let cfg = case4(0.4, 4, 20);
        assert_eq!(cfg.n_cell, 512);
        assert_eq!(cfg.nprocs, 32); // 2 Summit nodes x 16... 32 tasks
        assert_eq!(cfg.max_level, 4);
        assert_eq!(cfg.plot_int, 1);
        assert_eq!(cfg.cfl(), 0.4);
    }

    #[test]
    fn case27_matches_paper_description() {
        let cfg = case27();
        assert_eq!(cfg.n_cell, 1024);
        assert_eq!(cfg.nprocs, 64);
        assert_eq!(cfg.max_level + 1, 4, "4 mesh levels");
        assert_eq!(cfg.max_step / cfg.plot_int, 5, "5 output steps");
    }

    #[test]
    fn case4_runs_and_produces_outputs() {
        let r = run_simulation(&case4(0.4, 2, 10), None, None);
        assert_eq!(r.outputs, 11); // step-0 dump + 10
        assert!(r.tracker.total_bytes() > 0);
    }

    #[test]
    fn cfl_and_levels_inflate_output() {
        // The Fig. 6 claim: more levels and higher CFL produce more bytes
        // over the same number of outputs.
        let lo = run_simulation(&case4(0.3, 2, 30), None, None);
        let hi_lvl = run_simulation(&case4(0.3, 4, 30), None, None);
        assert!(
            hi_lvl.tracker.total_bytes() > lo.tracker.total_bytes(),
            "levels: {} vs {}",
            hi_lvl.tracker.total_bytes(),
            lo.tracker.total_bytes()
        );
        let hi_cfl = run_simulation(&case4(0.6, 2, 30), None, None);
        assert!(
            hi_cfl.tracker.total_bytes() >= lo.tracker.total_bytes(),
            "cfl: {} vs {}",
            hi_cfl.tracker.total_bytes(),
            lo.tracker.total_bytes()
        );
    }
}
