//! The append-only, queryable results store: [`ResultsStore`].
//!
//! Before this module, every campaign's [`RunSummary`] set was thrown
//! away into a one-off JSON blob under `results/` — each bench wrote its
//! own schema, nothing accumulated, and re-running a sweep re-executed
//! every cell. The store graduates `results/` to a durable substrate:
//!
//! * **Append-only JSON lines** (`runs.jsonl`): one schema-versioned
//!   record per run, `{"schema":1,"cell":"<hash>","summary":{...}}`,
//!   keyed by the [`crate::spec::SpecCell`] content hash. Appends never
//!   rewrite existing bytes, so a crashed campaign loses at most its
//!   in-flight record and concurrent readers never see torn state.
//! * **A query API** ([`Query`]): filter rows by column values, project
//!   columns, group/aggregate — the summaries are queried as JSON rows,
//!   so every present *and future* `RunSummary` column is addressable
//!   without store migrations. `model` fits plug in via
//!   [`Query::xy`] / [`Query::fit`].
//! * **Resumable, parallel campaigns** ([`run_spec`]): executing an
//!   [`ExperimentSpec`] against a populated store runs only the cells
//!   whose content hash is missing; everything already persisted is
//!   served back from disk, byte-identical. Add one value to an axis
//!   and only the new cells execute. Pending cells run concurrently —
//!   storage cells on the rayon pool, tenancy cells as mirrored clone
//!   groups on native threads with a per-invocation solo-shadow memo —
//!   and each finished cell batch-appends under one short lock, so the
//!   log stays cell-contiguous whatever the completion order.
//!   [`run_spec_serial`] is the order-faithful sequential reference.
//! * **A compat reader** ([`read_legacy_blob`]): the old single-blob
//!   artifacts (`results/backend_compare.json`,
//!   `results/machine_room.json`) load into the same [`Query`] surface,
//!   so analyses written against the store can read pre-store results.
//!
//! ```no_run
//! use amrproxy::spec::ExperimentSpec;
//! use amrproxy::store::{run_spec, ResultsStore};
//! use iosim::StorageModel;
//!
//! let spec = ExperimentSpec::load("specs/smoke.toml").unwrap();
//! let mut store = ResultsStore::open("results/store").unwrap();
//! let storage = StorageModel::ideal(4, 2.5e8);
//! let first = run_spec(&spec, &mut store, Some(&storage)).unwrap();
//! let again = run_spec(&spec, &mut store, Some(&storage)).unwrap();
//! assert_eq!(again.executed, 0, "second run is resume-only");
//! let walls = store.query().filter("backend", "fpp").numbers("wall_time");
//! assert_eq!(walls.len(), first.summaries.len() / 2);
//! ```

use crate::campaign::{
    run_campaign_fabric_cloned, run_campaign_fabric_memoized, run_campaign_serial,
    run_campaign_timed_serial, RunSummary,
};
use crate::spec::{ExperimentSpec, SpecCell, SpecError};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Wire schema of a store record. Bump when a record's *envelope*
/// changes shape; `RunSummary` column additions ride on serde defaults
/// and do not bump it.
pub const STORE_SCHEMA: u32 = 1;

/// An append-only results store over a directory (`<dir>/runs.jsonl`).
///
/// All records stay resident in memory (a campaign is thousands of rows,
/// not millions); the file is the durable log. Opening replays the log,
/// appending writes one line and flushes.
#[derive(Debug)]
pub struct ResultsStore {
    dir: PathBuf,
    file: File,
    rows: Vec<(String, Value)>,
    /// Row indices per cell key, in append order.
    index: HashMap<String, Vec<usize>>,
    /// Bytes of `runs.jsonl` already replayed into `rows` — the
    /// [`Self::refresh`] fast path's cursor. Every append (ours or a
    /// replayed one) advances it, so a reused store object never
    /// re-reads bytes it has already ingested.
    log_len: u64,
}

/// Parses one log line into its `(cell, summary)` pair, or `None` for a
/// blank line. `at` renders the error location (`path:line` on open,
/// `path@byte` on [`ResultsStore::refresh`]).
fn parse_record(line: &str, at: impl Fn() -> String) -> std::io::Result<Option<(String, Value)>> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let record: Value = serde_json::from_str(line).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{}: {e}", at()))
    })?;
    let schema = record
        .get("schema")
        .and_then(Value::as_u64)
        .unwrap_or_default() as u32;
    if schema != STORE_SCHEMA {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: record schema {schema}, this reader speaks {STORE_SCHEMA}",
                at()
            ),
        ));
    }
    let cell = record
        .get("cell")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let summary = record.get("summary").cloned().unwrap_or(Value::Null);
    Ok(Some((cell, summary)))
}

impl ResultsStore {
    /// Opens (creating if needed) the store at `dir`, replaying any
    /// existing log. Records with an unknown schema are an error — a
    /// newer writer's store must not be silently misread.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("runs.jsonl");
        let mut rows = Vec::new();
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        let mut log_len = 0u64;
        if path.exists() {
            let mut reader = BufReader::new(File::open(&path)?);
            let mut line = String::new();
            let mut lineno = 0usize;
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                log_len += n as u64;
                lineno += 1;
                let at = || format!("{}:{lineno}", path.display());
                if let Some((cell, summary)) = parse_record(&line, at)? {
                    index.entry(cell.clone()).or_default().push(rows.len());
                    rows.push((cell, summary));
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            dir,
            file,
            rows,
            index,
            log_len,
        })
    }

    /// Ingests any log bytes appended *behind this store object's back*
    /// (a second handle, another process) without re-reading the whole
    /// file: stats `runs.jsonl`, and when it grew past the bytes already
    /// replayed, parses only the tail. Returns the number of rows added
    /// — `Ok(0)` without touching file contents when nothing changed,
    /// which makes reopening-by-refresh O(1) instead of O(log).
    pub fn refresh(&mut self) -> std::io::Result<usize> {
        let path = self.dir.join("runs.jsonl");
        let size = std::fs::metadata(&path)?.len();
        if size == self.log_len {
            return Ok(0);
        }
        if size < self.log_len {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: log shrank ({} bytes, {} already replayed) — appends never rewrite",
                    path.display(),
                    size,
                    self.log_len
                ),
            ));
        }
        let mut f = File::open(&path)?;
        f.seek(SeekFrom::Start(self.log_len))?;
        let mut reader = BufReader::new(f);
        let mut line = String::new();
        let mut added = 0usize;
        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            let offset = self.log_len;
            self.log_len += n as u64;
            let at = || format!("{}@{offset}", path.display());
            if let Some((cell, summary)) = parse_record(&line, at)? {
                self.index
                    .entry(cell.clone())
                    .or_default()
                    .push(self.rows.len());
                self.rows.push((cell, summary));
                added += 1;
            }
        }
        Ok(added)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of persisted run records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when at least one record is persisted under `cell` — the
    /// resume predicate.
    pub fn contains(&self, cell: &str) -> bool {
        self.index.contains_key(cell)
    }

    /// Appends one summary under a cell key: one JSON line, flushed.
    pub fn append(&mut self, cell: &str, summary: &RunSummary) -> std::io::Result<()> {
        self.append_row(cell, &summary.to_value())
    }

    /// Appends one arbitrary JSON row under a cell key — the path bench
    /// artifacts (non-`RunSummary` tables) persist through; [`Self::append`]
    /// is the typed wrapper campaigns use.
    pub fn append_row(&mut self, cell: &str, row: &Value) -> std::io::Result<()> {
        let mut batch = String::new();
        Self::encode_record(&mut batch, cell, row)?;
        self.file.write_all(batch.as_bytes())?;
        self.file.flush()?;
        self.log_len += batch.len() as u64;
        self.index
            .entry(cell.to_string())
            .or_default()
            .push(self.rows.len());
        self.rows.push((cell.to_string(), row.clone()));
        Ok(())
    }

    /// Appends a fully-executed cell's summaries as one batch: every
    /// record is encoded first, then written with a single `write_all`
    /// and one flush. The parallel spec executor commits each finished
    /// cell through here under one short lock, so a cell's rows are
    /// always contiguous in the log regardless of completion order, and
    /// a crash between cells never leaves a partially-appended cell
    /// (the whole batch reaches the kernel in one call or not at all).
    /// Byte-for-byte, the log is identical to `summaries.len()` calls
    /// to [`Self::append`] — resume readers cannot tell them apart.
    pub fn append_cell(&mut self, cell: &str, summaries: &[RunSummary]) -> std::io::Result<()> {
        let mut batch = String::new();
        let values: Vec<Value> = summaries.iter().map(RunSummary::to_value).collect();
        for row in &values {
            Self::encode_record(&mut batch, cell, row)?;
        }
        self.file.write_all(batch.as_bytes())?;
        self.file.flush()?;
        self.log_len += batch.len() as u64;
        for row in values {
            self.index
                .entry(cell.to_string())
                .or_default()
                .push(self.rows.len());
            self.rows.push((cell.to_string(), row));
        }
        Ok(())
    }

    /// Encodes one wire record (envelope + newline) onto `batch`.
    fn encode_record(batch: &mut String, cell: &str, row: &Value) -> std::io::Result<()> {
        let record = Value::Object(vec![
            ("schema".to_string(), serde_json::to_value(&STORE_SCHEMA)),
            ("cell".to_string(), Value::String(cell.to_string())),
            ("summary".to_string(), row.clone()),
        ]);
        let line = serde_json::to_string(&record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        batch.push_str(&line);
        batch.push('\n');
        Ok(())
    }

    /// All summaries persisted under `cell`, in append order (a
    /// throughput cell stores one summary per tenant).
    pub fn get(&self, cell: &str) -> Vec<RunSummary> {
        self.index
            .get(cell)
            .map(|idxs| {
                idxs.iter()
                    .filter_map(|&i| RunSummary::from_value(&self.rows[i].1).ok())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A query over every persisted summary row.
    pub fn query(&self) -> Query {
        Query {
            rows: self.rows.clone(),
        }
    }
}

/// A filterable, projectable view over summary rows (JSON objects).
/// Filters narrow, projections extract, aggregates reduce; all columns
/// are addressed by their JSON field name, so queries keep working as
/// `RunSummary` grows columns.
#[derive(Clone, Debug)]
pub struct Query {
    rows: Vec<(String, Value)>,
}

impl Query {
    /// A query over free-standing JSON rows (no cell keys) — the compat
    /// path for legacy blob artifacts ([`read_legacy_blob`]).
    pub fn from_values(rows: Vec<Value>) -> Self {
        Self {
            rows: rows.into_iter().map(|v| (String::new(), v)).collect(),
        }
    }

    /// Remaining row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows remain.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw `(cell, row)` pairs.
    pub fn rows(&self) -> &[(String, Value)] {
        &self.rows
    }

    /// Keeps rows whose `column` renders equal to `value` (strings
    /// compare directly; numbers and booleans by their JSON spelling).
    pub fn filter(mut self, column: &str, value: &str) -> Self {
        self.rows.retain(|(_, row)| {
            row.get(column).is_some_and(|v| match v {
                Value::String(s) => s == value,
                other => serde_json::to_string(other)
                    .map(|s| s == value)
                    .unwrap_or(false),
            })
        });
        self
    }

    /// Keeps rows where `predicate` holds on `column`'s numeric value
    /// (rows without the column or with a non-number are dropped).
    pub fn filter_num(mut self, column: &str, predicate: impl Fn(f64) -> bool) -> Self {
        self.rows.retain(|(_, row)| {
            row.get(column)
                .and_then(Value::as_f64)
                .is_some_and(&predicate)
        });
        self
    }

    /// Projects one column (missing → `Null`).
    pub fn column(&self, column: &str) -> Vec<Value> {
        self.rows
            .iter()
            .map(|(_, row)| row.get(column).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Projects a numeric column (non-numbers are skipped).
    pub fn numbers(&self, column: &str) -> Vec<f64> {
        self.rows
            .iter()
            .filter_map(|(_, row)| row.get(column).and_then(Value::as_f64))
            .collect()
    }

    /// Projects a string column (non-strings are skipped).
    pub fn strings(&self, column: &str) -> Vec<String> {
        self.rows
            .iter()
            .filter_map(|(_, row)| row.get(column).and_then(Value::as_str).map(String::from))
            .collect()
    }

    /// Deserializes the remaining rows back into [`RunSummary`]s (rows
    /// that do not parse — e.g. legacy blob rows — are skipped).
    pub fn summaries(&self) -> Vec<RunSummary> {
        self.rows
            .iter()
            .filter_map(|(_, row)| RunSummary::from_value(row).ok())
            .collect()
    }

    /// Projects two numeric columns as a labelled [`model::XySeries`] —
    /// the bridge from store rows to the regression plane.
    pub fn xy(&self, x: &str, y: &str, label: impl Into<String>) -> model::XySeries {
        let pairs: Vec<(f64, f64)> = self
            .rows
            .iter()
            .filter_map(|(_, row)| {
                Some((
                    row.get(x).and_then(Value::as_f64)?,
                    row.get(y).and_then(Value::as_f64)?,
                ))
            })
            .collect();
        model::XySeries::from_pairs(label, &pairs)
    }

    /// Least-squares line over two numeric columns
    /// (`model::linear_fit`).
    pub fn fit(&self, x: &str, y: &str) -> model::LinearFit {
        self.xy(x, y, "fit").fit()
    }

    /// Mean of a numeric column (0.0 when empty).
    pub fn mean(&self, column: &str) -> f64 {
        let vals = self.numbers(column);
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Groups rows by a key column's rendered value and averages a
    /// numeric column per group, in first-seen group order — the
    /// campaign-table aggregate (`group_mean("backend", "wall_time")`).
    pub fn group_mean(&self, key: &str, value: &str) -> Vec<(String, f64)> {
        let mut groups: Vec<(String, f64, usize)> = Vec::new();
        for (_, row) in &self.rows {
            let Some(k) = row.get(key).map(|v| match v {
                Value::String(s) => s.clone(),
                other => serde_json::to_string(other).unwrap_or_default(),
            }) else {
                continue;
            };
            let Some(v) = row.get(value).and_then(Value::as_f64) else {
                continue;
            };
            match groups.iter_mut().find(|(g, _, _)| *g == k) {
                Some((_, sum, n)) => {
                    *sum += v;
                    *n += 1;
                }
                None => groups.push((k, v, 1)),
            }
        }
        groups
            .into_iter()
            .map(|(k, sum, n)| (k, sum / n as f64))
            .collect()
    }
}

/// Loads a pre-store artifact into query rows: a JSON array becomes one
/// row per element, a single JSON object becomes one row — the two blob
/// shapes `results/` accumulated before the store existed
/// (`backend_compare.json` rows, `machine_room.json` object).
pub fn read_legacy_blob(path: impl AsRef<Path>) -> Result<Query, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    let rows = match value {
        Value::Array(items) => items,
        obj @ Value::Object(_) => vec![obj],
        other => {
            return Err(format!(
                "{}: expected a JSON array or object at the top level, got {other:?}",
                path.display()
            ))
        }
    };
    Ok(Query::from_values(rows))
}

/// Outcome of [`run_spec`]: the cells' summaries (spec order, resumed
/// cells served from the store) and the execute/resume split.
#[derive(Clone, Debug)]
pub struct SpecReport {
    /// One summary per run, in spec cell order (throughput cells
    /// contribute one summary per tenant).
    pub summaries: Vec<RunSummary>,
    /// Cells actually executed this invocation.
    pub executed: usize,
    /// Cells served from the store without executing.
    pub resumed: usize,
}

/// Compiles and executes a spec against a store, resuming persisted
/// cells: a cell whose content key is already in the store is read
/// back instead of run, so the second invocation of the same spec
/// executes zero cells and a spec extended by one axis value executes
/// only the new cells.
///
/// `default_storage` prices cells without a `storage` axis value
/// (`None` runs them untimed). Throughput cells (tenants > 1) require a
/// storage model — they are priced on a shared fabric by construction.
///
/// Pending cells execute **concurrently**: pure-storage cells fan out
/// over the rayon pool, while fabric/tenancy cells run on dedicated
/// `std::thread::scope` natives (same rule as
/// [`crate::campaign::run_campaign_fabric`] — fabric code may park on
/// the quorum condvar, and a parked rayon worker would starve the
/// pool). Tenancy cells themselves execute as *mirrored clone groups*
/// ([`run_campaign_fabric_cloned`]): one real application run, the
/// clones' traffic synthesized inside the engine, with the solo shadow
/// memoized per [`SpecCell::solo_key`] across the invocation — so a
/// throughput ladder prices its solo baseline once. Each finished cell
/// commits through [`ResultsStore::append_cell`] under one short lock,
/// in completion order; a row is written only when its whole cell is
/// done, so a crash never leaves a partial cell and resume (which is
/// keyed, not ordered) is insensitive to the interleaving. Returned
/// summaries stay in spec cell order.
///
/// [`run_spec_serial`] is the sequential reference with identical
/// results (the parallel-equivalence property tests pin one against
/// the other).
pub fn run_spec(
    spec: &ExperimentSpec,
    store: &mut ResultsStore,
    default_storage: Option<&iosim::StorageModel>,
) -> Result<SpecReport, SpecError> {
    use rayon::prelude::*;

    let cells = spec.compile()?;
    let mut slots: Vec<Option<Vec<RunSummary>>> = vec![None; cells.len()];
    let mut pending: Vec<(usize, &SpecCell)> = Vec::new();
    let mut resumed = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        if store.contains(&cell.key) {
            slots[i] = Some(store.get(&cell.key));
            resumed += 1;
        } else {
            pending.push((i, cell));
        }
    }
    let executed = pending.len();
    if executed > 0 {
        let memo = iosim::SoloMemo::new();
        let (fabric_cells, solo_cells): (Vec<_>, Vec<_>) =
            pending.into_iter().partition(|(_, c)| c.tenants > 1);
        // Tenancy cells sharing a solo baseline form one *chain*, run in
        // spec order on one native thread: the chain's head prices the
        // solo shadow cold and fills the memo, every later rung hits it.
        // Chaining (rather than racing) keeps the memo's filler — and so
        // the solo columns — deterministic and equal to the serial
        // reference's, which also meets the head first.
        let mut chains: Vec<(&str, Vec<(usize, &SpecCell)>)> = Vec::new();
        for (slot, cell) in fabric_cells {
            match chains.iter_mut().find(|(k, _)| *k == cell.solo_key) {
                Some((_, chain)) => chain.push((slot, cell)),
                None => chains.push((&cell.solo_key, vec![(slot, cell)])),
            }
        }
        // Completion-order sink: a worker that finishes a cell takes the
        // lock just long enough to batch-append the cell's rows and park
        // the summaries in their spec-order slot.
        struct Sink<'a> {
            store: &'a mut ResultsStore,
            slots: &'a mut [Option<Vec<RunSummary>>],
            errors: Vec<SpecError>,
        }
        let sink = Mutex::new(Sink {
            store,
            slots: &mut slots,
            errors: Vec::new(),
        });
        let commit = |slot: usize, key: &str, produced: Result<Vec<RunSummary>, SpecError>| {
            let mut sink = sink.lock().unwrap();
            match produced {
                Ok(rows) => match sink.store.append_cell(key, &rows) {
                    Ok(()) => sink.slots[slot] = Some(rows),
                    Err(e) => sink
                        .errors
                        .push(SpecError::Parse(format!("store append failed: {e}"))),
                },
                Err(e) => sink.errors.push(e),
            }
        };
        std::thread::scope(|scope| {
            for (_, chain) in &chains {
                let commit = &commit;
                let memo = &memo;
                scope.spawn(move || {
                    for &(slot, cell) in chain {
                        commit(
                            slot,
                            &cell.key,
                            execute_cell_fast(cell, default_storage, memo),
                        );
                    }
                });
            }
            solo_cells.par_iter().for_each(|&(slot, cell)| {
                commit(slot, &cell.key, execute_cell(cell, default_storage, &memo))
            });
        });
        let sink = sink.into_inner().unwrap();
        if let Some(err) = sink.errors.into_iter().next() {
            return Err(err);
        }
    }
    let mut report = SpecReport {
        summaries: Vec::with_capacity(cells.len()),
        executed,
        resumed,
    };
    for slot in slots {
        report
            .summaries
            .extend(slot.expect("every cell is either resumed or committed"));
    }
    Ok(report)
}

/// Sequential reference implementation of [`run_spec`]: one cell at a
/// time in spec order, tenancy cells priced as a *threaded* fleet (one
/// native thread per tenant — no clone mirroring). The solo baseline
/// still goes through a per-invocation memo, because that defines the
/// solo columns' semantics (see [`run_campaign_fabric_memoized`]); the
/// first pending cell per [`SpecCell::solo_key`] fills it in spec
/// order, exactly the cell the parallel executor's chains elect. The
/// parallel executor must be indistinguishable from this by results —
/// same summary multiset, same resume mask, same persisted rows — and
/// `tests/proptests_spec_parallel.rs` holds it to that.
pub fn run_spec_serial(
    spec: &ExperimentSpec,
    store: &mut ResultsStore,
    default_storage: Option<&iosim::StorageModel>,
) -> Result<SpecReport, SpecError> {
    let cells = spec.compile()?;
    let memo = iosim::SoloMemo::new();
    let mut report = SpecReport {
        summaries: Vec::with_capacity(cells.len()),
        executed: 0,
        resumed: 0,
    };
    for cell in &cells {
        if store.contains(&cell.key) {
            report.summaries.extend(store.get(&cell.key));
            report.resumed += 1;
            continue;
        }
        let produced = execute_cell(cell, default_storage, &memo)?;
        store
            .append_cell(&cell.key, &produced)
            .map_err(|e| SpecError::Parse(format!("store append failed: {e}")))?;
        report.summaries.extend(produced);
        report.executed += 1;
    }
    Ok(report)
}

/// Runs one compiled cell: solo cells on their (or the default) storage
/// model, throughput cells as N clones on one shared fabric (a threaded
/// fleet with the memoized solo baseline — the serial reference
/// semantics the parallel fast path must match).
fn execute_cell(
    cell: &SpecCell,
    default_storage: Option<&iosim::StorageModel>,
    memo: &iosim::SoloMemo,
) -> Result<Vec<RunSummary>, SpecError> {
    let storage = cell.storage.map(|p| p.build());
    let storage = storage.as_ref().or(default_storage);
    if cell.tenants > 1 {
        let storage = storage.ok_or_else(|| {
            SpecError::Parse(format!(
                "throughput cell '{}' needs a storage model (storage axis or default)",
                cell.config.name
            ))
        })?;
        let clones = cell_clones(cell);
        return Ok(run_campaign_fabric_memoized(
            &clones,
            storage,
            memo,
            &cell.solo_key,
        ));
    }
    let cfg = std::slice::from_ref(&cell.config);
    Ok(match storage {
        Some(s) => run_campaign_timed_serial(cfg, s),
        None => run_campaign_serial(cfg),
    })
}

/// The N tenant configurations of a throughput cell: identical clones
/// under `_t{i}` names.
fn cell_clones(cell: &SpecCell) -> Vec<crate::config::CastroSedovConfig> {
    (0..cell.tenants)
        .map(|i| crate::config::CastroSedovConfig {
            name: format!("{}_t{i}", cell.config.name),
            ..cell.config.clone()
        })
        .collect()
}

/// [`execute_cell`] for the parallel executor's tenancy cells: the N
/// clones (identical by construction — one spec config fanned out under
/// `_t{i}` names) run as a mirrored clone group, one real application
/// run instead of N, with the solo shadow served from `memo` when an
/// earlier cell on the same [`SpecCell::solo_key`] already priced it.
/// Bit-identical to [`execute_cell`]'s threaded fleet.
fn execute_cell_fast(
    cell: &SpecCell,
    default_storage: Option<&iosim::StorageModel>,
    memo: &iosim::SoloMemo,
) -> Result<Vec<RunSummary>, SpecError> {
    debug_assert!(cell.tenants > 1, "fast path is the tenancy path");
    let storage = cell.storage.map(|p| p.build());
    let storage = storage.as_ref().or(default_storage).ok_or_else(|| {
        SpecError::Parse(format!(
            "throughput cell '{}' needs a storage model (storage axis or default)",
            cell.config.name
        ))
    })?;
    let clones = cell_clones(cell);
    Ok(run_campaign_fabric_cloned(
        &clones,
        storage,
        Some((memo, &cell.solo_key)),
    ))
}

/// Merges columns into a JSON-object bench artifact without clobbering
/// columns other writers own: reads `path` if it already holds a JSON
/// object, overwrites/inserts the given keys (preserving the existing
/// key order for the rest), and writes the result back. The machine-room
/// artifact (`BENCH_campaign.json`) has three writers — the example, the
/// criterion bench, and the spec-campaign example — and a plain
/// serialize-and-write from any one of them silently drops the others'
/// columns.
pub fn update_bench_artifact(
    path: impl AsRef<Path>,
    columns: &[(&str, Value)],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut entries: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Object(entries)) => entries,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    for (key, value) in columns {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.clone(),
            None => entries.push((key.to_string(), value.clone())),
        }
    }
    let text = serde_json::to_string_pretty(&Value::Object(entries))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CastroSedovConfig, Engine};
    use crate::spec::ExperimentSpec;
    use io_engine::{BackendSpec, CodecSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amrproxy_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_base(name: &str) -> CastroSedovConfig {
        CastroSedovConfig {
            name: name.into(),
            engine: Engine::Oracle,
            n_cell: 32,
            max_step: 4,
            plot_int: 2,
            nprocs: 2,
            account_only: true,
            ..Default::default()
        }
    }

    #[test]
    fn append_and_query_round_trip() {
        let dir = tmp_dir("rt");
        let mut store = ResultsStore::open(&dir).unwrap();
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summary = run_campaign_timed_serial(&[small_base("one")], &storage).remove(0);
        store.append("cellkey1", &summary).unwrap();
        assert!(store.contains("cellkey1"));
        assert!(!store.contains("cellkey2"));
        assert_eq!(store.get("cellkey1"), vec![summary.clone()]);

        // A fresh open replays the log to the identical state.
        drop(store);
        let reopened = ResultsStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get("cellkey1"), vec![summary.clone()]);
        let walls = reopened.query().numbers("wall_time");
        assert_eq!(walls, vec![summary.wall_time]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let dir = tmp_dir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("runs.jsonl"),
            "{\"schema\":99,\"cell\":\"x\",\"summary\":{}}\n",
        )
        .unwrap();
        let err = ResultsStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("schema 99"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_filters_projects_and_aggregates() {
        let dir = tmp_dir("query");
        let mut store = ResultsStore::open(&dir).unwrap();
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let spec = ExperimentSpec::new("q")
            .base(small_base("q"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(2)])
            .codecs(&[CodecSpec::Identity, CodecSpec::LossyQuant(8)]);
        for cell in spec.compile().unwrap() {
            let s = run_campaign_timed_serial(&[cell.config], &storage).remove(0);
            store.append(&cell.key, &s).unwrap();
        }
        let q = store.query();
        assert_eq!(q.len(), 4);
        assert_eq!(q.clone().filter("backend", "fpp").len(), 2);
        assert_eq!(
            q.clone()
                .filter("backend", "agg:2")
                .filter("codec", "quant:8")
                .len(),
            1
        );
        // Numeric filters and projections.
        let heavy = q.clone().filter_num("physical_bytes", |b| b > 0.0);
        assert_eq!(heavy.len(), 4);
        assert_eq!(q.numbers("wall_time").len(), 4);
        assert!(q.mean("wall_time") > 0.0);
        // Boolean columns filter by JSON spelling.
        assert_eq!(q.clone().filter("restart", "false").len(), 4);
        // Grouped aggregation, first-seen order.
        let by_backend = q.group_mean("backend", "physical_bytes");
        assert_eq!(by_backend.len(), 2);
        assert_eq!(by_backend[0].0, "fpp");
        assert!(by_backend.iter().all(|(_, v)| *v > 0.0));
        // The store → model bridge.
        let fit = q.fit("physical_bytes", "wall_time");
        assert!(fit.slope.is_finite());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_spec_resumes_and_extends() {
        let dir = tmp_dir("resume");
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let spec = ExperimentSpec::new("resume")
            .base(small_base("r"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(2)]);
        let mut store = ResultsStore::open(&dir).unwrap();
        let first = run_spec(&spec, &mut store, Some(&storage)).unwrap();
        assert_eq!(first.executed, 2);
        assert_eq!(first.resumed, 0);
        // Identical spec: zero cells execute, summaries identical.
        let second = run_spec(&spec, &mut store, Some(&storage)).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.resumed, 2);
        assert_eq!(second.summaries, first.summaries);
        // One fresh axis value: only the new cell executes.
        let extended = ExperimentSpec::new("resume")
            .base(small_base("r"))
            .backends(&[
                BackendSpec::FilePerProcess,
                BackendSpec::Aggregated(2),
                BackendSpec::Deferred(1),
            ]);
        let third = run_spec(&extended, &mut store, Some(&storage)).unwrap();
        assert_eq!(third.executed, 1);
        assert_eq!(third.resumed, 2);
        assert_eq!(third.summaries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn throughput_cells_run_as_fabric_groups() {
        use crate::spec::ScalingMode;
        let dir = tmp_dir("tput");
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let spec = ExperimentSpec::new("tput")
            .base(small_base("t"))
            .scales(&[2])
            .scaling(ScalingMode::Throughput);
        let mut store = ResultsStore::open(&dir).unwrap();
        let report = run_spec(&spec, &mut store, Some(&storage)).unwrap();
        assert_eq!(report.executed, 1);
        assert_eq!(report.summaries.len(), 2, "one summary per tenant");
        assert!(report.summaries.iter().all(|s| s.tenants == 2));
        assert_eq!(report.summaries[0].name, "t_x2_t0");
        // Resume serves both tenant summaries from the one cell key.
        let again = run_spec(&spec, &mut store, Some(&storage)).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.summaries, report.summaries);
        // Throughput without any storage model is a clear error.
        let mut dry = ResultsStore::open(tmp_dir("tput2")).unwrap();
        let err = run_spec(&spec, &mut dry, None).unwrap_err();
        assert!(err.to_string().contains("storage"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(dry.dir()).unwrap();
    }

    #[test]
    fn batched_append_is_wire_byte_identical_to_row_appends() {
        let dir_a = tmp_dir("wire_a");
        let dir_b = tmp_dir("wire_b");
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let summaries: Vec<_> = ["one", "two", "three"]
            .iter()
            .map(|n| run_campaign_timed_serial(&[small_base(n)], &storage).remove(0))
            .collect();
        let mut row_wise = ResultsStore::open(&dir_a).unwrap();
        for s in &summaries {
            row_wise.append("cell_k", s).unwrap();
        }
        let mut batched = ResultsStore::open(&dir_b).unwrap();
        batched.append_cell("cell_k", &summaries).unwrap();
        let bytes_a = std::fs::read(dir_a.join("runs.jsonl")).unwrap();
        let bytes_b = std::fs::read(dir_b.join("runs.jsonl")).unwrap();
        assert_eq!(bytes_a, bytes_b, "batch must not change the wire format");
        assert_eq!(batched.get("cell_k"), summaries);
        // Regression pin on the wire format itself: envelope key order,
        // schema tag, one object per line.
        let text = String::from_utf8(bytes_a).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            assert!(
                line.starts_with("{\"schema\":1,\"cell\":\"cell_k\",\"summary\":{"),
                "wire envelope changed: {line}"
            );
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn refresh_ingests_only_the_tail() {
        let dir = tmp_dir("refresh");
        let storage = iosim::StorageModel::ideal(2, 5e7);
        let s1 = run_campaign_timed_serial(&[small_base("a")], &storage).remove(0);
        let s2 = run_campaign_timed_serial(&[small_base("b")], &storage).remove(0);
        let mut writer = ResultsStore::open(&dir).unwrap();
        writer.append("k1", &s1).unwrap();
        // A second handle on the same directory: sees k1 on open, then
        // k2 only after a refresh, which reads only the appended tail.
        let mut reader = ResultsStore::open(&dir).unwrap();
        assert!(reader.contains("k1"));
        assert_eq!(reader.refresh().unwrap(), 0, "nothing new: O(1) stat only");
        writer.append("k2", &s2).unwrap();
        assert!(!reader.contains("k2"));
        assert_eq!(reader.refresh().unwrap(), 1);
        assert_eq!(reader.get("k2"), vec![s2.clone()]);
        assert_eq!(reader.len(), writer.len());
        assert_eq!(reader.refresh().unwrap(), 0);
        // The reader's own appends keep its cursor current.
        reader.append("k3", &s1).unwrap();
        assert_eq!(reader.refresh().unwrap(), 0);
        // A shrunken log is corruption, not a resume point.
        drop(writer);
        let log = dir.join("runs.jsonl");
        let full = std::fs::read(&log).unwrap();
        std::fs::write(&log, &full[..full.len() / 2]).unwrap();
        assert!(reader.refresh().unwrap_err().to_string().contains("shrank"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_run_spec_matches_the_serial_reference() {
        use crate::spec::ScalingMode;
        let storage = iosim::StorageModel::ideal(2, 5e7);
        // Mixed spec: solo cells (rayon pool) and tenancy cells (native
        // threads + mirrored clones) in one compile.
        let spec = ExperimentSpec::new("par")
            .base(small_base("p"))
            .backends(&[BackendSpec::FilePerProcess, BackendSpec::Aggregated(2)])
            .scales(&[1, 2, 4])
            .scaling(ScalingMode::Throughput);
        let mut serial_store = ResultsStore::open(tmp_dir("par_serial")).unwrap();
        let serial = run_spec_serial(&spec, &mut serial_store, Some(&storage)).unwrap();
        let mut parallel_store = ResultsStore::open(tmp_dir("par_parallel")).unwrap();
        let parallel = run_spec(&spec, &mut parallel_store, Some(&storage)).unwrap();
        assert_eq!(parallel.executed, serial.executed);
        assert_eq!(parallel.resumed, 0);
        assert_eq!(
            parallel.summaries, serial.summaries,
            "mirrored clones + memo must be invisible in the results"
        );
        // Both stores replay to the same queryable state (row order may
        // differ: parallel commits in completion order).
        let mut a = serial_store.query().summaries();
        let mut b = parallel_store.query().summaries();
        a.sort_by(|x, y| x.name.cmp(&y.name));
        b.sort_by(|x, y| x.name.cmp(&y.name));
        assert_eq!(a, b);
        // Resuming the parallel store is a no-op second time around.
        let again = run_spec(&spec, &mut parallel_store, Some(&storage)).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.summaries, parallel.summaries);
        std::fs::remove_dir_all(serial_store.dir()).unwrap();
        std::fs::remove_dir_all(parallel_store.dir()).unwrap();
    }

    #[test]
    fn bench_artifact_updates_merge_instead_of_clobbering() {
        let dir = tmp_dir("artifact");
        let path = dir.join("BENCH_test.json");
        update_bench_artifact(
            &path,
            &[
                ("alpha", serde_json::to_value(&1.5)),
                ("beta", Value::String("keep me".into())),
            ],
        )
        .unwrap();
        // A second writer updates one key and adds another: beta survives.
        update_bench_artifact(
            &path,
            &[
                ("alpha", serde_json::to_value(&2.0)),
                ("gamma", serde_json::to_value(&3_u64)),
            ],
        )
        .unwrap();
        let q = read_legacy_blob(&path).unwrap();
        assert_eq!(q.numbers("alpha"), vec![2.0]);
        assert_eq!(q.strings("beta"), vec!["keep me".to_string()]);
        assert_eq!(q.numbers("gamma"), vec![3.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_blobs_load_into_queries() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let array = dir.join("rows.json");
        std::fs::write(
            &array,
            r#"[{"backend":"fpp","wall_time":1.5},{"backend":"agg:4","wall_time":0.75}]"#,
        )
        .unwrap();
        let q = read_legacy_blob(&array).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.clone().filter("backend", "fpp").numbers("wall_time"),
            vec![1.5]
        );
        let object = dir.join("single.json");
        std::fs::write(&object, r#"{"campaign_runs":47,"steps_per_sec":12.0}"#).unwrap();
        let q = read_legacy_blob(&object).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.numbers("campaign_runs"), vec![47.0]);
        assert!(read_legacy_blob(dir.join("missing.json")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
