//! Parallel I/O simulation substrate.
//!
//! Stands in for the pieces of the paper's testbed we cannot use: Summit's
//! GPFS (Alpine) filesystem and the instrumentation that measured output
//! sizes. Three orthogonal pieces:
//!
//! * [`vfs`] — a filesystem abstraction with an exact-size in-memory
//!   backend ([`MemFs`]) and an OS backend ([`RealFs`]); writers emit real
//!   bytes either way, so byte accounting is honest.
//! * [`tracker`] — byte accounting at the paper's `(step, level, task)`
//!   granularity (Eqs. 1-2).
//! * [`storage`] + [`timeline`] — a seeded, deterministic timing model of a
//!   striped parallel filesystem (fair-share servers, metadata latency,
//!   lognormal variability) for the paper's *dynamic* burstiness
//!   discussion. Write bursts and read bursts (restart and selective
//!   analysis fetches) run through the same event-driven core with
//!   separate bandwidth and per-file charges.
//!
//! **Layer position:** the bottom I/O substrate — everything above
//! (`io-engine` backends, `plotfile`/`macsio` writers, `core`
//! campaigns) funnels bytes and requests down here. Key types: [`Vfs`] /
//! [`MemFs`], [`IoTracker`] (write + read planes, `(step, level, task)`
//! keys), [`StorageModel`], [`BurstScheduler`].
//!
//! ```
//! use iosim::{IoKey, IoKind, IoTracker, MemFs, StorageModel, Vfs, WriteRequest};
//!
//! let fs = MemFs::new();
//! fs.write_file("/plt/Cell_D_00000", b"payload").unwrap();
//! assert_eq!(fs.total_bytes(), 7);
//!
//! let tracker = IoTracker::new();
//! tracker.record(IoKey { step: 1, level: 0, task: 0 }, IoKind::Data, 7);
//! assert_eq!(tracker.total_bytes(), 7);
//!
//! // Time the burst: 7 bytes at 7 B/s on one server takes one second.
//! let model = StorageModel::ideal(1, 7.0);
//! let burst = model.simulate_burst(&[WriteRequest {
//!     rank: 0,
//!     path: "/plt/Cell_D_00000".into(),
//!     bytes: 7,
//!     start: 0.0,
//! }]);
//! assert!((burst.t_end - 1.0).abs() < 1e-9);
//! ```

pub mod characterize;
pub mod fabric;
pub mod schedule;
pub mod storage;
pub mod timeline;
pub mod tracker;
pub mod vfs;

pub use bytes::Bytes;
pub use characterize::{characterize, IoCharacterization};
pub use fabric::{
    Fabric, FabricHandle, QosPolicy, SoloMemo, SoloPricing, StorageAttach, TenantStats,
};
pub use schedule::BurstScheduler;
pub use storage::{BurstResult, ReadRequest, StorageModel, WriteRequest};
pub use timeline::{Burst, BurstTimeline};
pub use tracker::{IoKey, IoKind, IoTracker};
pub use vfs::{MemFs, RealFs, Vfs};
