//! Parallel I/O simulation substrate.
//!
//! Stands in for the pieces of the paper's testbed we cannot use: Summit's
//! GPFS (Alpine) filesystem and the instrumentation that measured output
//! sizes. Three orthogonal pieces:
//!
//! * [`vfs`] — a filesystem abstraction with an exact-size in-memory
//!   backend ([`MemFs`]) and an OS backend ([`RealFs`]); writers emit real
//!   bytes either way, so byte accounting is honest.
//! * [`tracker`] — byte accounting at the paper's `(step, level, task)`
//!   granularity (Eqs. 1-2).
//! * [`storage`] + [`timeline`] — a seeded, deterministic timing model of a
//!   striped parallel filesystem (fair-share servers, metadata latency,
//!   lognormal variability) for the paper's *dynamic* burstiness
//!   discussion.

pub mod characterize;
pub mod schedule;
pub mod storage;
pub mod timeline;
pub mod tracker;
pub mod vfs;

pub use characterize::{characterize, IoCharacterization};
pub use schedule::BurstScheduler;
pub use storage::{BurstResult, ReadRequest, StorageModel, WriteRequest};
pub use timeline::{Burst, BurstTimeline};
pub use tracker::{IoKey, IoKind, IoTracker};
pub use vfs::{MemFs, RealFs, Vfs};
