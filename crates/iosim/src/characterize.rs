//! Darshan-style I/O characterization reports.
//!
//! The paper's background (Carns et al., MSST 2011) motivates continuous,
//! lightweight I/O characterization; this module condenses a run's
//! [`IoTracker`] records and [`BurstTimeline`] into the counter set such
//! tools report: request-size distribution, per-kind byte split, file
//! counts, and burstiness — the quantities an I/O autotuner consumes.

use crate::timeline::BurstTimeline;
use crate::tracker::{IoKind, IoTracker};
use serde::{Deserialize, Serialize};

/// Summary statistics of one run's I/O.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IoCharacterization {
    /// Total bytes written.
    pub total_bytes: u64,
    /// Total files created.
    pub total_files: u64,
    /// Bytes of field data.
    pub data_bytes: u64,
    /// Bytes of metadata (headers, Cell_H, root files).
    pub metadata_bytes: u64,
    /// Number of output steps.
    pub steps: usize,
    /// Number of AMR levels seen.
    pub levels: usize,
    /// Highest task id that wrote data.
    pub max_task: u32,
    /// Mean bytes per file.
    pub mean_file_bytes: f64,
    /// Percentiles of per-(step,level,task) write sizes:
    /// `[p10, p50, p90, p99]`.
    pub write_size_percentiles: [u64; 4],
    /// Bytes per step: min, mean, max.
    pub step_bytes_min_mean_max: (u64, f64, u64),
    /// I/O duty cycle from the burst timeline (0 when untimed).
    pub duty_cycle: f64,
    /// Peak-to-mean bandwidth ratio (0 when untimed).
    pub burstiness: f64,
}

/// Builds the characterization from tracker records and an optional
/// timeline.
pub fn characterize(tracker: &IoTracker, timeline: Option<&BurstTimeline>) -> IoCharacterization {
    let records = tracker.export();
    let mut sizes: Vec<u64> = records.iter().map(|(_, _, bytes, _)| *bytes).collect();
    sizes.sort_unstable();
    let pct = |p: f64| -> u64 {
        if sizes.is_empty() {
            return 0;
        }
        let idx = ((sizes.len() as f64 - 1.0) * p).round() as usize;
        sizes[idx]
    };

    let per_step = tracker.bytes_per_step();
    let (mut s_min, mut s_max, mut s_sum) = (u64::MAX, 0u64, 0u64);
    for &b in per_step.values() {
        s_min = s_min.min(b);
        s_max = s_max.max(b);
        s_sum += b;
    }
    let steps = per_step.len();
    let total_files = tracker.total_files();
    let total_bytes = tracker.total_bytes();

    IoCharacterization {
        total_bytes,
        total_files,
        data_bytes: tracker.total_bytes_of(IoKind::Data),
        metadata_bytes: tracker.total_bytes_of(IoKind::Metadata),
        steps,
        levels: tracker.levels().len(),
        max_task: records.iter().map(|(k, _, _, _)| k.task).max().unwrap_or(0),
        mean_file_bytes: if total_files > 0 {
            total_bytes as f64 / total_files as f64
        } else {
            0.0
        },
        write_size_percentiles: [pct(0.10), pct(0.50), pct(0.90), pct(0.99)],
        step_bytes_min_mean_max: (
            if steps > 0 { s_min } else { 0 },
            if steps > 0 {
                s_sum as f64 / steps as f64
            } else {
                0.0
            },
            s_max,
        ),
        duty_cycle: timeline.map(BurstTimeline::duty_cycle).unwrap_or(0.0),
        burstiness: timeline.map(BurstTimeline::burstiness).unwrap_or(0.0),
    }
}

impl IoCharacterization {
    /// Renders the report as an aligned text table (Darshan-summary
    /// style).
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "{:<26} {}", "total bytes", self.total_bytes);
        let _ = writeln!(s, "{:<26} {}", "total files", self.total_files);
        let _ = writeln!(s, "{:<26} {}", "data bytes", self.data_bytes);
        let _ = writeln!(s, "{:<26} {}", "metadata bytes", self.metadata_bytes);
        let _ = writeln!(s, "{:<26} {}", "output steps", self.steps);
        let _ = writeln!(s, "{:<26} {}", "amr levels", self.levels);
        let _ = writeln!(s, "{:<26} {}", "max task id", self.max_task);
        let _ = writeln!(s, "{:<26} {:.1}", "mean file bytes", self.mean_file_bytes);
        let [p10, p50, p90, p99] = self.write_size_percentiles;
        let _ = writeln!(
            s,
            "{:<26} p10={p10} p50={p50} p90={p90} p99={p99}",
            "write sizes"
        );
        let (mn, mean, mx) = self.step_bytes_min_mean_max;
        let _ = writeln!(s, "{:<26} min={mn} mean={mean:.1} max={mx}", "step bytes");
        let _ = writeln!(s, "{:<26} {:.4}", "duty cycle", self.duty_cycle);
        let _ = writeln!(s, "{:<26} {:.2}", "burstiness", self.burstiness);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Burst;
    use crate::tracker::IoKey;

    fn tracker() -> IoTracker {
        let t = IoTracker::new();
        for step in 1..=4u32 {
            for task in 0..4u32 {
                t.record(
                    IoKey {
                        step,
                        level: 0,
                        task,
                    },
                    IoKind::Data,
                    1000 * (task as u64 + 1),
                );
            }
            t.record(
                IoKey {
                    step,
                    level: 1,
                    task: 0,
                },
                IoKind::Metadata,
                100,
            );
        }
        t
    }

    #[test]
    fn counters_add_up() {
        let t = tracker();
        let c = characterize(&t, None);
        assert_eq!(c.total_bytes, 4 * (1000 + 2000 + 3000 + 4000) + 4 * 100);
        assert_eq!(c.data_bytes + c.metadata_bytes, c.total_bytes);
        assert_eq!(c.steps, 4);
        assert_eq!(c.levels, 2);
        assert_eq!(c.max_task, 3);
        assert_eq!(c.total_files, 20);
    }

    #[test]
    fn percentiles_are_ordered() {
        let c = characterize(&tracker(), None);
        let [p10, p50, p90, p99] = c.write_size_percentiles;
        assert!(p10 <= p50 && p50 <= p90 && p90 <= p99);
        assert_eq!(p99, 4000);
        assert_eq!(p10, 100);
    }

    #[test]
    fn step_stats() {
        let c = characterize(&tracker(), None);
        let (mn, mean, mx) = c.step_bytes_min_mean_max;
        assert_eq!(mn, 10100);
        assert_eq!(mx, 10100);
        assert!((mean - 10100.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_metrics_flow_through() {
        let mut tl = BurstTimeline::new();
        tl.push(Burst {
            step: 1,
            t_start: 0.0,
            t_end: 1.0,
            bytes: 100,
        });
        tl.push(Burst {
            step: 2,
            t_start: 9.0,
            t_end: 10.0,
            bytes: 100,
        });
        let c = characterize(&tracker(), Some(&tl));
        assert!((c.duty_cycle - 0.2).abs() < 1e-12);
        assert!(c.burstiness > 1.0);
    }

    #[test]
    fn render_contains_all_sections() {
        let c = characterize(&tracker(), None);
        let text = c.render();
        for needle in [
            "total bytes",
            "write sizes",
            "step bytes",
            "duty cycle",
            "burstiness",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_tracker_is_benign() {
        let c = characterize(&IoTracker::new(), None);
        assert_eq!(c.total_bytes, 0);
        assert_eq!(c.write_size_percentiles, [0, 0, 0, 0]);
        assert_eq!(c.mean_file_bytes, 0.0);
    }
}
