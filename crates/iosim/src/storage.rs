//! Parallel storage timing model.
//!
//! A deterministic, seeded stand-in for Summit's Alpine GPFS filesystem:
//! files are striped across `nservers` storage servers; each server
//! processes its active requests by fair processor sharing at a fixed
//! bandwidth; each file creation charges a metadata latency *as
//! serialized server work*, so a burst of many small files is slower than
//! the same bytes in few aggregated files — the effect the io-engine's
//! BP-style aggregation exists to exploit; service demand carries
//! lognormal variability. Reads (restart and post-hoc analysis bursts)
//! run through the same event-driven server simulation with their own
//! bandwidth and per-file open charge. Only the *dynamic* aspect of the
//! paper (burst durations, bandwidth) depends on this model — byte counts
//! never do.

use mpi_sim::rank_seed;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Remaining-work threshold below which a request retires (seconds of
/// service demand; floating-point tolerance shared with the fabric's
/// shared event engine so both retire requests identically).
pub(crate) const RETIRE_EPS: f64 = 1e-6;

/// Storage system parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageModel {
    /// Number of storage (NSD) servers. Treated as at least 1 everywhere
    /// (the constructors clamp; a zero smuggled in through the public
    /// field falls back to one server instead of dividing by zero).
    pub nservers: usize,
    /// Sustained write bandwidth per server, bytes/second.
    pub server_bandwidth: f64,
    /// Sustained read bandwidth per server, bytes/second (restart and
    /// analysis reads; GPFS read and write peaks differ in general).
    pub server_read_bandwidth: f64,
    /// Server time charged per file creation (metadata round trip),
    /// seconds; serializes with the server's other work, so it prices
    /// file *count*, not just bytes.
    pub metadata_latency: f64,
    /// Server time charged per file open on the read side, seconds
    /// (opens are cheaper than creates: no allocation round trip).
    pub open_latency: f64,
    /// Lognormal sigma applied to each request's service demand
    /// (0 disables variability).
    pub variability_sigma: f64,
    /// Seed for the variability noise.
    pub seed: u64,
}

/// Internal request view shared by the write and read burst simulations
/// (and by the multi-tenant fabric engine, which replays the exact same
/// placement and noise draws).
pub(crate) struct ReqView<'a> {
    pub(crate) path: &'a str,
    pub(crate) bytes: u64,
    pub(crate) start: f64,
}

impl StorageModel {
    /// A Summit/Alpine-like configuration scaled by `scale` in (0, 1]:
    /// Alpine's published peak is ~2.5 TB/s over 77 NSD servers; `scale`
    /// shrinks server count (at least 1) while keeping per-server
    /// bandwidth, so partial-machine experiments see proportional peaks.
    pub fn summit_alpine(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "summit_alpine: bad scale");
        let nservers = ((77.0 * scale).round() as usize).max(1);
        Self {
            nservers,
            server_bandwidth: 2.5e12 / 77.0,
            // GPFS streams reads at the same published peak; opens skip
            // the block-allocation round trip of a create.
            server_read_bandwidth: 2.5e12 / 77.0,
            metadata_latency: 1.0e-3,
            open_latency: 0.5e-3,
            variability_sigma: 0.15,
            seed: 0xA1_91_4E,
        }
    }

    /// An idealized noiseless model (useful in tests). A zero server
    /// count is clamped to one.
    pub fn ideal(nservers: usize, server_bandwidth: f64) -> Self {
        Self {
            nservers: nservers.max(1),
            server_bandwidth,
            server_read_bandwidth: server_bandwidth,
            metadata_latency: 0.0,
            open_latency: 0.0,
            variability_sigma: 0.0,
            seed: 0,
        }
    }

    /// The server count the simulation actually uses (never zero).
    fn effective_nservers(&self) -> usize {
        self.nservers.max(1)
    }

    /// Stable server assignment for a file path (FNV-1a hash mod servers).
    pub fn server_of(&self, path: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.effective_nservers() as u64) as usize
    }

    /// Simulates one write burst: all `reqs` proceed concurrently, each on
    /// its file's server, fair-sharing server write bandwidth with the
    /// per-file creation charge. Returns per-request finish times and
    /// aggregate statistics.
    pub fn simulate_burst(&self, reqs: &[WriteRequest]) -> BurstResult {
        let views: Vec<ReqView<'_>> = reqs
            .iter()
            .map(|r| ReqView {
                path: &r.path,
                bytes: r.bytes,
                start: r.start,
            })
            .collect();
        self.simulate_views(&views, self.server_bandwidth, self.metadata_latency)
    }

    /// Read-side mirror of [`StorageModel::simulate_burst`]: the same
    /// event-driven fair sharing, at the read bandwidth with the per-file
    /// open charge.
    pub fn simulate_read_burst(&self, reqs: &[ReadRequest]) -> BurstResult {
        let views: Vec<ReqView<'_>> = reqs
            .iter()
            .map(|r| ReqView {
                path: &r.path,
                bytes: r.bytes,
                start: r.start,
            })
            .collect();
        self.simulate_views(&views, self.server_read_bandwidth, self.open_latency)
    }

    /// Groups request indices by their file's server (submission order
    /// preserved within a server).
    pub(crate) fn place(&self, reqs: &[ReqView<'_>]) -> Vec<Vec<usize>> {
        let mut per_server: Vec<Vec<usize>> = vec![Vec::new(); self.effective_nservers()];
        for (i, r) in reqs.iter().enumerate() {
            per_server[self.server_of(r.path)].push(i);
        }
        per_server
    }

    /// Per-request seconds of server demand: noisy transfer time plus the
    /// per-file charge. The lognormal draws are seeded per burst by the
    /// request count and consumed server-ascending, submission order
    /// within a server — the exact sequence `simulate_burst` has always
    /// used, so the fabric engine (which calls this directly) prices a
    /// given burst identically to the solo path.
    pub(crate) fn service_demands(
        &self,
        per_server: &[Vec<usize>],
        reqs: &[ReqView<'_>],
        bw: f64,
        per_file_latency: f64,
    ) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(rank_seed(self.seed, reqs.len()));
        let mut works = vec![0.0f64; reqs.len()];
        for ids in per_server.iter().filter(|v| !v.is_empty()) {
            for &id in ids.iter() {
                let noise = if self.variability_sigma > 0.0 {
                    // Lognormal via Box-Muller on two uniform draws.
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (self.variability_sigma * z).exp()
                } else {
                    1.0
                };
                works[id] = reqs[id].bytes as f64 / bw * noise + per_file_latency;
            }
        }
        works
    }

    fn simulate_views(&self, reqs: &[ReqView<'_>], bw: f64, per_file_latency: f64) -> BurstResult {
        let mut finish = vec![0.0f64; reqs.len()];
        let per_server = self.place(reqs);
        let works = self.service_demands(&per_server, reqs, bw, per_file_latency);
        for ids in per_server.iter().filter(|v| !v.is_empty()) {
            self.simulate_server(ids, reqs, &works, &mut finish);
        }
        let total_bytes: u64 = reqs.iter().map(|r| r.bytes).sum();
        let t_start = reqs.iter().map(|r| r.start).fold(f64::INFINITY, f64::min);
        let t_end = finish.iter().copied().fold(0.0, f64::max);
        let duration = (t_end - t_start).max(0.0);
        // A zero-duration burst that still moved payload (an idealized
        // infinitely fast model) must not report bandwidth 0 — downstream
        // bytes/s regressions would ingest fake zeros. Floor the duration
        // at the per-file charge; if that is zero too the model really is
        // infinitely fast and the sample is `INFINITY` (non-finite, so
        // consumers can skip it).
        let effective = if total_bytes > 0 {
            duration.max(per_file_latency)
        } else {
            duration
        };
        BurstResult {
            finish,
            t_start: if reqs.is_empty() { 0.0 } else { t_start },
            t_end,
            total_bytes,
            aggregate_bandwidth: if total_bytes == 0 {
                0.0
            } else if effective > 0.0 {
                total_bytes as f64 / effective
            } else {
                f64::INFINITY
            },
        }
    }

    /// Event-driven fair processor sharing of one server among `ids`.
    fn simulate_server(
        &self,
        ids: &[usize],
        reqs: &[ReqView<'_>],
        works: &[f64],
        finish: &mut [f64],
    ) {
        // Arrival = request start; work = noisy transfer seconds plus the
        // per-file charge (serialized on the server, which is what makes
        // file count a first-order cost). Working in *seconds of server
        // demand* rather than bytes keeps the event loop well-defined for
        // idealized infinite-bandwidth models (bytes / inf = 0, where the
        // byte-domain `latency * bw` term would be NaN or infinite and
        // jobs could never retire).
        struct Job {
            id: usize,
            arrival: f64,
            work: f64, // remaining seconds of service demand
        }
        let mut jobs: Vec<Job> = ids
            .iter()
            .map(|&id| Job {
                id,
                arrival: reqs[id].start,
                work: works[id],
            })
            .collect();
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        let mut t = jobs.first().map(|j| j.arrival).unwrap_or(0.0);
        let mut active: Vec<Job> = Vec::new();
        let mut next = 0usize;
        loop {
            // Admit arrivals at or before t.
            while next < jobs.len() && jobs[next].arrival <= t {
                active.push(Job {
                    id: jobs[next].id,
                    arrival: jobs[next].arrival,
                    work: jobs[next].work,
                });
                next += 1;
            }
            if active.is_empty() {
                if next >= jobs.len() {
                    break;
                }
                t = jobs[next].arrival;
                continue;
            }
            // Fair sharing: each active job progresses at 1/n server
            // seconds per second.
            let rate = 1.0 / active.len() as f64;
            // Next event: earliest completion at shared rate vs next arrival.
            let min_work = active.iter().map(|j| j.work).fold(f64::INFINITY, f64::min);
            let t_complete = t + min_work / rate;
            let t_arrive = jobs.get(next).map(|j| j.arrival).unwrap_or(f64::INFINITY);
            let t_next = t_complete.min(t_arrive);
            let elapsed = t_next - t;
            for j in &mut active {
                j.work -= rate * elapsed;
            }
            t = t_next;
            // Retire finished jobs (floating-point tolerant; seconds).
            let eps = RETIRE_EPS;
            active.retain(|j| {
                if j.work <= eps {
                    finish[j.id] = t;
                    false
                } else {
                    true
                }
            });
        }
    }
}

/// One file write submitted to a burst.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteRequest {
    /// Rank issuing the write (for reporting).
    pub rank: usize,
    /// Target file path (determines the server).
    pub path: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Simulated time at which the write is issued.
    pub start: f64,
}

/// One file read submitted to a read burst (restart / analysis phase).
#[derive(Clone, Debug, PartialEq)]
pub struct ReadRequest {
    /// Rank issuing the read (for reporting).
    pub rank: usize,
    /// Source file path (determines the server).
    pub path: String,
    /// Bytes fetched from the file (whole file or a seeked range).
    pub bytes: u64,
    /// Simulated time at which the read is issued.
    pub start: f64,
}

/// Outcome of a simulated burst (write or read).
#[derive(Clone, Debug, PartialEq)]
pub struct BurstResult {
    /// Completion time of each request, in submission order.
    pub finish: Vec<f64>,
    /// Earliest request start.
    pub t_start: f64,
    /// Latest completion.
    pub t_end: f64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// `total_bytes` over the burst duration floored at the per-file
    /// charge; `INFINITY` when payload moved in zero simulated time
    /// (consumers skip non-finite samples), `0.0` for empty bursts.
    pub aggregate_bandwidth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rank: usize, path: &str, bytes: u64, start: f64) -> WriteRequest {
        WriteRequest {
            rank,
            path: path.to_string(),
            bytes,
            start,
        }
    }

    #[test]
    fn single_write_ideal_time() {
        let m = StorageModel::ideal(1, 100.0);
        let r = m.simulate_burst(&[req(0, "/f", 1000, 0.0)]);
        assert!((r.finish[0] - 10.0).abs() < 1e-9);
        assert!((r.aggregate_bandwidth - 100.0).abs() < 1e-6);
    }

    #[test]
    fn two_writes_share_one_server() {
        let m = StorageModel::ideal(1, 100.0);
        // Force both onto the same (only) server.
        let r = m.simulate_burst(&[req(0, "/a", 500, 0.0), req(1, "/b", 500, 0.0)]);
        // Fair sharing: both finish at 10s (1000 bytes total at 100 B/s).
        assert!((r.finish[0] - 10.0).abs() < 1e-9, "{:?}", r.finish);
        assert!((r.finish[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unequal_shares_complete_in_order() {
        let m = StorageModel::ideal(1, 100.0);
        let r = m.simulate_burst(&[req(0, "/a", 200, 0.0), req(1, "/b", 600, 0.0)]);
        // Shared until small job done at t: 2 jobs at 50 B/s -> small done
        // at 4s; then big has 400 left at 100 B/s -> 8s total.
        assert!((r.finish[0] - 4.0).abs() < 1e-9, "{:?}", r.finish);
        assert!((r.finish[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_arrivals() {
        let m = StorageModel::ideal(1, 100.0);
        let r = m.simulate_burst(&[req(0, "/a", 1000, 0.0), req(1, "/b", 100, 5.0)]);
        // Job A alone 0-5s (500 done), then shares: B needs 100 at 50 B/s
        // -> B done at 7s; A has 400 left alone at 100 B/s -> 11s.
        assert!((r.finish[1] - 7.0).abs() < 1e-9, "{:?}", r.finish);
        assert!((r.finish[0] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn more_servers_scale_bandwidth() {
        let reqs: Vec<WriteRequest> = (0..64)
            .map(|i| req(i, &format!("/file{i}"), 1_000_000, 0.0))
            .collect();
        let slow = StorageModel::ideal(1, 1e6).simulate_burst(&reqs);
        let fast = StorageModel::ideal(16, 1e6).simulate_burst(&reqs);
        assert!(
            fast.t_end < slow.t_end / 4.0,
            "{} vs {}",
            fast.t_end,
            slow.t_end
        );
    }

    #[test]
    fn metadata_latency_floors_small_writes() {
        let mut m = StorageModel::ideal(4, 1e9);
        m.metadata_latency = 0.01;
        let r = m.simulate_burst(&[req(0, "/tiny", 8, 0.0)]);
        assert!(r.finish[0] >= 0.01);
    }

    #[test]
    fn variability_is_deterministic() {
        let m = StorageModel {
            variability_sigma: 0.3,
            ..StorageModel::ideal(4, 1e6)
        };
        let reqs: Vec<WriteRequest> = (0..8)
            .map(|i| req(i, &format!("/f{i}"), 100_000, 0.0))
            .collect();
        let a = m.simulate_burst(&reqs);
        let b = m.simulate_burst(&reqs);
        assert_eq!(a.finish, b.finish);
        // Noise actually perturbs completion times.
        let ideal = StorageModel::ideal(4, 1e6).simulate_burst(&reqs);
        assert_ne!(a.finish, ideal.finish);
    }

    #[test]
    fn server_assignment_is_stable_and_in_range() {
        let m = StorageModel::ideal(7, 1.0);
        let s1 = m.server_of("/plt00000/Level_0/Cell_D_00001");
        let s2 = m.server_of("/plt00000/Level_0/Cell_D_00001");
        assert_eq!(s1, s2);
        assert!(s1 < 7);
        // Different files spread over servers.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(m.server_of(&format!("/f{i}")));
        }
        assert!(seen.len() > 3);
    }

    #[test]
    fn summit_preset_sane() {
        let m = StorageModel::summit_alpine(1.0);
        assert_eq!(m.nservers, 77);
        assert!(m.server_bandwidth > 1e10);
        let m = StorageModel::summit_alpine(1.0 / 9.0); // paper's 512 nodes
        assert!(m.nservers >= 8);
    }

    #[test]
    fn empty_burst() {
        let m = StorageModel::ideal(2, 1.0);
        let r = m.simulate_burst(&[]);
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.t_end, 0.0);
        assert_eq!(r.aggregate_bandwidth, 0.0);
    }

    fn read(rank: usize, path: &str, bytes: u64, start: f64) -> ReadRequest {
        ReadRequest {
            rank,
            path: path.to_string(),
            bytes,
            start,
        }
    }

    #[test]
    fn zero_server_config_does_not_divide_by_zero() {
        // Regression: `server_of` computed `h % nservers` unguarded, so a
        // zero-server model panicked. Constructors clamp, and a zero
        // smuggled through the public field acts as one server.
        let m = StorageModel::ideal(0, 100.0);
        assert_eq!(m.nservers, 1);
        let mut raw = StorageModel::ideal(4, 100.0);
        raw.nservers = 0;
        assert_eq!(raw.server_of("/f"), 0);
        let r = raw.simulate_burst(&[req(0, "/f", 1000, 0.0)]);
        assert!((r.finish[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_burst_does_not_report_zero_bandwidth() {
        // Regression: an infinitely fast model produced duration 0 and
        // bandwidth 0.0 despite moving payload, poisoning downstream
        // bytes/s regressions with fake zeros.
        let mut m = StorageModel::ideal(1, f64::INFINITY);
        let r = m.simulate_burst(&[req(0, "/f", 1000, 0.0)]);
        assert_eq!(r.total_bytes, 1000);
        assert!(
            r.aggregate_bandwidth.is_infinite(),
            "skippable non-finite sample, not a fake zero: {}",
            r.aggregate_bandwidth
        );
        // With a per-file charge the duration is floored instead.
        m.metadata_latency = 0.01;
        let r = m.simulate_burst(&[req(0, "/f", 1000, 0.0)]);
        assert!(r.aggregate_bandwidth.is_finite());
        assert!((r.aggregate_bandwidth - 1000.0 / 0.01).abs() < 1e-6);
    }

    #[test]
    fn read_burst_uses_read_bandwidth_and_open_latency() {
        let mut m = StorageModel::ideal(1, 100.0);
        m.server_read_bandwidth = 200.0;
        let w = m.simulate_burst(&[req(0, "/f", 1000, 0.0)]);
        let r = m.simulate_read_burst(&[read(0, "/f", 1000, 0.0)]);
        assert!((w.finish[0] - 10.0).abs() < 1e-9);
        assert!((r.finish[0] - 5.0).abs() < 1e-9, "reads run at read bw");
        // The open charge serializes like the write-side metadata charge.
        m.open_latency = 0.5;
        let r = m.simulate_read_burst(&[read(0, "/tiny", 2, 0.0)]);
        assert!(r.finish[0] >= 0.5);
    }

    #[test]
    fn read_burst_fair_shares_servers() {
        let m = StorageModel::ideal(1, 100.0);
        let r = m.simulate_read_burst(&[read(0, "/a", 500, 0.0), read(1, "/b", 500, 0.0)]);
        assert!((r.finish[0] - 10.0).abs() < 1e-9, "{:?}", r.finish);
        assert!((r.finish[1] - 10.0).abs() < 1e-9);
        assert!((r.aggregate_bandwidth - 100.0).abs() < 1e-6);
    }

    #[test]
    fn summit_preset_has_a_read_side() {
        let m = StorageModel::summit_alpine(1.0);
        assert!(m.server_read_bandwidth > 1e10);
        assert!(m.open_latency > 0.0);
        assert!(m.open_latency < m.metadata_latency, "opens beat creates");
    }
}
