//! Virtual filesystem abstraction.
//!
//! Plotfile and MACSio writers emit real bytes through a [`Vfs`] so the
//! same code path can target the OS filesystem (small runs, examples) or a
//! deterministic in-memory filesystem (campaigns at scale, where the paper
//! wrote terabytes to GPFS that we must account for without storing).

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Minimal filesystem surface needed by the N-to-N writers.
pub trait Vfs: Send + Sync {
    /// Creates a directory and all parents (idempotent).
    fn create_dir_all(&self, path: &str) -> io::Result<()>;

    /// Creates/overwrites a file with `data`; returns the byte count.
    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64>;

    /// Creates/overwrites a file from an ordered list of segments;
    /// returns the total byte count. This is the streaming write path:
    /// in-memory backends adopt the shared [`Bytes`] segments without
    /// flattening them, so a producer can ship (header, table, blob)
    /// pieces as it seals a step instead of building one contiguous
    /// buffer first. The default implementation concatenates and
    /// delegates to [`Vfs::write_file`].
    fn write_file_concat(&self, path: &str, segs: &[Bytes]) -> io::Result<u64> {
        let total: usize = segs.iter().map(|s| s.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for s in segs {
            buf.extend_from_slice(s);
        }
        self.write_file(path, &buf)
    }

    /// Size of a file, or `None` when absent.
    fn file_size(&self, path: &str) -> Option<u64>;

    /// Full content of a file when available. In-memory backends may
    /// truncate retained content (see [`MemFs::with_retention`]); the
    /// returned bytes are the retained prefix.
    fn read_file(&self, path: &str) -> Option<Vec<u8>>;

    /// Retained content of a file as a shared, zero-copy [`Bytes`]
    /// handle when available. In-memory backends return a view into the
    /// stored buffer (no copy); the default implementation copies via
    /// [`Vfs::read_file`].
    fn read_file_shared(&self, path: &str) -> Option<Bytes> {
        self.read_file(path).map(Bytes::from)
    }

    /// Paths of all files under `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Total bytes written across all files.
    fn total_bytes(&self) -> u64;

    /// Number of files.
    fn nfiles(&self) -> usize;
}

#[derive(Clone, Debug)]
struct MemFile {
    size: u64,
    /// Retained prefix of the content (full content when small enough),
    /// held as shared segments so writers and readers can exchange the
    /// same allocation. Multi-segment files are flattened lazily on the
    /// first shared read.
    segs: Vec<Bytes>,
}

impl MemFile {
    fn retained_len(&self) -> usize {
        self.segs.iter().map(|s| s.len()).sum()
    }

    fn flatten(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.retained_len());
        for s in &self.segs {
            out.extend_from_slice(s);
        }
        out
    }
}

/// Deterministic in-memory filesystem.
///
/// Stores file sizes exactly; content is retained up to a configurable
/// per-file limit so multi-gigabyte simulated campaigns do not exhaust
/// memory while small-file metadata (plotfile headers) remains inspectable.
pub struct MemFs {
    files: RwLock<BTreeMap<String, MemFile>>,
    dirs: RwLock<std::collections::BTreeSet<String>>,
    retention: usize,
}

impl MemFs {
    /// A filesystem retaining full file content (use for tests).
    pub fn new() -> Self {
        Self::with_retention(usize::MAX)
    }

    /// A filesystem retaining at most `limit` bytes of content per file
    /// (sizes are always exact).
    pub fn with_retention(limit: usize) -> Self {
        Self {
            files: RwLock::new(BTreeMap::new()),
            dirs: RwLock::new(std::collections::BTreeSet::new()),
            retention: limit,
        }
    }

    /// True when `path` was created as a directory.
    pub fn dir_exists(&self, path: &str) -> bool {
        self.dirs.read().contains(&normalize(path))
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

fn normalize(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for part in path.split('/').filter(|p| !p.is_empty() && *p != ".") {
        out.push('/');
        out.push_str(part);
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

impl Vfs for MemFs {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        let norm = normalize(path);
        let mut dirs = self.dirs.write();
        let mut acc = String::new();
        for part in norm.split('/').filter(|p| !p.is_empty()) {
            acc.push('/');
            acc.push_str(part);
            dirs.insert(acc.clone());
        }
        Ok(())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let norm = normalize(path);
        let head_len = data.len().min(self.retention);
        self.files.write().insert(
            norm,
            MemFile {
                size: data.len() as u64,
                segs: vec![Bytes::copy_from_slice(&data[..head_len])],
            },
        );
        Ok(data.len() as u64)
    }

    fn write_file_concat(&self, path: &str, segs: &[Bytes]) -> io::Result<u64> {
        let norm = normalize(path);
        let size: u64 = segs.iter().map(|s| s.len() as u64).sum();
        // Adopt the shared segments zero-copy, clipping at the retention
        // limit (a partial final segment is an O(1) sub-slice).
        let mut kept = Vec::with_capacity(segs.len());
        let mut retained = 0usize;
        for s in segs {
            if retained >= self.retention {
                break;
            }
            let take = s.len().min(self.retention - retained);
            if take == 0 {
                continue;
            }
            kept.push(if take == s.len() {
                s.clone()
            } else {
                s.slice(..take)
            });
            retained += take;
        }
        self.files
            .write()
            .insert(norm, MemFile { size, segs: kept });
        Ok(size)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.files.read().get(&normalize(path)).map(|f| f.size)
    }

    fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        self.files.read().get(&normalize(path)).map(|f| f.flatten())
    }

    fn read_file_shared(&self, path: &str) -> Option<Bytes> {
        let norm = normalize(path);
        {
            let files = self.files.read();
            let f = files.get(&norm)?;
            if let [one] = f.segs.as_slice() {
                return Some(one.clone());
            }
        }
        // Multi-segment file: flatten once under the write lock and
        // cache the contiguous buffer so later reads are zero-copy.
        let mut files = self.files.write();
        let f = files.get_mut(&norm)?;
        if f.segs.len() != 1 {
            f.segs = vec![Bytes::from(f.flatten())];
        }
        Some(f.segs[0].clone())
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let norm = normalize(prefix);
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(&norm))
            .cloned()
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|f| f.size).sum()
    }

    fn nfiles(&self) -> usize {
        self.files.read().len()
    }
}

/// OS-filesystem backend rooted at a directory.
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// A backend writing under `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let rel: PathBuf = Path::new(&normalize(path))
            .components()
            .filter(|c| matches!(c, std::path::Component::Normal(_)))
            .collect();
        self.root.join(rel)
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        std::fs::create_dir_all(self.resolve(path))
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let p = self.resolve(path);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&p, data)?;
        Ok(data.len() as u64)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        std::fs::metadata(self.resolve(path)).ok().map(|m| m.len())
    }

    fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        std::fs::read(self.resolve(path)).ok()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        // Walk the root and filter; adequate for example-sized trees.
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if let Ok(rel) = p.strip_prefix(&self.root) {
                    let rel = format!("/{}", rel.display());
                    if rel.starts_with(&normalize(prefix)) {
                        out.push(rel);
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn total_bytes(&self) -> u64 {
        self.list("/")
            .iter()
            .filter_map(|p| self.file_size(p))
            .sum()
    }

    fn nfiles(&self) -> usize {
        self.list("/").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_write_read_round_trip() {
        let fs = MemFs::new();
        fs.write_file("/a/b.txt", b"hello").unwrap();
        assert_eq!(fs.file_size("/a/b.txt"), Some(5));
        assert_eq!(fs.read_file("/a/b.txt"), Some(b"hello".to_vec()));
        assert_eq!(fs.total_bytes(), 5);
        assert_eq!(fs.nfiles(), 1);
    }

    #[test]
    fn memfs_overwrite_replaces() {
        let fs = MemFs::new();
        fs.write_file("/f", b"xxxx").unwrap();
        fs.write_file("/f", b"yy").unwrap();
        assert_eq!(fs.file_size("/f"), Some(2));
        assert_eq!(fs.total_bytes(), 2);
    }

    #[test]
    fn memfs_retention_truncates_content_not_size() {
        let fs = MemFs::with_retention(4);
        fs.write_file("/big", &[7u8; 100]).unwrap();
        assert_eq!(fs.file_size("/big"), Some(100));
        assert_eq!(fs.read_file("/big").unwrap().len(), 4);
        assert_eq!(fs.total_bytes(), 100);
    }

    #[test]
    fn memfs_list_by_prefix_sorted() {
        let fs = MemFs::new();
        fs.write_file("/plt0/L0/a", b"1").unwrap();
        fs.write_file("/plt0/L1/b", b"2").unwrap();
        fs.write_file("/plt1/L0/c", b"3").unwrap();
        let l = fs.list("/plt0");
        assert_eq!(l, vec!["/plt0/L0/a".to_string(), "/plt0/L1/b".to_string()]);
        assert_eq!(fs.list("/").len(), 3);
    }

    #[test]
    fn memfs_path_normalization() {
        let fs = MemFs::new();
        fs.write_file("a//b/./c", b"x").unwrap();
        assert_eq!(fs.file_size("/a/b/c"), Some(1));
    }

    #[test]
    fn memfs_dirs_tracked() {
        let fs = MemFs::new();
        fs.create_dir_all("/x/y/z").unwrap();
        assert!(fs.dir_exists("/x"));
        assert!(fs.dir_exists("/x/y"));
        assert!(fs.dir_exists("/x/y/z"));
        assert!(!fs.dir_exists("/q"));
    }

    #[test]
    fn memfs_segmented_write_and_shared_read() {
        let fs = MemFs::new();
        let a = Bytes::from(b"# header\n".to_vec());
        let b = Bytes::from(b"row one\n".to_vec());
        let c = Bytes::from(b"blob".to_vec());
        fs.write_file_concat("/step/md.idx", &[a.clone(), b, c])
            .unwrap();
        assert_eq!(fs.file_size("/step/md.idx"), Some(21));
        assert_eq!(
            fs.read_file("/step/md.idx").unwrap(),
            b"# header\nrow one\nblob"
        );
        // Shared read flattens once, then hands out zero-copy views.
        let s1 = fs.read_file_shared("/step/md.idx").unwrap();
        let s2 = fs.read_file_shared("/step/md.idx").unwrap();
        assert_eq!(&s1[..], b"# header\nrow one\nblob");
        assert_eq!(s1, s2);
        // A single-segment file round-trips the very same allocation.
        fs.write_file_concat("/one", std::slice::from_ref(&a))
            .unwrap();
        let shared = fs.read_file_shared("/one").unwrap();
        assert_eq!(shared, a);
    }

    #[test]
    fn memfs_segmented_write_respects_retention() {
        let fs = MemFs::with_retention(6);
        let segs = [Bytes::from(b"abcd".to_vec()), Bytes::from(b"efgh".to_vec())];
        fs.write_file_concat("/clip", &segs).unwrap();
        assert_eq!(fs.file_size("/clip"), Some(8));
        assert_eq!(fs.read_file("/clip").unwrap(), b"abcdef");
        assert_eq!(fs.read_file_shared("/clip").unwrap().len(), 6);
    }

    #[test]
    fn realfs_round_trip() {
        let dir = std::env::temp_dir().join(format!("iosim-test-{}", std::process::id()));
        let fs = RealFs::new(&dir).unwrap();
        fs.write_file("/sub/file.bin", b"abc").unwrap();
        assert_eq!(fs.file_size("/sub/file.bin"), Some(3));
        assert_eq!(fs.read_file("/sub/file.bin"), Some(b"abc".to_vec()));
        assert_eq!(fs.list("/sub"), vec!["/sub/file.bin".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
