//! Virtual filesystem abstraction.
//!
//! Plotfile and MACSio writers emit real bytes through a [`Vfs`] so the
//! same code path can target the OS filesystem (small runs, examples) or a
//! deterministic in-memory filesystem (campaigns at scale, where the paper
//! wrote terabytes to GPFS that we must account for without storing).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Minimal filesystem surface needed by the N-to-N writers.
pub trait Vfs: Send + Sync {
    /// Creates a directory and all parents (idempotent).
    fn create_dir_all(&self, path: &str) -> io::Result<()>;

    /// Creates/overwrites a file with `data`; returns the byte count.
    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64>;

    /// Size of a file, or `None` when absent.
    fn file_size(&self, path: &str) -> Option<u64>;

    /// Full content of a file when available. In-memory backends may
    /// truncate retained content (see [`MemFs::with_retention`]); the
    /// returned bytes are the retained prefix.
    fn read_file(&self, path: &str) -> Option<Vec<u8>>;

    /// Paths of all files under `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Total bytes written across all files.
    fn total_bytes(&self) -> u64;

    /// Number of files.
    fn nfiles(&self) -> usize;
}

#[derive(Clone, Debug)]
struct MemFile {
    size: u64,
    /// Retained prefix of the content (full content when small enough).
    head: Vec<u8>,
}

/// Deterministic in-memory filesystem.
///
/// Stores file sizes exactly; content is retained up to a configurable
/// per-file limit so multi-gigabyte simulated campaigns do not exhaust
/// memory while small-file metadata (plotfile headers) remains inspectable.
pub struct MemFs {
    files: RwLock<BTreeMap<String, MemFile>>,
    dirs: RwLock<std::collections::BTreeSet<String>>,
    retention: usize,
}

impl MemFs {
    /// A filesystem retaining full file content (use for tests).
    pub fn new() -> Self {
        Self::with_retention(usize::MAX)
    }

    /// A filesystem retaining at most `limit` bytes of content per file
    /// (sizes are always exact).
    pub fn with_retention(limit: usize) -> Self {
        Self {
            files: RwLock::new(BTreeMap::new()),
            dirs: RwLock::new(std::collections::BTreeSet::new()),
            retention: limit,
        }
    }

    /// True when `path` was created as a directory.
    pub fn dir_exists(&self, path: &str) -> bool {
        self.dirs.read().contains(&normalize(path))
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

fn normalize(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for part in path.split('/').filter(|p| !p.is_empty() && *p != ".") {
        out.push('/');
        out.push_str(part);
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

impl Vfs for MemFs {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        let norm = normalize(path);
        let mut dirs = self.dirs.write();
        let mut acc = String::new();
        for part in norm.split('/').filter(|p| !p.is_empty()) {
            acc.push('/');
            acc.push_str(part);
            dirs.insert(acc.clone());
        }
        Ok(())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let norm = normalize(path);
        let head_len = data.len().min(self.retention);
        self.files.write().insert(
            norm,
            MemFile {
                size: data.len() as u64,
                head: data[..head_len].to_vec(),
            },
        );
        Ok(data.len() as u64)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.files.read().get(&normalize(path)).map(|f| f.size)
    }

    fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        self.files
            .read()
            .get(&normalize(path))
            .map(|f| f.head.clone())
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let norm = normalize(prefix);
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(&norm))
            .cloned()
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|f| f.size).sum()
    }

    fn nfiles(&self) -> usize {
        self.files.read().len()
    }
}

/// OS-filesystem backend rooted at a directory.
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// A backend writing under `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let rel: PathBuf = Path::new(&normalize(path))
            .components()
            .filter(|c| matches!(c, std::path::Component::Normal(_)))
            .collect();
        self.root.join(rel)
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        std::fs::create_dir_all(self.resolve(path))
    }

    fn write_file(&self, path: &str, data: &[u8]) -> io::Result<u64> {
        let p = self.resolve(path);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&p, data)?;
        Ok(data.len() as u64)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        std::fs::metadata(self.resolve(path)).ok().map(|m| m.len())
    }

    fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        std::fs::read(self.resolve(path)).ok()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        // Walk the root and filter; adequate for example-sized trees.
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if let Ok(rel) = p.strip_prefix(&self.root) {
                    let rel = format!("/{}", rel.display());
                    if rel.starts_with(&normalize(prefix)) {
                        out.push(rel);
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn total_bytes(&self) -> u64 {
        self.list("/")
            .iter()
            .filter_map(|p| self.file_size(p))
            .sum()
    }

    fn nfiles(&self) -> usize {
        self.list("/").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_write_read_round_trip() {
        let fs = MemFs::new();
        fs.write_file("/a/b.txt", b"hello").unwrap();
        assert_eq!(fs.file_size("/a/b.txt"), Some(5));
        assert_eq!(fs.read_file("/a/b.txt"), Some(b"hello".to_vec()));
        assert_eq!(fs.total_bytes(), 5);
        assert_eq!(fs.nfiles(), 1);
    }

    #[test]
    fn memfs_overwrite_replaces() {
        let fs = MemFs::new();
        fs.write_file("/f", b"xxxx").unwrap();
        fs.write_file("/f", b"yy").unwrap();
        assert_eq!(fs.file_size("/f"), Some(2));
        assert_eq!(fs.total_bytes(), 2);
    }

    #[test]
    fn memfs_retention_truncates_content_not_size() {
        let fs = MemFs::with_retention(4);
        fs.write_file("/big", &[7u8; 100]).unwrap();
        assert_eq!(fs.file_size("/big"), Some(100));
        assert_eq!(fs.read_file("/big").unwrap().len(), 4);
        assert_eq!(fs.total_bytes(), 100);
    }

    #[test]
    fn memfs_list_by_prefix_sorted() {
        let fs = MemFs::new();
        fs.write_file("/plt0/L0/a", b"1").unwrap();
        fs.write_file("/plt0/L1/b", b"2").unwrap();
        fs.write_file("/plt1/L0/c", b"3").unwrap();
        let l = fs.list("/plt0");
        assert_eq!(l, vec!["/plt0/L0/a".to_string(), "/plt0/L1/b".to_string()]);
        assert_eq!(fs.list("/").len(), 3);
    }

    #[test]
    fn memfs_path_normalization() {
        let fs = MemFs::new();
        fs.write_file("a//b/./c", b"x").unwrap();
        assert_eq!(fs.file_size("/a/b/c"), Some(1));
    }

    #[test]
    fn memfs_dirs_tracked() {
        let fs = MemFs::new();
        fs.create_dir_all("/x/y/z").unwrap();
        assert!(fs.dir_exists("/x"));
        assert!(fs.dir_exists("/x/y"));
        assert!(fs.dir_exists("/x/y/z"));
        assert!(!fs.dir_exists("/q"));
    }

    #[test]
    fn realfs_round_trip() {
        let dir = std::env::temp_dir().join(format!("iosim-test-{}", std::process::id()));
        let fs = RealFs::new(&dir).unwrap();
        fs.write_file("/sub/file.bin", b"abc").unwrap();
        assert_eq!(fs.file_size("/sub/file.bin"), Some(3));
        assert_eq!(fs.read_file("/sub/file.bin"), Some(b"abc".to_vec()));
        assert_eq!(fs.list("/sub"), vec!["/sub/file.bin".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
