//! The machine room: one storage system shared by N concurrent runs.
//!
//! Everything below [`StorageModel`] in this crate simulates a *private*
//! filesystem — each run owns its model, so campaigns are loops over
//! isolated worlds. A [`Fabric`] instead wraps one model behind a unified
//! event-driven clock and accepts bursts from N concurrent tenants via
//! per-tenant [`FabricHandle`]s. Overlapping bursts time-share each
//! server's bandwidth exactly the way a single burst's requests always
//! have (fair processor sharing per server), so a solo tenant's results
//! are **bit-identical** to [`StorageModel::simulate_burst`] /
//! [`StorageModel::simulate_read_burst`] — same noise draws, same event
//! arithmetic, same retirement epsilon (pinned by tests here and by
//! property tests across the backend × codec matrix).
//!
//! On top of plain fair sharing the fabric layers:
//!
//! * **QoS** ([`QosPolicy`]): per-tenant priority weights (a tenant's
//!   requests get `weight`-proportional shares of each server) and
//!   optional per-tenant bandwidth caps (a fraction of every server's
//!   bandwidth; excess redistributes to uncapped tenants by
//!   water-filling).
//! * **A bounded staging pool** ([`Fabric::with_staging`]): deferred
//!   backends hand bursts to a shared burst-buffer; when the pool is
//!   exhausted a new handoff back-pressures (the application blocks)
//!   until an in-flight drain releases space.
//! * **An interference plane** ([`TenantStats`]): shared vs
//!   solo-equivalent wall (the slowdown factor), plus lost service
//!   seconds split into *contention* (other tenants on my servers) and
//!   *throttling* (my own QoS cap), and seconds spent waiting for
//!   staging space.
//!
//! # Concurrency model
//!
//! Tenant threads interact with a conservative discrete-event engine
//! guarded by one mutex. Every fabric call blocks until the engine
//! resolves it, and the engine only advances when *every* live tenant is
//! parked inside a call — at that point all arrivals before the next
//! completion are known, so events are processed in global time order
//! and results are deterministic regardless of thread scheduling.
//! Register all tenants (and spawn their runs) before the first burst;
//! a finished tenant drops out of the quorum via [`FabricHandle::finish`]
//! (also called on drop).
//!
//! ```
//! use iosim::{Fabric, StorageModel, WriteRequest};
//!
//! let fabric = Fabric::new(StorageModel::ideal(1, 100.0));
//! let a = fabric.tenant("a");
//! let b = fabric.tenant("b");
//! let burst = |rank: usize| {
//!     vec![WriteRequest { rank, path: format!("/f{rank}"), bytes: 500, start: 0.0 }]
//! };
//! // Move each handle into its thread: when a tenant's run ends, the
//! // handle drops and the tenant retires from the engine's quorum.
//! let (ra, rb) = std::thread::scope(|s| {
//!     let ta = s.spawn(move || a.simulate_burst(&burst(0)));
//!     let tb = s.spawn(move || b.simulate_burst(&burst(1)));
//!     (ta.join().unwrap(), tb.join().unwrap())
//! });
//! // Two 500-byte writes share the single 100 B/s server: both finish
//! // at t=10 — exactly as one run's two-request burst always has.
//! assert!((ra.t_end - 10.0).abs() < 1e-9);
//! assert!((rb.t_end - 10.0).abs() < 1e-9);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mpi_sim::NetworkModel;

use crate::schedule::BurstScheduler;
use crate::storage::{BurstResult, ReadRequest, ReqView, StorageModel, WriteRequest, RETIRE_EPS};

/// Per-tenant quality-of-service policy on the fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QosPolicy {
    /// Priority weight: a tenant's requests receive `weight`-proportional
    /// shares of each server they occupy (default 1.0 = fair share).
    pub weight: f64,
    /// Optional hard cap, as a fraction of *each* server's bandwidth in
    /// `(0, 1]`; bandwidth the cap forfeits redistributes to uncapped
    /// tenants (water-filling).
    pub bandwidth_cap: Option<f64>,
}

impl Default for QosPolicy {
    fn default() -> Self {
        Self {
            weight: 1.0,
            bandwidth_cap: None,
        }
    }
}

impl QosPolicy {
    /// A fair-share policy with priority `weight`.
    ///
    /// # Panics
    /// Panics unless `weight` is finite and positive.
    pub fn weighted(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "QosPolicy: weight must be finite and positive"
        );
        Self {
            weight,
            bandwidth_cap: None,
        }
    }

    /// A default-weight policy capped at `frac` of each server.
    ///
    /// # Panics
    /// Panics unless `frac` is in `(0, 1]`.
    pub fn capped(frac: f64) -> Self {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "QosPolicy: bandwidth cap must be in (0, 1]"
        );
        Self {
            weight: 1.0,
            bandwidth_cap: Some(frac),
        }
    }

    fn is_default(&self) -> bool {
        self.weight == 1.0 && self.bandwidth_cap.is_none()
    }
}

/// Interference metrics for one tenant of a [`Fabric`].
///
/// Stall fields are *lost service seconds*: over each event interval the
/// engine integrates the gap between the rate a request would have had
/// with the tenant alone on the machine and the rate it actually got,
/// attributing the loss to other tenants' traffic (`contention_stall`)
/// or to the tenant's own bandwidth cap (`throttle_stall`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Tenant slot index (registration order).
    pub tenant: usize,
    /// Tenant name given at registration.
    pub name: String,
    /// Bursts the tenant submitted.
    pub bursts: u64,
    /// Payload bytes of write bursts.
    pub write_bytes: u64,
    /// Payload bytes of read bursts.
    pub read_bytes: u64,
    /// Wall-clock of the tenant's run on the shared fabric (reported by
    /// the scheduler at seal time; 0 until then).
    pub shared_wall: f64,
    /// Wall-clock the identical run would have taken with the storage to
    /// itself (exact solo replay, not an estimate; 0 until sealed).
    pub solo_wall: f64,
    /// Service seconds lost to other tenants' traffic.
    pub contention_stall: f64,
    /// Service seconds lost to the tenant's own QoS bandwidth cap.
    pub throttle_stall: f64,
    /// Seconds the application blocked waiting for staging-pool space.
    pub staging_wait: f64,
}

impl TenantStats {
    /// Shared wall over solo-equivalent wall (1.0 when either is
    /// unreported or the run was free).
    pub fn slowdown(&self) -> f64 {
        if self.solo_wall > 0.0 && self.shared_wall > 0.0 {
            self.shared_wall / self.solo_wall
        } else {
            1.0
        }
    }
}

/// What a run's burst scheduler is bound to: nothing (byte accounting
/// only), a private [`StorageModel`] (the legacy solo path), or one
/// tenant's seat on a shared [`Fabric`].
pub enum StorageAttach<'a> {
    /// No storage timing: bursts are free, only codec CPU costs time.
    None,
    /// A private storage model — the legacy one-run-one-filesystem path.
    Model(&'a StorageModel),
    /// One tenant of a shared machine room.
    Fabric(FabricHandle),
}

impl<'a> From<Option<&'a StorageModel>> for StorageAttach<'a> {
    fn from(storage: Option<&'a StorageModel>) -> Self {
        match storage {
            Some(m) => StorageAttach::Model(m),
            None => StorageAttach::None,
        }
    }
}

impl<'a> StorageAttach<'a> {
    /// Builds the run's burst scheduler for this attachment (`None` when
    /// unattached).
    pub fn scheduler(self, overlapped: bool) -> Option<BurstScheduler<'a>> {
        match self {
            StorageAttach::None => None,
            StorageAttach::Model(m) => Some(BurstScheduler::new(m, overlapped)),
            StorageAttach::Fabric(h) => Some(BurstScheduler::on_fabric(h, overlapped)),
        }
    }
}

/// Which bandwidth/latency class a burst runs in.
/// How a fabric tenant's solo-equivalent wall is produced at seal time.
///
/// The default is an exact shadow replay (the scheduler re-runs the
/// tenant's burst sequence against a private model copy). When many
/// tenants share one solo profile — the throughput-scaling cells, which
/// are N clones of one configuration — the replay prices the identical
/// sequence N times; [`SoloMemo`] lets an executor pay it once and hand
/// the remaining tenants the answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SoloPricing {
    /// Exact solo shadow replay against a private model copy (the
    /// default, and the pinned bit-identical fallback on a memo miss).
    Replay,
    /// The solo wall is already known (a memoized shadow replay for the
    /// same canonical config): skip the replay, report this value.
    Known(f64),
}

/// A concurrency-safe memo of solo-equivalent walls, keyed by the
/// caller's canonical config key (the spec plane uses the tenancy- and
/// label-independent cell key). First pricing of a key runs the exact
/// shadow replay and [`SoloMemo::fill`]s the result; later tenants with
/// the same key [`SoloMemo::get`] it and skip their replays entirely.
/// Because clone tenants replay bit-identical burst sequences, a memo
/// hit reproduces the cold replay's wall exactly (pinned by tests).
#[derive(Debug, Default)]
pub struct SoloMemo {
    map: Mutex<HashMap<String, f64>>,
    hits: AtomicU64,
    fills: AtomicU64,
}

impl SoloMemo {
    /// An empty memo (one per spec execution; keys are only comparable
    /// under one canonical-key scheme).
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized solo wall for `key`, counting a hit when present.
    pub fn get(&self, key: &str) -> Option<f64> {
        let found = self.map.lock().expect("solo memo lock").get(key).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records the solo wall replayed for `key`. First writer wins:
    /// concurrent replays of the same key are bit-identical anyway, and
    /// keeping the first keeps the memo append-only.
    pub fn fill(&self, key: &str, solo_wall: f64) {
        let mut map = self.map.lock().expect("solo memo lock");
        if !map.contains_key(key) {
            map.insert(key.to_string(), solo_wall);
            self.fills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Replays skipped thanks to the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct keys priced (each one exact shadow replay).
    pub fn fills(&self) -> u64 {
        self.fills.load(Ordering::Relaxed)
    }

    /// Distinct keys currently memoized.
    pub fn len(&self) -> usize {
        self.map.lock().expect("solo memo lock").len()
    }

    /// True when nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Class {
    Write,
    Read,
}

/// One request in flight on a server. Ordering (and every deterministic
/// tie-break) uses `(arrival, tenant, seq, req)` — never insertion
/// order, which depends on thread scheduling.
#[derive(Clone, Debug)]
struct Job {
    tenant: usize,
    /// Tenant-local burst sequence number.
    seq: u64,
    /// Global burst key (completion bookkeeping only).
    burst: u64,
    /// Index of this request within its burst's submission order.
    req: usize,
    arrival: f64,
    /// Remaining seconds of service demand.
    work: f64,
}

impl Job {
    fn key(&self) -> (f64, usize, u64, usize) {
        (self.arrival, self.tenant, self.seq, self.req)
    }

    fn before(&self, other: &Job) -> bool {
        let (a, b) = (self.key(), other.key());
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then(a.3.cmp(&b.3))
            .is_lt()
    }
}

/// One server's slice of the shared event engine. Servers never interact
/// (requests are pinned to servers by path hash, and QoS caps are
/// per-server fractions), so each keeps its *own* local event time and
/// its arithmetic sequence is identical to the solo simulation's — the
/// global loop merely interleaves per-server events in time order.
#[derive(Clone, Debug, Default)]
struct ServerState {
    /// Time of this server's last processed event.
    last_t: f64,
    /// Requests currently sharing the server (admission order, which is
    /// deterministic: arrivals are admitted in `Job::key` order).
    active: Vec<Job>,
    /// Future arrivals, sorted *descending* by `Job::key` (pop from the
    /// end is the earliest).
    queue: Vec<Job>,
}

impl ServerState {
    fn enqueue(&mut self, job: Job) {
        // Descending order: everything that sorts after `job` stays in
        // front of it, so popping from the end yields the earliest.
        let pos = self.queue.partition_point(|q| job.before(q));
        self.queue.insert(pos, job);
    }

    fn next_arrival(&self) -> Option<f64> {
        self.queue.last().map(|j| j.arrival)
    }
}

/// An unresolved burst: its owner is parked until `remaining` hits zero.
#[derive(Debug)]
struct PendingBurst {
    key: u64,
    remaining: usize,
    finish: Vec<f64>,
    /// True for a mirror slot's copy of a clone-group burst: no thread
    /// is parked on it, so resolving it must not touch `Engine::parked`.
    mirror: bool,
}

/// A resolved burst, keyed by burst in `Engine::results`.
#[derive(Debug)]
struct BurstDone {
    finish: Vec<f64>,
}

/// One staging-pool allocation, held from burst handoff until the drain
/// completes (`released_at`).
#[derive(Debug)]
struct StagingAlloc {
    burst: u64,
    bytes: u64,
    released_at: Option<f64>,
}

/// A tenant blocked waiting for staging space.
#[derive(Debug)]
struct StagingWaiter {
    tenant: usize,
    burst: u64,
    base: f64,
    bytes: u64,
    granted: Option<f64>,
}

#[derive(Debug)]
struct StagingState {
    capacity: u64,
    allocs: Vec<StagingAlloc>,
    waiters: Vec<StagingWaiter>,
}

impl StagingState {
    /// Earliest handoff time `τ ≥ base` at which `bytes` fit, treating
    /// unresolved allocations as permanently occupying (they resolve in
    /// global completion-time order, so by the time resolved releases
    /// suffice every earlier release is known). `None` means "not yet
    /// determinable — advance the engine".
    fn try_grant(&self, base: f64, bytes: u64) -> Option<f64> {
        if bytes > self.capacity {
            // A burst larger than the whole pool proceeds only with the
            // pool to itself (everything else drained).
            if self.allocs.iter().any(|a| a.released_at.is_none()) {
                return None;
            }
            return Some(
                self.allocs
                    .iter()
                    .filter_map(|a| a.released_at)
                    .fold(base, f64::max),
            );
        }
        let occupied_at = |tau: f64| -> u64 {
            self.allocs
                .iter()
                .filter(|a| a.released_at.is_none_or(|r| r > tau))
                .map(|a| a.bytes)
                .sum()
        };
        if occupied_at(base) + bytes <= self.capacity {
            return Some(base);
        }
        let mut releases: Vec<f64> = self
            .allocs
            .iter()
            .filter_map(|a| a.released_at)
            .filter(|&r| r > base)
            .collect();
        releases.sort_by(f64::total_cmp);
        releases
            .into_iter()
            .find(|&tau| occupied_at(tau) + bytes <= self.capacity)
    }
}

/// One registered tenant.
#[derive(Debug)]
struct TenantSlot {
    qos: QosPolicy,
    finished: bool,
    /// Bursts submitted so far (tenant-local sequence for ordering).
    seq: u64,
    stats: TenantStats,
}

/// The shared event engine (everything behind the fabric's one mutex).
#[derive(Debug, Default)]
struct Engine {
    tenants: Vec<TenantSlot>,
    servers: Vec<ServerState>,
    pending: Vec<PendingBurst>,
    results: HashMap<u64, BurstDone>,
    /// Tenants currently parked inside a fabric call.
    parked: usize,
    /// Engine time: the latest resolution (bursts only ever arrive at or
    /// after it — the conservative-advance causality invariant).
    time: f64,
    next_burst: u64,
    staging: Option<StagingState>,
    /// The fabric's interconnect, when one is attached: streamed
    /// (in-transit) tenants split its bandwidth instead of the servers'.
    link: Option<NetworkModel>,
    /// How many registered tenants stream over the shared link.
    stream_tenants: usize,
    /// True once a clone group registered mirror slots (mirror slots and
    /// the bounded staging pool are mutually exclusive).
    mirrored: bool,
}

/// Per-job rates over one event interval: actual, uncapped-fair (for
/// throttle attribution) and solo-equivalent (tenant alone).
struct Rates {
    rate: Vec<f64>,
    fair: Vec<f64>,
    solo: Vec<f64>,
    /// True when attribution can be skipped (one tenant, no caps).
    solo_only: bool,
}

/// Weighted + capped shares for one server's active set, by
/// water-filling: capped tenants clamp to their cap, the freed bandwidth
/// redistributes weight-proportionally among the rest. Iterates in
/// tenant-index order so float sums are deterministic.
fn job_rates(active: &[Job], tenants: &[TenantSlot]) -> Rates {
    let n = active.len();
    // Group by tenant (sorted by tenant index).
    let mut groups: Vec<(usize, usize)> = Vec::new(); // (tenant, count)
    for j in active {
        match groups.binary_search_by_key(&j.tenant, |g| g.0) {
            Ok(i) => groups[i].1 += 1,
            Err(i) => groups.insert(i, (j.tenant, 1)),
        }
    }
    let uniform = active.iter().all(|j| tenants[j.tenant].qos.is_default());
    let count_of = |tenant: usize| groups[groups.binary_search_by_key(&tenant, |g| g.0).unwrap()].1;
    if uniform {
        let rate = 1.0 / n as f64;
        return Rates {
            rate: vec![rate; n],
            fair: vec![rate; n],
            solo: active
                .iter()
                .map(|j| 1.0 / count_of(j.tenant) as f64)
                .collect(),
            solo_only: groups.len() == 1,
        };
    }
    // Uncapped weighted shares (the "fair" reference for throttling).
    let total_wn: f64 = groups
        .iter()
        .map(|&(t, c)| tenants[t].qos.weight * c as f64)
        .sum();
    let fair_share: Vec<f64> = groups
        .iter()
        .map(|&(t, c)| tenants[t].qos.weight * c as f64 / total_wn)
        .collect();
    // Water-filling: clamp binding caps, redistribute to the rest.
    let mut binding = vec![false; groups.len()];
    let mut share = fair_share.clone();
    loop {
        let cap_sum: f64 = groups
            .iter()
            .enumerate()
            .filter(|&(g, _)| binding[g])
            .map(|(g, &(t, _))| {
                let _ = g;
                tenants[t].qos.bandwidth_cap.unwrap_or(1.0)
            })
            .sum();
        let denom: f64 = groups
            .iter()
            .enumerate()
            .filter(|&(g, _)| !binding[g])
            .map(|(_, &(t, c))| tenants[t].qos.weight * c as f64)
            .sum();
        let remaining = (1.0 - cap_sum).max(0.0);
        let mut changed = false;
        for (g, &(t, c)) in groups.iter().enumerate() {
            if binding[g] {
                share[g] = tenants[t].qos.bandwidth_cap.unwrap_or(1.0);
                continue;
            }
            let s = if denom > 0.0 {
                remaining * tenants[t].qos.weight * c as f64 / denom
            } else {
                0.0
            };
            if let Some(cap) = tenants[t].qos.bandwidth_cap {
                if s > cap {
                    binding[g] = true;
                    changed = true;
                    share[g] = cap;
                    continue;
                }
            }
            share[g] = s;
        }
        if !changed {
            break;
        }
    }
    // Infeasible cap sets (> 1.0 combined) scale down proportionally so
    // every request keeps a positive rate.
    let total: f64 = share.iter().sum();
    if total > 1.0 {
        for s in &mut share {
            *s /= total;
        }
    }
    let idx_of = |tenant: usize| groups.binary_search_by_key(&tenant, |g| g.0).unwrap();
    Rates {
        rate: active
            .iter()
            .map(|j| {
                let g = idx_of(j.tenant);
                share[g] / groups[g].1 as f64
            })
            .collect(),
        fair: active
            .iter()
            .map(|j| {
                let g = idx_of(j.tenant);
                fair_share[g] / groups[g].1 as f64
            })
            .collect(),
        solo: active
            .iter()
            .map(|j| 1.0 / count_of(j.tenant) as f64)
            .collect(),
        solo_only: false,
    }
}

impl Engine {
    fn live(&self) -> usize {
        self.tenants.iter().filter(|t| !t.finished).count()
    }

    /// One scheduling decision, taken only when every live tenant is
    /// parked (the caller guarantees it): first re-check staging waiters
    /// in tenant order (a grant unparks exactly one tenant), else advance
    /// the event engine to the next burst resolution.
    fn decide(&mut self, model: &StorageModel) {
        if let Some(staging) = &mut self.staging {
            let mut order: Vec<usize> = (0..staging.waiters.len()).collect();
            order.sort_by_key(|&i| staging.waiters[i].tenant);
            for i in order {
                let w = &staging.waiters[i];
                if w.granted.is_some() {
                    continue;
                }
                if let Some(tau) = staging.try_grant(w.base, w.bytes) {
                    staging.allocs.push(StagingAlloc {
                        burst: w.burst,
                        bytes: w.bytes,
                        released_at: None,
                    });
                    staging.waiters[i].granted = Some(tau);
                    self.parked -= 1;
                    return;
                }
            }
        }
        self.advance_until_resolution(model);
    }

    /// Advances the shared clock, processing per-server events in global
    /// time order, until at least one pending burst fully completes.
    fn advance_until_resolution(&mut self, model: &StorageModel) {
        assert!(
            !self.pending.is_empty(),
            "machine-room deadlock: every live tenant is parked waiting for \
             staging space and no drain is in flight to release any \
             (staging pool too small for the concurrent burst set)"
        );
        loop {
            let mut best: Option<(f64, usize)> = None;
            for s in 0..self.servers.len() {
                let Some(t) = self.server_next_event(s) else {
                    continue;
                };
                assert!(
                    t.is_finite(),
                    "fabric: starved request on server {s} (QoS shares left zero bandwidth)"
                );
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, s));
                }
            }
            let (t, s) = best.expect("a pending burst implies a future server event");
            if self.process_server_event(s, t, model) {
                return;
            }
        }
    }

    /// This server's next event time: its earliest queued arrival vs the
    /// earliest completion of its active set at current rates.
    fn server_next_event(&self, s: usize) -> Option<f64> {
        let srv = &self.servers[s];
        let arrive = srv.next_arrival();
        if srv.active.is_empty() {
            return arrive;
        }
        let uniform = srv
            .active
            .iter()
            .all(|j| self.tenants[j.tenant].qos.is_default());
        let t_complete = if uniform {
            // Identical expressions to the solo event loop, so a solo
            // tenant's event times round identically.
            let rate = 1.0 / srv.active.len() as f64;
            let min_work = srv
                .active
                .iter()
                .map(|j| j.work)
                .fold(f64::INFINITY, f64::min);
            srv.last_t + min_work / rate
        } else {
            let rates = job_rates(&srv.active, &self.tenants);
            srv.active
                .iter()
                .zip(&rates.rate)
                .map(|(j, &r)| srv.last_t + j.work / r)
                .fold(f64::INFINITY, f64::min)
        };
        Some(match arrive {
            Some(a) => t_complete.min(a),
            None => t_complete,
        })
    }

    /// Processes one event of server `s` at time `t`: progress the active
    /// set over `[last_t, t]` (accumulating interference attribution),
    /// retire finished requests, admit arrivals due at or before `t`.
    /// Returns true when a burst fully resolved (its result is posted and
    /// its owner unparked).
    fn process_server_event(&mut self, s: usize, t: f64, _model: &StorageModel) -> bool {
        let mut retired: Vec<Job> = Vec::new();
        {
            let uniform = self.servers[s]
                .active
                .iter()
                .all(|j| self.tenants[j.tenant].qos.is_default());
            let srv_last_t = self.servers[s].last_t;
            if !self.servers[s].active.is_empty() {
                let elapsed = t - srv_last_t;
                if uniform {
                    let rate = 1.0 / self.servers[s].active.len() as f64;
                    let rates = job_rates(&self.servers[s].active, &self.tenants);
                    for j in self.servers[s].active.iter_mut() {
                        j.work -= rate * elapsed;
                    }
                    if !rates.solo_only && elapsed > 0.0 {
                        // Equal sharing across tenants: the whole gap to
                        // the solo rate is contention.
                        let losses: Vec<(usize, f64)> = self.servers[s]
                            .active
                            .iter()
                            .zip(&rates.solo)
                            .map(|(j, &solo)| (j.tenant, ((solo - rate) * elapsed).max(0.0)))
                            .collect();
                        for (tenant, loss) in losses {
                            self.tenants[tenant].stats.contention_stall += loss;
                        }
                    }
                } else {
                    let rates = job_rates(&self.servers[s].active, &self.tenants);
                    let mut attributions: Vec<(usize, f64, f64)> = Vec::new();
                    for (i, j) in self.servers[s].active.iter_mut().enumerate() {
                        j.work -= rates.rate[i] * elapsed;
                        if elapsed > 0.0 {
                            let lost = ((rates.solo[i] - rates.rate[i]) * elapsed).max(0.0);
                            if lost > 0.0 {
                                let throttle = ((rates.fair[i] - rates.rate[i]) * elapsed)
                                    .max(0.0)
                                    .min(lost);
                                attributions.push((j.tenant, lost - throttle, throttle));
                            }
                        }
                    }
                    for (tenant, contention, throttle) in attributions {
                        self.tenants[tenant].stats.contention_stall += contention;
                        self.tenants[tenant].stats.throttle_stall += throttle;
                    }
                }
            }
            let srv = &mut self.servers[s];
            srv.last_t = t;
            srv.active.retain(|j| {
                if j.work <= RETIRE_EPS {
                    retired.push(j.clone());
                    false
                } else {
                    true
                }
            });
            while srv.queue.last().is_some_and(|j| j.arrival <= t) {
                let j = srv.queue.pop().expect("checked non-empty");
                srv.active.push(j);
            }
        }
        // Record finishes; resolve bursts whose last request retired.
        let mut resolved_any = false;
        for j in retired {
            let p = self
                .pending
                .iter_mut()
                .find(|p| p.key == j.burst)
                .expect("retired request belongs to a pending burst");
            p.finish[j.req] = t;
            p.remaining -= 1;
            if p.remaining == 0 {
                let key = p.key;
                let finish = std::mem::take(&mut p.finish);
                let mirror = p.mirror;
                self.pending.retain(|p| p.key != key);
                self.results.insert(key, BurstDone { finish });
                self.time = t;
                if !mirror {
                    self.parked -= 1;
                }
                resolved_any = true;
                if let Some(staging) = &mut self.staging {
                    if let Some(a) = staging.allocs.iter_mut().find(|a| a.burst == key) {
                        a.released_at = Some(t);
                    }
                    // Garbage-collect releases no outstanding waiter (nor
                    // any future one: bases never precede engine time)
                    // can still observe.
                    let floor = staging
                        .waiters
                        .iter()
                        .map(|w| w.base)
                        .fold(self.time, f64::min);
                    staging
                        .allocs
                        .retain(|a| a.released_at.is_none_or(|r| r > floor));
                }
            }
        }
        resolved_any
    }
}

struct FabricShared {
    model: StorageModel,
    state: Mutex<Engine>,
    cv: Condvar,
}

/// A shared multi-tenant storage fabric (see the module docs).
pub struct Fabric {
    shared: Arc<FabricShared>,
}

impl Fabric {
    /// A fabric over one storage model. Stage capacity is unbounded until
    /// [`Fabric::with_staging`] bounds it.
    pub fn new(model: StorageModel) -> Self {
        Self {
            shared: Arc::new(FabricShared {
                model,
                state: Mutex::new(Engine::default()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Bounds the shared burst-buffer pool: staged (overlapped-backend)
    /// handoffs allocate from `bytes` of staging space and back-pressure
    /// when it is exhausted, until in-flight drains release space.
    pub fn with_staging(self, bytes: u64) -> Self {
        {
            let mut g = self.shared.state.lock().expect("fabric lock");
            assert!(
                !g.mirrored,
                "Fabric::with_staging: clone groups (tenant_clones) do not \
                 support a bounded staging pool"
            );
            g.staging = Some(StagingState {
                capacity: bytes,
                allocs: Vec::new(),
                waiters: Vec::new(),
            });
        }
        self
    }

    /// Attaches a modeled interconnect: streamed (in-transit) tenants
    /// share this link's bandwidth the way stored tenants share the
    /// servers. Pair with [`Fabric::set_stream_tenants`]; each streamed
    /// tenant then draws its fair share via [`FabricHandle::stream_link`].
    pub fn with_link(self, net: NetworkModel) -> Self {
        {
            let mut g = self.shared.state.lock().expect("fabric lock");
            g.link = Some(net);
        }
        self
    }

    /// Declares how many registered tenants stream over the shared link
    /// (stored tenants never touch it). Zero is treated as one when
    /// shares are computed, so a lone caller can skip the declaration.
    pub fn set_stream_tenants(&self, n: usize) {
        let mut g = self.shared.state.lock().expect("fabric lock");
        g.stream_tenants = n;
    }

    /// The storage model the fabric wraps.
    pub fn model(&self) -> StorageModel {
        self.shared.model
    }

    /// Registers a tenant with default (fair-share) QoS. All tenants must
    /// be registered before any burst is submitted.
    pub fn tenant(&self, name: &str) -> FabricHandle {
        self.tenant_with(name, QosPolicy::default())
    }

    /// Registers a tenant with an explicit QoS policy.
    ///
    /// # Panics
    /// Panics if any burst has already been submitted: the conservative
    /// engine needs the full tenant quorum before it may advance.
    pub fn tenant_with(&self, name: &str, qos: QosPolicy) -> FabricHandle {
        let mut g = self.shared.state.lock().expect("fabric lock");
        assert!(
            g.next_burst == 0,
            "Fabric::tenant: register every tenant before the first burst"
        );
        if g.servers.is_empty() {
            g.servers = vec![ServerState::default(); self.shared.model.nservers.max(1)];
        }
        let tenant = g.tenants.len();
        g.tenants.push(TenantSlot {
            qos,
            finished: false,
            seq: 0,
            stats: TenantStats {
                tenant,
                name: name.to_string(),
                ..TenantStats::default()
            },
        });
        FabricHandle {
            shared: Arc::clone(&self.shared),
            tenant,
            mirrors: 0,
            pricing: SoloPricing::Replay,
            finished: false,
        }
    }

    /// Registers a *clone group*: one tenant slot per name, all driven by
    /// the **single** returned handle. The first slot is the real tenant;
    /// the rest are mirror slots whose traffic the engine synthesizes —
    /// every burst the handle submits is enqueued once per slot (distinct
    /// tenant ids, own burst keys), so contention pricing sees the full
    /// N-tenant job set while only one application run executes.
    ///
    /// This is exact, not an approximation, for *identical clones*: the
    /// engine orders and rates jobs by `(arrival, tenant, seq, req)` and
    /// request placement/service demands depend only on the request set,
    /// so N clone tenants' job sets are copies of each other and every
    /// per-tenant outcome (burst results, stall attribution, walls) is
    /// bit-identical to N threaded tenants submitting the same sequence
    /// (pinned by tests). Callers remain responsible for only grouping
    /// runs that are identical modulo their display name.
    ///
    /// Mirror slots hold a permanent seat in the engine's quorum (they
    /// are "always parked"), leaving the real tenant free to advance the
    /// clock alone — no threads, no condvar hand-offs.
    ///
    /// # Panics
    /// Panics if `names` is empty, if any burst was already submitted, or
    /// if the fabric has a bounded staging pool (clone groups and staged
    /// back-pressure are mutually exclusive; spec throughput cells run
    /// unstaged).
    pub fn tenant_clones(&self, names: &[&str]) -> FabricHandle {
        assert!(!names.is_empty(), "Fabric::tenant_clones: empty group");
        let mut first = self.tenant(names[0]);
        let mirrors = names.len() - 1;
        if mirrors > 0 {
            let mut g = self.shared.state.lock().expect("fabric lock");
            assert!(
                g.staging.is_none(),
                "Fabric::tenant_clones: clone groups do not support a \
                 bounded staging pool"
            );
            g.mirrored = true;
            for name in &names[1..] {
                let tenant = g.tenants.len();
                g.tenants.push(TenantSlot {
                    qos: QosPolicy::default(),
                    finished: false,
                    seq: 0,
                    stats: TenantStats {
                        tenant,
                        name: name.to_string(),
                        ..TenantStats::default()
                    },
                });
            }
            // Mirror slots never park in a call; seat them permanently so
            // the quorum check (`parked == live`) still means "every real
            // tenant is blocked and all arrivals are known".
            g.parked += mirrors;
        }
        first.mirrors = mirrors;
        first
    }

    /// Per-tenant interference stats, in registration order. Meaningful
    /// once the runs holding the handles are done (walls are reported at
    /// scheduler seal time).
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let g = self.shared.state.lock().expect("fabric lock");
        g.tenants.iter().map(|t| t.stats.clone()).collect()
    }
}

/// One tenant's seat on a [`Fabric`]. Mirrors the [`StorageModel`] burst
/// API, but calls block until the shared engine resolves them against
/// every overlapping tenant's traffic.
pub struct FabricHandle {
    shared: Arc<FabricShared>,
    tenant: usize,
    /// Mirror slots after `tenant` driven by this handle (clone groups;
    /// 0 for an ordinary tenant).
    mirrors: usize,
    /// How the scheduler prices this tenant's solo-equivalent wall.
    pricing: SoloPricing,
    finished: bool,
}

impl FabricHandle {
    /// The storage model behind the fabric (used by the scheduler's
    /// solo-replay shadow).
    pub fn model(&self) -> StorageModel {
        self.shared.model
    }

    /// The tenant slot this handle occupies.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Mirror slots this handle drives ([`Fabric::tenant_clones`]); 0
    /// for an ordinary tenant.
    pub fn mirrors(&self) -> usize {
        self.mirrors
    }

    /// Sets how the scheduler prices this tenant's solo-equivalent wall
    /// (default [`SoloPricing::Replay`]). Set before attaching the
    /// handle to a run; a [`SoloPricing::Known`] wall skips the shadow
    /// replay entirely.
    pub fn set_solo_pricing(&mut self, pricing: SoloPricing) {
        self.pricing = pricing;
    }

    /// The solo-wall pricing mode the scheduler will use.
    pub fn solo_pricing(&self) -> SoloPricing {
        self.pricing
    }

    /// One streamed tenant's share of the fabric's interconnect: the
    /// link's bandwidth split evenly over the declared stream-tenant
    /// count ([`NetworkModel::fair_share`]) — static fair sharing, the
    /// stream-plane analogue of the servers' processor sharing. `None`
    /// when the fabric has no link attached, in which case an in-transit
    /// backend keeps the solo link its own spec configured.
    pub fn stream_link(&self) -> Option<NetworkModel> {
        let g = self.shared.state.lock().expect("fabric lock");
        g.link.map(|net| net.fair_share(g.stream_tenants.max(1)))
    }

    /// Fabric twin of [`StorageModel::simulate_burst`]: request `start`
    /// times must already be set. Blocks until the burst completes on the
    /// shared clock. Solo-tenant results are bit-identical to the model's.
    pub fn simulate_burst(&self, reqs: &[WriteRequest]) -> BurstResult {
        if reqs.is_empty() {
            return self.shared.model.simulate_burst(reqs);
        }
        let views: Vec<ReqView<'_>> = reqs
            .iter()
            .map(|r| ReqView {
                path: &r.path,
                bytes: r.bytes,
                start: r.start,
            })
            .collect();
        let g = self.shared.state.lock().expect("fabric lock");
        self.submit_and_wait(g, Class::Write, &views, None)
    }

    /// Fabric twin of [`StorageModel::simulate_read_burst`].
    pub fn simulate_read_burst(&self, reqs: &[ReadRequest]) -> BurstResult {
        if reqs.is_empty() {
            return self.shared.model.simulate_read_burst(reqs);
        }
        let views: Vec<ReqView<'_>> = reqs
            .iter()
            .map(|r| ReqView {
                path: &r.path,
                bytes: r.bytes,
                start: r.start,
            })
            .collect();
        let g = self.shared.state.lock().expect("fabric lock");
        self.submit_and_wait(g, Class::Read, &views, None)
    }

    /// Staged (deferred-backend) write burst: acquires staging-pool space
    /// for the requests' bytes no earlier than `base` (blocking while the
    /// pool is full), stamps every request with the granted handoff time,
    /// then runs the drain. Returns the handoff and the burst result;
    /// `handoff - base` is time the application lost to back-pressure.
    pub fn simulate_staged_burst(
        &self,
        base: f64,
        reqs: &mut [WriteRequest],
    ) -> (f64, BurstResult) {
        if reqs.is_empty() {
            for r in reqs.iter_mut() {
                r.start = base;
            }
            return (base, self.shared.model.simulate_burst(reqs));
        }
        let bytes: u64 = reqs.iter().map(|r| r.bytes).sum();
        let shared = &*self.shared;
        let mut g = shared.state.lock().expect("fabric lock");
        let key = g.next_burst;
        g.next_burst += 1;
        let handoff = if g.staging.is_some() {
            g.staging
                .as_mut()
                .expect("staging on")
                .waiters
                .push(StagingWaiter {
                    tenant: self.tenant,
                    burst: key,
                    base,
                    bytes,
                    granted: None,
                });
            g.parked += 1;
            loop {
                let staging = g.staging.as_mut().expect("staging on");
                if let Some(i) = staging
                    .waiters
                    .iter()
                    .position(|w| w.burst == key && w.granted.is_some())
                {
                    let w = staging.waiters.remove(i);
                    break w.granted.expect("granted");
                }
                if g.parked == g.live() {
                    let model = shared.model;
                    g.decide(&model);
                    shared.cv.notify_all();
                    continue;
                }
                g = shared.cv.wait(g).expect("fabric lock");
            }
        } else {
            base
        };
        if handoff > base {
            g.tenants[self.tenant].stats.staging_wait += handoff - base;
        }
        for r in reqs.iter_mut() {
            r.start = handoff;
        }
        let views: Vec<ReqView<'_>> = reqs
            .iter()
            .map(|r| ReqView {
                path: &r.path,
                bytes: r.bytes,
                start: r.start,
            })
            .collect();
        let result = self.submit_and_wait(g, Class::Write, &views, Some(key));
        (handoff, result)
    }

    /// Reports the run's final shared wall and the scheduler shadow's
    /// exact solo-equivalent wall into the tenant's stats (all slots of
    /// a clone group: the mirrors' runs are copies of the real one).
    pub fn record_walls(&self, shared_wall: f64, solo_wall: f64) {
        let mut g = self.shared.state.lock().expect("fabric lock");
        for t in self.tenant..=self.tenant + self.mirrors {
            g.tenants[t].stats.shared_wall = shared_wall;
            g.tenants[t].stats.solo_wall = solo_wall;
        }
    }

    /// Marks the tenant done: it leaves the engine's quorum so the
    /// remaining tenants can advance without it. A clone group retires
    /// all its slots (and releases the mirrors' permanent quorum seats).
    /// Idempotent; also called on drop.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut g = self.shared.state.lock().expect("fabric lock");
        for t in self.tenant..=self.tenant + self.mirrors {
            g.tenants[t].finished = true;
        }
        g.parked -= self.mirrors;
        drop(g);
        self.shared.cv.notify_all();
    }

    /// Submits `views` (starts already stamped) and parks until the
    /// engine resolves the burst. `staged_key` reuses a burst key
    /// pre-allocated by the staging path so the pool allocation releases
    /// when this burst's drain completes.
    fn submit_and_wait(
        &self,
        mut g: MutexGuard<'_, Engine>,
        class: Class,
        views: &[ReqView<'_>],
        staged_key: Option<u64>,
    ) -> BurstResult {
        let shared = &*self.shared;
        let model = shared.model;
        let (bw, per_file_latency) = match class {
            Class::Write => (model.server_bandwidth, model.metadata_latency),
            Class::Read => (model.server_read_bandwidth, model.open_latency),
        };
        let per_server = model.place(views);
        let works = model.service_demands(&per_server, views, bw, per_file_latency);
        let key = match staged_key {
            Some(k) => k,
            None => {
                let k = g.next_burst;
                g.next_burst += 1;
                k
            }
        };
        let seq = g.tenants[self.tenant].seq;
        g.tenants[self.tenant].seq += 1;
        for (s, ids) in per_server.iter().enumerate() {
            for &id in ids {
                g.servers[s].enqueue(Job {
                    tenant: self.tenant,
                    seq,
                    burst: key,
                    req: id,
                    arrival: views[id].start,
                    work: works[id],
                });
            }
        }
        g.pending.push(PendingBurst {
            key,
            remaining: views.len(),
            finish: vec![0.0; views.len()],
            mirror: false,
        });
        let total_bytes: u64 = views.iter().map(|v| v.bytes).sum();
        {
            let st = &mut g.tenants[self.tenant].stats;
            st.bursts += 1;
            match class {
                Class::Write => st.write_bytes += total_bytes,
                Class::Read => st.read_bytes += total_bytes,
            }
        }
        // Clone group: synthesize the mirrors' copies of this burst —
        // same arrivals, same placement, same service demands (placement
        // and noise depend only on the request set), distinct tenant ids
        // and burst keys. The engine then prices exactly the job set N
        // threaded clones would have submitted.
        let mut mirror_keys: Vec<u64> = Vec::with_capacity(self.mirrors);
        for m in 1..=self.mirrors {
            let tenant = self.tenant + m;
            let mseq = g.tenants[tenant].seq;
            g.tenants[tenant].seq += 1;
            let mkey = g.next_burst;
            g.next_burst += 1;
            for (s, ids) in per_server.iter().enumerate() {
                for &id in ids {
                    g.servers[s].enqueue(Job {
                        tenant,
                        seq: mseq,
                        burst: mkey,
                        req: id,
                        arrival: views[id].start,
                        work: works[id],
                    });
                }
            }
            g.pending.push(PendingBurst {
                key: mkey,
                remaining: views.len(),
                finish: vec![0.0; views.len()],
                mirror: true,
            });
            let st = &mut g.tenants[tenant].stats;
            st.bursts += 1;
            match class {
                Class::Write => st.write_bytes += total_bytes,
                Class::Read => st.read_bytes += total_bytes,
            }
            mirror_keys.push(mkey);
        }
        g.parked += 1;
        let done = loop {
            if let Some(d) = g.results.remove(&key) {
                break d;
            }
            if g.parked == g.live() {
                g.decide(&model);
                shared.cv.notify_all();
                continue;
            }
            g = shared.cv.wait(g).expect("fabric lock");
        };
        // Mirror copies are symmetric to the real burst, so they resolve
        // at the same engine event; their results are never read.
        for mkey in mirror_keys {
            let mirrored = g.results.remove(&mkey);
            debug_assert!(
                mirrored.is_some(),
                "clone-group mirror burst must resolve with its original"
            );
        }
        drop(g);
        // Epilogue identical to the solo `simulate_views`.
        let finish = done.finish;
        let t_start = views.iter().map(|v| v.start).fold(f64::INFINITY, f64::min);
        let t_end = finish.iter().copied().fold(0.0, f64::max);
        let duration = (t_end - t_start).max(0.0);
        let effective = if total_bytes > 0 {
            duration.max(per_file_latency)
        } else {
            duration
        };
        BurstResult {
            finish,
            t_start,
            t_end,
            total_bytes,
            aggregate_bandwidth: if total_bytes == 0 {
                0.0
            } else if effective > 0.0 {
                total_bytes as f64 / effective
            } else {
                f64::INFINITY
            },
        }
    }
}

impl Drop for FabricHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rank: usize, path: &str, bytes: u64, start: f64) -> WriteRequest {
        WriteRequest {
            rank,
            path: path.to_string(),
            bytes,
            start,
        }
    }

    fn burst(prefix: &str, n: usize, bytes: u64, start: f64) -> Vec<WriteRequest> {
        (0..n)
            .map(|i| req(i, &format!("/{prefix}{i}"), bytes, start))
            .collect()
    }

    #[test]
    fn solo_tenant_is_bit_identical_to_the_model() {
        // Noise on, several servers, several bursts in sequence: the
        // fabric's answers must equal the solo model's bit for bit.
        let model = StorageModel {
            variability_sigma: 0.2,
            metadata_latency: 0.01,
            ..StorageModel::ideal(4, 1e6)
        };
        let fabric = Fabric::new(model);
        let h = fabric.tenant("solo");
        let mut clock = 0.0;
        for step in 0..4 {
            let reqs = burst(&format!("s{step}/f"), 7, 250_000 + step as u64, clock);
            let solo = model.simulate_burst(&reqs);
            let shared = h.simulate_burst(&reqs);
            assert_eq!(solo, shared, "step {step}");
            clock = shared.t_end + 1.5;
        }
        let rreqs: Vec<ReadRequest> = (0..5)
            .map(|i| ReadRequest {
                rank: i,
                path: format!("/s0/f{i}"),
                bytes: 250_000,
                start: clock,
            })
            .collect();
        assert_eq!(
            model.simulate_read_burst(&rreqs),
            h.simulate_read_burst(&rreqs)
        );
    }

    #[test]
    fn two_tenants_share_like_one_burst_would() {
        let fabric = Fabric::new(StorageModel::ideal(1, 100.0));
        let a = fabric.tenant("a");
        let b = fabric.tenant("b");
        let (ra, rb) = std::thread::scope(|s| {
            let ta = s.spawn(move || a.simulate_burst(&[req(0, "/a", 500, 0.0)]));
            let tb = s.spawn(move || b.simulate_burst(&[req(0, "/b", 500, 0.0)]));
            (ta.join().unwrap(), tb.join().unwrap())
        });
        // Same as one run's two-request burst: both finish at 10.
        assert!((ra.t_end - 10.0).abs() < 1e-9, "{}", ra.t_end);
        assert!((rb.t_end - 10.0).abs() < 1e-9, "{}", rb.t_end);
        let stats = fabric.tenant_stats();
        // Each lost half the server for 10s: 5 lost service seconds.
        assert!((stats[0].contention_stall - 5.0).abs() < 1e-9);
        assert!((stats[1].contention_stall - 5.0).abs() < 1e-9);
        assert_eq!(stats[0].throttle_stall, 0.0);
    }

    #[test]
    fn n_identical_tenants_slow_down_by_n() {
        let model = StorageModel::ideal(1, 1000.0);
        let solo = model.simulate_burst(&[req(0, "/t0", 1000, 0.0)]);
        for n in [2usize, 4] {
            let fabric = Fabric::new(model);
            let handles: Vec<FabricHandle> =
                (0..n).map(|i| fabric.tenant(&format!("t{i}"))).collect();
            let walls: Vec<f64> = std::thread::scope(|s| {
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(i, h)| {
                        s.spawn(move || {
                            h.simulate_burst(&[req(0, &format!("/t{i}"), 1000, 0.0)])
                                .t_end
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect()
            });
            for w in &walls {
                assert!(
                    (w - solo.t_end * n as f64).abs() < 1e-9,
                    "n={n}: {w} vs solo {}",
                    solo.t_end
                );
            }
        }
    }

    #[test]
    fn weighted_tenant_finishes_sooner() {
        let model = StorageModel::ideal(1, 100.0);
        let fabric = Fabric::new(model);
        let hi = fabric.tenant_with("hi", QosPolicy::weighted(3.0));
        let lo = fabric.tenant("lo");
        let (rhi, rlo) = std::thread::scope(|s| {
            // Handles move into the threads so a tenant retires from the
            // engine's quorum (handle drop) the moment its run ends.
            let a = s.spawn(move || hi.simulate_burst(&[req(0, "/hi", 600, 0.0)]));
            let b = s.spawn(move || lo.simulate_burst(&[req(0, "/lo", 600, 0.0)]));
            (a.join().unwrap(), b.join().unwrap())
        });
        // hi at 75 B/s finishes its 600 B at t=8; lo got 25 B/s for 8s
        // (200 B) then the full server: 400 left at 100 B/s -> t=12.
        assert!((rhi.t_end - 8.0).abs() < 1e-9, "{}", rhi.t_end);
        assert!((rlo.t_end - 12.0).abs() < 1e-9, "{}", rlo.t_end);
        assert!(rhi.t_end < rlo.t_end);
    }

    #[test]
    fn bandwidth_cap_throttles_and_is_attributed() {
        let model = StorageModel::ideal(1, 100.0);
        let fabric = Fabric::new(model);
        let capped = fabric.tenant_with("capped", QosPolicy::capped(0.25));
        let r = capped.simulate_burst(&[req(0, "/c", 100, 0.0)]);
        // Alone but capped at 25 B/s: 100 B take 4s.
        assert!((r.t_end - 4.0).abs() < 1e-9, "{}", r.t_end);
        let stats = fabric.tenant_stats();
        // Lost 3 service seconds (would have finished in 1s solo), all
        // attributable to the cap, none to contention.
        assert!((stats[0].throttle_stall - 3.0).abs() < 1e-6, "{:?}", stats);
        assert!(stats[0].contention_stall.abs() < 1e-9);
    }

    #[test]
    fn staging_pool_backpressures_concurrent_staged_bursts() {
        // Pool fits one 1000-byte staged burst; two tenants hand off at
        // t=0: the second must wait for the first drain (t=10) before its
        // handoff, finishing at 20 — full serialization through staging.
        let model = StorageModel::ideal(1, 100.0);
        let fabric = Fabric::new(model).with_staging(1000);
        let a = fabric.tenant("a");
        let b = fabric.tenant("b");
        let (ra, rb) = std::thread::scope(|s| {
            let ta = s.spawn(move || a.simulate_staged_burst(0.0, &mut burst("a", 1, 1000, 0.0)));
            let tb = s.spawn(move || b.simulate_staged_burst(0.0, &mut burst("b", 1, 1000, 0.0)));
            (ta.join().unwrap(), tb.join().unwrap())
        });
        let (first, second) = if ra.0 <= rb.0 { (ra, rb) } else { (rb, ra) };
        assert_eq!(first.0, 0.0, "first handoff is immediate");
        assert!((first.1.t_end - 10.0).abs() < 1e-9);
        assert!((second.0 - 10.0).abs() < 1e-9, "second staged at drain end");
        assert!((second.1.t_end - 20.0).abs() < 1e-9);
        let stats = fabric.tenant_stats();
        let waited: f64 = stats.iter().map(|s| s.staging_wait).sum();
        assert!((waited - 10.0).abs() < 1e-9, "{waited}");
    }

    #[test]
    fn oversized_staged_burst_proceeds_when_pool_is_empty() {
        let model = StorageModel::ideal(1, 100.0);
        let fabric = Fabric::new(model).with_staging(10);
        let a = fabric.tenant("a");
        let (handoff, r) = a.simulate_staged_burst(1.0, &mut burst("big", 1, 1000, 0.0));
        assert_eq!(handoff, 1.0);
        assert!((r.t_end - 11.0).abs() < 1e-9);
    }

    #[test]
    fn fabric_results_are_deterministic_across_runs() {
        let model = StorageModel {
            variability_sigma: 0.3,
            ..StorageModel::ideal(3, 1e5)
        };
        let run = || {
            let fabric = Fabric::new(model);
            let handles: Vec<FabricHandle> =
                (0..4).map(|i| fabric.tenant(&format!("t{i}"))).collect();
            let ends: Vec<Vec<f64>> = std::thread::scope(|s| {
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(i, h)| {
                        s.spawn(move || {
                            let mut ends = Vec::new();
                            let mut clock = 0.0;
                            for step in 0..3 {
                                let r = h.simulate_burst(&burst(
                                    &format!("t{i}/s{step}/f"),
                                    5,
                                    40_000 + i as u64,
                                    clock,
                                ));
                                ends.push(r.t_end);
                                clock = r.t_end + 0.5 * (i + 1) as f64;
                            }
                            ends
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect()
            });
            let stats = fabric.tenant_stats();
            (ends, stats)
        };
        let (e1, s1) = run();
        let (e2, s2) = run();
        assert_eq!(e1, e2, "burst end times must not depend on thread timing");
        assert_eq!(s1, s2, "stats must not depend on thread timing");
    }

    #[test]
    fn finished_tenant_leaves_the_quorum() {
        // a runs one short burst and retires; b runs two. b's second
        // burst can only resolve once a has left the quorum (the engine
        // must otherwise hold time for a's potential future traffic).
        let fabric = Fabric::new(StorageModel::ideal(1, 100.0));
        let mut a = fabric.tenant("a");
        let b = fabric.tenant("b");
        let (ra, rb) = std::thread::scope(|s| {
            let ta = s.spawn(move || {
                let r = a.simulate_burst(&[req(0, "/a", 100, 0.0)]);
                a.finish();
                r
            });
            let tb = s.spawn(move || {
                let r1 = b.simulate_burst(&[req(0, "/b", 100, 0.0)]);
                let r2 = b.simulate_burst(&[req(0, "/b2", 100, r1.t_end + 5.0)]);
                (r1, r2)
            });
            (ta.join().unwrap(), tb.join().unwrap())
        });
        // First two bursts share the server (1s each solo -> both at 2).
        assert!((ra.t_end - 2.0).abs() < 1e-9, "{}", ra.t_end);
        assert!((rb.0.t_end - 2.0).abs() < 1e-9);
        // b's second burst runs alone after a retired: 7 -> 8.
        assert!((rb.1.t_end - 8.0).abs() < 1e-9, "{}", rb.1.t_end);
    }

    /// One clone tenant's driver loop: identical bursts (writes and a
    /// read), clocks chained through the previous result — the shape a
    /// scheduler-driven run produces.
    fn clone_driver(h: &FabricHandle) -> Vec<f64> {
        let mut ends = Vec::new();
        let mut clock = 0.0;
        for step in 0..3 {
            let r = h.simulate_burst(&burst(
                &format!("s{step}/f"),
                6,
                120_000 + step as u64,
                clock,
            ));
            ends.push(r.t_end);
            clock = r.t_end + 0.75;
        }
        let reads: Vec<ReadRequest> = (0..4)
            .map(|i| ReadRequest {
                rank: i,
                path: format!("/s0/f{i}"),
                bytes: 120_000,
                start: clock,
            })
            .collect();
        let r = h.simulate_read_burst(&reads);
        ends.push(r.t_end);
        ends
    }

    #[test]
    fn clone_group_is_bit_identical_to_threaded_clones() {
        // The mirrored-clone engine mode (one real tenant + N-1 mirror
        // slots, no threads) must reproduce N threaded clone tenants bit
        // for bit: burst end times, walls, and the full per-tenant stats
        // including contention attribution.
        let model = StorageModel {
            variability_sigma: 0.2,
            metadata_latency: 0.01,
            ..StorageModel::ideal(3, 1e6)
        };
        let n = 4;
        let names: Vec<String> = (0..n).map(|i| format!("c_t{i}")).collect();

        // Threaded reference: every clone on its own native thread.
        let threaded_fabric = Fabric::new(model);
        let handles: Vec<FabricHandle> = names
            .iter()
            .map(|name| threaded_fabric.tenant(name))
            .collect();
        let threaded_ends: Vec<Vec<f64>> = std::thread::scope(|s| {
            handles
                .into_iter()
                .map(|mut h| {
                    s.spawn(move || {
                        let ends = clone_driver(&h);
                        let wall = *ends.last().unwrap();
                        h.record_walls(wall, wall * 0.5);
                        h.finish();
                        ends
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let threaded_stats = threaded_fabric.tenant_stats();

        // Mirrored mode: one real tenant drives the whole group inline.
        let mirrored_fabric = Fabric::new(model);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut group = mirrored_fabric.tenant_clones(&name_refs);
        assert_eq!(group.mirrors(), n - 1);
        let mirrored_ends = clone_driver(&group);
        let wall = *mirrored_ends.last().unwrap();
        group.record_walls(wall, wall * 0.5);
        group.finish();
        let mirrored_stats = mirrored_fabric.tenant_stats();

        for ends in &threaded_ends {
            assert_eq!(ends, &mirrored_ends, "clone burst ends must match");
        }
        assert_eq!(threaded_stats, mirrored_stats);
        // The workload genuinely contends (stats are not trivial).
        assert!(mirrored_stats.iter().all(|s| s.contention_stall > 0.0));
        assert_eq!(mirrored_stats.len(), n);
    }

    #[test]
    fn clone_group_of_one_is_a_plain_tenant() {
        let model = StorageModel::ideal(2, 1e6);
        let fabric = Fabric::new(model);
        let solo = fabric.tenant_clones(&["only"]);
        assert_eq!(solo.mirrors(), 0);
        let ends = clone_driver(&solo);
        let legacy: Vec<f64> = {
            let f2 = Fabric::new(model);
            clone_driver(&f2.tenant("only"))
        };
        assert_eq!(ends, legacy);
    }

    #[test]
    fn clone_group_coexists_with_other_tenants() {
        // A clone pair plus an independent threaded tenant: the group's
        // mirror seat must not wedge the quorum, and results must match
        // the fully threaded 3-tenant run.
        let model = StorageModel::ideal(1, 1000.0);
        let run_threaded = || {
            let fabric = Fabric::new(model);
            let ha = fabric.tenant("a0");
            let hb = fabric.tenant("a1");
            let hc = fabric.tenant("b");
            std::thread::scope(|s| {
                let ta = s.spawn(move || ha.simulate_burst(&burst("x/f", 2, 500, 0.0)).t_end);
                let tb = s.spawn(move || hb.simulate_burst(&burst("x/f", 2, 500, 0.0)).t_end);
                let tc = s.spawn(move || hc.simulate_burst(&burst("y/f", 2, 500, 0.0)).t_end);
                (ta.join().unwrap(), tb.join().unwrap(), tc.join().unwrap())
            })
        };
        let run_mirrored = || {
            let fabric = Fabric::new(model);
            let group = fabric.tenant_clones(&["a0", "a1"]);
            let hc = fabric.tenant("b");
            std::thread::scope(|s| {
                let tg = s.spawn(move || group.simulate_burst(&burst("x/f", 2, 500, 0.0)).t_end);
                let tc = s.spawn(move || hc.simulate_burst(&burst("y/f", 2, 500, 0.0)).t_end);
                (tg.join().unwrap(), tc.join().unwrap())
            })
        };
        let (a0, a1, b) = run_threaded();
        let (ga, gb) = run_mirrored();
        assert_eq!(a0, a1);
        assert_eq!(ga, a0, "clone group must price like threaded clones");
        assert_eq!(gb, b);
    }

    #[test]
    fn stream_link_is_none_without_a_link() {
        let fabric = Fabric::new(StorageModel::ideal(1, 100.0));
        let t = fabric.tenant("solo");
        assert!(t.stream_link().is_none());
    }

    #[test]
    fn stream_link_fair_shares_across_declared_tenants() {
        let fabric =
            Fabric::new(StorageModel::ideal(1, 100.0)).with_link(NetworkModel::ideal(1000.0));
        fabric.set_stream_tenants(4);
        let t = fabric.tenant("streamer");
        let net = t.stream_link().expect("link attached");
        assert!((net.link_bandwidth - 250.0).abs() < 1e-9, "{net:?}");
        // A lone streamer that never declared a count gets the full link.
        fabric.set_stream_tenants(0);
        let solo = t.stream_link().expect("link attached");
        assert!((solo.link_bandwidth - 1000.0).abs() < 1e-9, "{solo:?}");
    }
}
