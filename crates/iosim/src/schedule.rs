//! Burst scheduling policies: how a run's dump bursts map onto simulated
//! wall-clock time.
//!
//! Synchronous backends (file-per-process, aggregated) block the
//! application for the whole drain: the clock jumps to the burst's end.
//! Overlapped backends (deferred/burst-buffer) hand staged data to a
//! drain that proceeds concurrently with the next compute phase; the
//! application only stalls when it reaches the next dump before the
//! previous drain finished (double buffering with one drain in flight).

use crate::storage::{ReadRequest, StorageModel, WriteRequest};
use crate::timeline::Burst;

/// Times a run's sequence of dump bursts under one policy.
pub struct BurstScheduler<'a> {
    model: &'a StorageModel,
    overlapped: bool,
    /// Completion time of the drain in flight (overlapped mode).
    drain_end: f64,
    /// Seconds the application spent waiting for a previous drain.
    stall_time: f64,
}

impl<'a> BurstScheduler<'a> {
    /// A scheduler over `model`; `overlapped` selects the deferred
    /// (compute/flush overlap) policy.
    pub fn new(model: &'a StorageModel, overlapped: bool) -> Self {
        Self {
            model,
            overlapped,
            drain_end: 0.0,
            stall_time: 0.0,
        }
    }

    /// Submits the burst of `step` at application time `clock`; request
    /// start times are overwritten by the policy. Returns the timed burst
    /// and the application clock after the submit returns.
    pub fn submit(
        &mut self,
        step: u32,
        clock: f64,
        requests: &mut [WriteRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        if requests.is_empty() {
            let burst = Burst {
                step,
                t_start: clock,
                t_end: clock,
                bytes,
            };
            return (burst, clock);
        }
        if !self.overlapped {
            for r in requests.iter_mut() {
                r.start = clock;
            }
            let result = self.model.simulate_burst(requests);
            let burst = Burst {
                step,
                t_start: clock,
                t_end: result.t_end,
                bytes,
            };
            (burst, result.t_end)
        } else {
            // Wait for the in-flight drain (double-buffer swap), then hand
            // off; the new drain overlaps whatever the app does next.
            let handoff = clock.max(self.drain_end);
            self.stall_time += handoff - clock;
            for r in requests.iter_mut() {
                r.start = handoff;
            }
            let result = self.model.simulate_burst(requests);
            self.drain_end = result.t_end;
            let burst = Burst {
                step,
                t_start: handoff,
                t_end: result.t_end,
                bytes,
            };
            (burst, handoff)
        }
    }

    /// Like [`BurstScheduler::submit`], charging `compute_seconds` of
    /// application CPU work (in-situ compression of the dump's payloads)
    /// before the burst is handed to storage. Compression happens on the
    /// compute nodes in both policies — synchronous backends compress
    /// then block for the drain; overlapped backends compress then stage
    /// — so the charge always lands on the application clock, while the
    /// drain itself times the (smaller) physical request bytes.
    pub fn submit_with_compute(
        &mut self,
        step: u32,
        clock: f64,
        compute_seconds: f64,
        requests: &mut [WriteRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        self.submit(step, clock + compute_seconds, requests, bytes)
    }

    /// Submits a read burst (restart / analysis phase) at application
    /// time `clock`. Reads are synchronous in *both* policies — the
    /// application blocks until its restart bytes arrive — and
    /// read-after-write consistency barriers any drain still in flight
    /// before the read starts. Returns the timed burst and the clock
    /// after the data is in memory.
    pub fn submit_read(
        &mut self,
        step: u32,
        clock: f64,
        requests: &mut [ReadRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        let start = clock.max(self.drain_end);
        self.stall_time += start - clock;
        if requests.is_empty() {
            let burst = Burst {
                step,
                t_start: start,
                t_end: start,
                bytes,
            };
            return (burst, start);
        }
        for r in requests.iter_mut() {
            r.start = start;
        }
        let result = self.model.simulate_read_burst(requests);
        let burst = Burst {
            step,
            t_start: start,
            t_end: result.t_end,
            bytes,
        };
        (burst, result.t_end)
    }

    /// Final wall-clock time: the application clock barriered against any
    /// drain still in flight (the run's closing flush).
    pub fn finish(&self, clock: f64) -> f64 {
        clock.max(self.drain_end)
    }

    /// Seconds the application stalled waiting on in-flight drains.
    pub fn stall_time(&self) -> f64 {
        self.stall_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: usize, bytes: u64) -> Vec<WriteRequest> {
        (0..n)
            .map(|i| WriteRequest {
                rank: i,
                path: format!("/f{i}"),
                bytes,
                start: 0.0,
            })
            .collect()
    }

    #[test]
    fn sync_policy_blocks_for_the_drain() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, false);
        let mut r = reqs(1, 1000);
        let (burst, clock) = s.submit(1, 5.0, &mut r, 1000);
        assert_eq!(burst.t_start, 5.0);
        assert!((burst.t_end - 15.0).abs() < 1e-9);
        assert_eq!(clock, burst.t_end);
        assert_eq!(s.finish(clock), clock);
    }

    #[test]
    fn overlapped_policy_returns_immediately() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        let mut r = reqs(1, 1000);
        let (burst, clock) = s.submit(1, 5.0, &mut r, 1000);
        // Handoff is instant; the drain runs 5.0 -> 15.0 in background.
        assert_eq!(clock, 5.0);
        assert!((burst.t_end - 15.0).abs() < 1e-9);
        // Final barrier waits for the drain.
        assert!((s.finish(clock) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn overlapped_policy_stalls_only_when_compute_is_short() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        // Burst 1 at t=0 drains until t=10.
        let (_, clock) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        assert_eq!(clock, 0.0);
        // Next dump at t=4 (compute shorter than drain): stall until 10.
        let (burst2, clock2) = s.submit(2, 4.0, &mut reqs(1, 1000), 1000);
        assert!((clock2 - 10.0).abs() < 1e-9);
        assert!((burst2.t_start - 10.0).abs() < 1e-9);
        assert!((s.stall_time() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_beats_sync_wall_clock_for_same_volume() {
        let model = StorageModel::ideal(2, 1e6);
        let compute = 2.0;
        let volume = 1_000_000u64; // 1 s of drain per dump at 1 MB/s/server
        let run = |overlapped: bool| {
            let mut s = BurstScheduler::new(&model, overlapped);
            let mut clock = 0.0;
            for step in 1..=5u32 {
                clock += compute;
                let mut r = reqs(4, volume / 4);
                let (_, c) = s.submit(step, clock, &mut r, volume);
                clock = c;
            }
            s.finish(clock)
        };
        let sync_wall = run(false);
        let overlap_wall = run(true);
        assert!(
            overlap_wall < sync_wall - 1.0,
            "overlap {overlap_wall} vs sync {sync_wall}"
        );
    }

    #[test]
    fn codec_compute_charge_delays_the_burst() {
        let model = StorageModel::ideal(1, 100.0);
        // Synchronous: the charge shifts the whole burst.
        let mut s = BurstScheduler::new(&model, false);
        let (burst, clock) = s.submit_with_compute(1, 5.0, 2.0, &mut reqs(1, 100), 100);
        assert_eq!(burst.t_start, 7.0);
        assert!((clock - 8.0).abs() < 1e-9);
        // Overlapped: the app pays the charge, the drain still overlaps.
        let mut s = BurstScheduler::new(&model, true);
        let (burst, clock) = s.submit_with_compute(1, 5.0, 2.0, &mut reqs(1, 100), 100);
        assert_eq!(clock, 7.0, "charge lands on the application clock");
        assert!((burst.t_end - 8.0).abs() < 1e-9);
    }

    fn read_reqs(n: usize, bytes: u64) -> Vec<ReadRequest> {
        (0..n)
            .map(|i| ReadRequest {
                rank: i,
                path: format!("/f{i}"),
                bytes,
                start: 0.0,
            })
            .collect()
    }

    #[test]
    fn restart_reads_block_in_both_policies() {
        let model = StorageModel::ideal(1, 100.0);
        for overlapped in [false, true] {
            let mut s = BurstScheduler::new(&model, overlapped);
            let (burst, clock) = s.submit_read(1, 5.0, &mut read_reqs(1, 1000), 1000);
            assert_eq!(burst.t_start, 5.0);
            assert!((burst.t_end - 15.0).abs() < 1e-9);
            assert_eq!(clock, burst.t_end, "reads never overlap (ov={overlapped})");
        }
    }

    #[test]
    fn restart_read_barriers_inflight_drain() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        // A write drain runs 0 -> 10 in the background.
        let (_, clock) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        assert_eq!(clock, 0.0);
        // The restart read at t=2 must wait for the drain, then read.
        let (burst, clock2) = s.submit_read(1, 2.0, &mut read_reqs(1, 500), 500);
        assert!((burst.t_start - 10.0).abs() < 1e-9, "read-after-write");
        assert!((clock2 - 15.0).abs() < 1e-9);
        assert!((s.stall_time() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_burst_is_free() {
        let model = StorageModel::ideal(1, 1.0);
        let mut s = BurstScheduler::new(&model, true);
        let (burst, clock) = s.submit(1, 3.0, &mut [], 0);
        assert_eq!(clock, 3.0);
        assert_eq!(burst.duration(), 0.0);
    }
}
