//! Burst scheduling policies: how a run's dump bursts map onto simulated
//! wall-clock time.
//!
//! Synchronous backends (file-per-process, aggregated) block the
//! application for the whole drain: the clock jumps to the burst's end.
//! Overlapped backends (deferred/burst-buffer) hand staged data to a
//! drain that proceeds concurrently with the next compute phase; the
//! application only stalls when it reaches the next dump before the
//! previous drain finished (double buffering with one drain in flight).
//!
//! A scheduler drains into either a private [`StorageModel`] (the legacy
//! solo path) or one tenant's [`FabricHandle`] on a shared
//! [`crate::Fabric`]. The fabric path additionally runs a *shadow* solo
//! replay — the identical burst sequence against a private copy of the
//! model — so [`BurstScheduler::seal`] can report an exact
//! solo-equivalent wall (not an estimate) for the tenant's slowdown
//! factor.

use crate::fabric::FabricHandle;
use crate::storage::{ReadRequest, StorageModel, WriteRequest};
use crate::timeline::Burst;

/// Where bursts drain to.
enum Sink<'a> {
    Model(&'a StorageModel),
    Fabric(FabricHandle),
}

/// Exact solo replay of a fabric tenant's burst sequence: the same
/// requests against a private model copy, advanced by the same compute
/// deltas (app time between scheduler calls is pure compute, so the
/// shared clock's increments between calls transfer verbatim).
struct Shadow {
    model: StorageModel,
    clock: f64,
    drain_end: f64,
    /// Shared-run clock when the scheduler last returned control.
    last_shared_clock: f64,
}

impl Shadow {
    /// Replays the inter-call compute delta onto the solo clock.
    fn advance(&mut self, shared_clock: f64) {
        self.clock += (shared_clock - self.last_shared_clock).max(0.0);
    }

    /// Mirror of the legacy solo write path (both policies).
    fn write(&mut self, overlapped: bool, requests: &[WriteRequest]) {
        if requests.is_empty() {
            return;
        }
        let mut solo = requests.to_vec();
        if !overlapped {
            for r in solo.iter_mut() {
                r.start = self.clock;
            }
            self.clock = self.model.simulate_burst(&solo).t_end;
        } else {
            let handoff = self.clock.max(self.drain_end);
            for r in solo.iter_mut() {
                r.start = handoff;
            }
            self.drain_end = self.model.simulate_burst(&solo).t_end;
            self.clock = handoff;
        }
    }

    /// Mirror of the legacy solo read path (reads block and barrier the
    /// in-flight drain in both policies).
    fn read(&mut self, requests: &[ReadRequest]) {
        let start = self.clock.max(self.drain_end);
        if requests.is_empty() {
            self.clock = start;
            return;
        }
        let mut solo = requests.to_vec();
        for r in solo.iter_mut() {
            r.start = start;
        }
        self.clock = self.model.simulate_read_burst(&solo).t_end;
    }

    /// Mirror of the legacy closing barrier.
    fn wall(&self) -> f64 {
        self.clock.max(self.drain_end)
    }
}

/// Times a run's sequence of dump bursts under one policy.
pub struct BurstScheduler<'a> {
    sink: Sink<'a>,
    overlapped: bool,
    /// Completion time of the drain in flight (overlapped mode).
    drain_end: f64,
    /// Seconds the application waited on drains before write handoffs
    /// (includes staging-pool back-pressure on the fabric path).
    write_stall: f64,
    /// Seconds reads waited barriering an in-flight drain.
    read_stall: f64,
    /// Fabric only: the share of `write_stall` spent waiting for shared
    /// staging-pool space rather than this run's own previous drain.
    staging_wait: f64,
    shadow: Option<Shadow>,
    /// Fabric only: a memoized solo wall ([`crate::SoloPricing::Known`])
    /// reported at seal in place of a shadow replay.
    known_solo: Option<f64>,
}

impl<'a> BurstScheduler<'a> {
    /// A scheduler over a private `model`; `overlapped` selects the
    /// deferred (compute/flush overlap) policy.
    pub fn new(model: &'a StorageModel, overlapped: bool) -> Self {
        Self {
            sink: Sink::Model(model),
            overlapped,
            drain_end: 0.0,
            write_stall: 0.0,
            read_stall: 0.0,
            staging_wait: 0.0,
            shadow: None,
            known_solo: None,
        }
    }

    /// A scheduler draining into one tenant's seat on a shared fabric.
    /// Bursts block until the shared engine resolves them against every
    /// overlapping tenant; a shadow solo replay tracks what the identical
    /// run would have cost alone (reported at [`BurstScheduler::seal`]).
    ///
    /// When the handle carries [`crate::SoloPricing::Known`] — a solo
    /// wall memoized from an earlier replay of the same canonical config
    /// ([`crate::SoloMemo`]) — the shadow is skipped and that wall is
    /// reported verbatim at seal.
    pub fn on_fabric(handle: FabricHandle, overlapped: bool) -> Self {
        let model = handle.model();
        let (shadow, known_solo) = match handle.solo_pricing() {
            crate::SoloPricing::Replay => (
                Some(Shadow {
                    model,
                    clock: 0.0,
                    drain_end: 0.0,
                    last_shared_clock: 0.0,
                }),
                None,
            ),
            crate::SoloPricing::Known(wall) => (None, Some(wall)),
        };
        Self {
            sink: Sink::Fabric(handle),
            overlapped,
            drain_end: 0.0,
            write_stall: 0.0,
            read_stall: 0.0,
            staging_wait: 0.0,
            shadow,
            known_solo,
        }
    }

    /// Submits the burst of `step` at application time `clock`; request
    /// start times are overwritten by the policy. Returns the timed burst
    /// and the application clock after the submit returns.
    pub fn submit(
        &mut self,
        step: u32,
        clock: f64,
        requests: &mut [WriteRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        if let Some(sh) = &mut self.shadow {
            sh.advance(clock);
            sh.write(self.overlapped, requests);
        }
        let (burst, clock_after) = if requests.is_empty() {
            let burst = Burst {
                step,
                t_start: clock,
                t_end: clock,
                bytes,
            };
            (burst, clock)
        } else if !self.overlapped {
            for r in requests.iter_mut() {
                r.start = clock;
            }
            let result = match &self.sink {
                Sink::Model(m) => m.simulate_burst(requests),
                Sink::Fabric(h) => h.simulate_burst(requests),
            };
            let burst = Burst {
                step,
                t_start: clock,
                t_end: result.t_end,
                bytes,
            };
            (burst, result.t_end)
        } else {
            // Wait for the in-flight drain (double-buffer swap), then hand
            // off; the new drain overlaps whatever the app does next. On
            // the fabric the handoff may slip further while the shared
            // staging pool is full.
            let base = clock.max(self.drain_end);
            let (handoff, result) = match &self.sink {
                Sink::Model(m) => {
                    for r in requests.iter_mut() {
                        r.start = base;
                    }
                    (base, m.simulate_burst(requests))
                }
                Sink::Fabric(h) => h.simulate_staged_burst(base, requests),
            };
            self.staging_wait += handoff - base;
            self.write_stall += handoff - clock;
            self.drain_end = result.t_end;
            let burst = Burst {
                step,
                t_start: handoff,
                t_end: result.t_end,
                bytes,
            };
            (burst, handoff)
        };
        if let Some(sh) = &mut self.shadow {
            sh.last_shared_clock = clock_after;
        }
        (burst, clock_after)
    }

    /// Like [`BurstScheduler::submit`], charging `compute_seconds` of
    /// application CPU work (in-situ compression of the dump's payloads)
    /// before the burst is handed to storage. Compression happens on the
    /// compute nodes in both policies — synchronous backends compress
    /// then block for the drain; overlapped backends compress then stage
    /// — so the charge always lands on the application clock, while the
    /// drain itself times the (smaller) physical request bytes.
    pub fn submit_with_compute(
        &mut self,
        step: u32,
        clock: f64,
        compute_seconds: f64,
        requests: &mut [WriteRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        self.submit(step, clock + compute_seconds, requests, bytes)
    }

    /// Submits a read burst (restart / analysis phase) at application
    /// time `clock`. Reads are synchronous in *both* policies — the
    /// application blocks until its restart bytes arrive — and
    /// read-after-write consistency barriers any drain still in flight
    /// before the read starts. Returns the timed burst and the clock
    /// after the data is in memory.
    pub fn submit_read(
        &mut self,
        step: u32,
        clock: f64,
        requests: &mut [ReadRequest],
        bytes: u64,
    ) -> (Burst, f64) {
        if let Some(sh) = &mut self.shadow {
            sh.advance(clock);
            sh.read(requests);
        }
        let start = clock.max(self.drain_end);
        self.read_stall += start - clock;
        let (burst, clock_after) = if requests.is_empty() {
            let burst = Burst {
                step,
                t_start: start,
                t_end: start,
                bytes,
            };
            (burst, start)
        } else {
            for r in requests.iter_mut() {
                r.start = start;
            }
            let result = match &self.sink {
                Sink::Model(m) => m.simulate_read_burst(requests),
                Sink::Fabric(h) => h.simulate_read_burst(requests),
            };
            let burst = Burst {
                step,
                t_start: start,
                t_end: result.t_end,
                bytes,
            };
            (burst, result.t_end)
        };
        if let Some(sh) = &mut self.shadow {
            sh.last_shared_clock = clock_after;
        }
        (burst, clock_after)
    }

    /// Final wall-clock time: the application clock barriered against any
    /// drain still in flight (the run's closing flush). Pure — safe to
    /// use as a mid-run barrier query.
    pub fn finish(&self, clock: f64) -> f64 {
        clock.max(self.drain_end)
    }

    /// Ends the run at application time `clock`: returns the final wall
    /// (as [`BurstScheduler::finish`]) and, on the fabric path, reports
    /// the shared wall plus the shadow's exact solo-equivalent wall to
    /// the tenant's [`crate::TenantStats`] and retires the tenant from
    /// the fabric's quorum.
    pub fn seal(&mut self, clock: f64) -> f64 {
        let wall = self.finish(clock);
        let solo = match &mut self.shadow {
            Some(sh) => {
                sh.advance(clock);
                sh.last_shared_clock = clock;
                sh.wall()
            }
            // Memoized shadow if one was handed over; the private-model
            // path has neither and a solo run's wall *is* its solo wall.
            None => self.known_solo.unwrap_or(wall),
        };
        if let Sink::Fabric(h) = &mut self.sink {
            h.record_walls(wall, solo);
            h.finish();
        }
        wall
    }

    /// Seconds the application stalled waiting on in-flight drains
    /// (writes and reads combined).
    pub fn stall_time(&self) -> f64 {
        self.write_stall + self.read_stall
    }

    /// Stall seconds paid at write handoffs (double-buffer waits, plus
    /// staging back-pressure on the fabric path).
    pub fn write_stall(&self) -> f64 {
        self.write_stall
    }

    /// Stall seconds paid by reads barriering an in-flight drain.
    pub fn read_stall(&self) -> f64 {
        self.read_stall
    }

    /// Seconds lost to shared staging-pool back-pressure (always zero on
    /// the private-model path, which has a dedicated stage).
    pub fn staging_wait(&self) -> f64 {
        self.staging_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: usize, bytes: u64) -> Vec<WriteRequest> {
        (0..n)
            .map(|i| WriteRequest {
                rank: i,
                path: format!("/f{i}"),
                bytes,
                start: 0.0,
            })
            .collect()
    }

    #[test]
    fn sync_policy_blocks_for_the_drain() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, false);
        let mut r = reqs(1, 1000);
        let (burst, clock) = s.submit(1, 5.0, &mut r, 1000);
        assert_eq!(burst.t_start, 5.0);
        assert!((burst.t_end - 15.0).abs() < 1e-9);
        assert_eq!(clock, burst.t_end);
        assert_eq!(s.finish(clock), clock);
    }

    #[test]
    fn overlapped_policy_returns_immediately() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        let mut r = reqs(1, 1000);
        let (burst, clock) = s.submit(1, 5.0, &mut r, 1000);
        // Handoff is instant; the drain runs 5.0 -> 15.0 in background.
        assert_eq!(clock, 5.0);
        assert!((burst.t_end - 15.0).abs() < 1e-9);
        // Final barrier waits for the drain.
        assert!((s.finish(clock) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn overlapped_policy_stalls_only_when_compute_is_short() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        // Burst 1 at t=0 drains until t=10.
        let (_, clock) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        assert_eq!(clock, 0.0);
        // Next dump at t=4 (compute shorter than drain): stall until 10.
        let (burst2, clock2) = s.submit(2, 4.0, &mut reqs(1, 1000), 1000);
        assert!((clock2 - 10.0).abs() < 1e-9);
        assert!((burst2.t_start - 10.0).abs() < 1e-9);
        assert!((s.stall_time() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_beats_sync_wall_clock_for_same_volume() {
        let model = StorageModel::ideal(2, 1e6);
        let compute = 2.0;
        let volume = 1_000_000u64; // 1 s of drain per dump at 1 MB/s/server
        let run = |overlapped: bool| {
            let mut s = BurstScheduler::new(&model, overlapped);
            let mut clock = 0.0;
            for step in 1..=5u32 {
                clock += compute;
                let mut r = reqs(4, volume / 4);
                let (_, c) = s.submit(step, clock, &mut r, volume);
                clock = c;
            }
            s.finish(clock)
        };
        let sync_wall = run(false);
        let overlap_wall = run(true);
        assert!(
            overlap_wall < sync_wall - 1.0,
            "overlap {overlap_wall} vs sync {sync_wall}"
        );
    }

    #[test]
    fn codec_compute_charge_delays_the_burst() {
        let model = StorageModel::ideal(1, 100.0);
        // Synchronous: the charge shifts the whole burst.
        let mut s = BurstScheduler::new(&model, false);
        let (burst, clock) = s.submit_with_compute(1, 5.0, 2.0, &mut reqs(1, 100), 100);
        assert_eq!(burst.t_start, 7.0);
        assert!((clock - 8.0).abs() < 1e-9);
        // Overlapped: the app pays the charge, the drain still overlaps.
        let mut s = BurstScheduler::new(&model, true);
        let (burst, clock) = s.submit_with_compute(1, 5.0, 2.0, &mut reqs(1, 100), 100);
        assert_eq!(clock, 7.0, "charge lands on the application clock");
        assert!((burst.t_end - 8.0).abs() < 1e-9);
    }

    fn read_reqs(n: usize, bytes: u64) -> Vec<ReadRequest> {
        (0..n)
            .map(|i| ReadRequest {
                rank: i,
                path: format!("/f{i}"),
                bytes,
                start: 0.0,
            })
            .collect()
    }

    #[test]
    fn restart_reads_block_in_both_policies() {
        let model = StorageModel::ideal(1, 100.0);
        for overlapped in [false, true] {
            let mut s = BurstScheduler::new(&model, overlapped);
            let (burst, clock) = s.submit_read(1, 5.0, &mut read_reqs(1, 1000), 1000);
            assert_eq!(burst.t_start, 5.0);
            assert!((burst.t_end - 15.0).abs() < 1e-9);
            assert_eq!(clock, burst.t_end, "reads never overlap (ov={overlapped})");
        }
    }

    #[test]
    fn restart_read_barriers_inflight_drain() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        // A write drain runs 0 -> 10 in the background.
        let (_, clock) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        assert_eq!(clock, 0.0);
        // The restart read at t=2 must wait for the drain, then read.
        let (burst, clock2) = s.submit_read(1, 2.0, &mut read_reqs(1, 500), 500);
        assert!((burst.t_start - 10.0).abs() < 1e-9, "read-after-write");
        assert!((clock2 - 15.0).abs() < 1e-9);
        assert!((s.stall_time() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_burst_is_free() {
        let model = StorageModel::ideal(1, 1.0);
        let mut s = BurstScheduler::new(&model, true);
        let (burst, clock) = s.submit(1, 3.0, &mut [], 0);
        assert_eq!(clock, 3.0);
        assert_eq!(burst.duration(), 0.0);
    }

    // ---- stall accounting regressions (audit: stalls are max-based so
    // they can never go negative, and read barriers attribute their wait
    // to the read plane, not the write that caused it) ----

    #[test]
    fn stall_time_never_negative_even_when_clock_outruns_drains() {
        let model = StorageModel::ideal(1, 1e6);
        let mut s = BurstScheduler::new(&model, true);
        // Long compute gaps: every handoff happens after the drain ended,
        // so each stall contribution is exactly 0, never negative.
        let mut clock = 0.0;
        for step in 1..=4u32 {
            clock += 50.0;
            let (_, c) = s.submit(step, clock, &mut reqs(2, 1000), 2000);
            clock = c;
        }
        let (_, c) = s.submit_read(5, clock + 50.0, &mut read_reqs(1, 1000), 1000);
        assert_eq!(s.stall_time(), 0.0);
        assert_eq!(s.write_stall(), 0.0);
        assert_eq!(s.read_stall(), 0.0);
        assert!(s.finish(c) >= c);
    }

    #[test]
    fn read_barrier_stall_lands_on_the_read_plane() {
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        // Drain 0 -> 10 in flight; a write at 4 stalls 6s (write plane),
        // then its drain runs 10 -> 20; a read at 12 stalls 8s (read
        // plane). The two planes must not bleed into each other.
        let (_, c1) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        assert_eq!(c1, 0.0);
        let (_, c2) = s.submit(2, 4.0, &mut reqs(1, 1000), 1000);
        assert!((c2 - 10.0).abs() < 1e-9);
        let (burst, _) = s.submit_read(3, 12.0, &mut read_reqs(1, 100), 100);
        assert!((burst.t_start - 20.0).abs() < 1e-9);
        assert!((s.write_stall() - 6.0).abs() < 1e-9);
        assert!((s.read_stall() - 8.0).abs() < 1e-9);
        assert!((s.stall_time() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn empty_read_still_pays_the_barrier() {
        // An empty read burst (nothing to fetch) still represents a
        // consistency point: it barriers the in-flight drain and the
        // wait is recorded as read stall.
        let model = StorageModel::ideal(1, 100.0);
        let mut s = BurstScheduler::new(&model, true);
        let (_, _) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
        let (burst, clock) = s.submit_read(2, 3.0, &mut [], 0);
        assert!((burst.t_start - 10.0).abs() < 1e-9);
        assert!((clock - 10.0).abs() < 1e-9);
        assert!((s.read_stall() - 7.0).abs() < 1e-9);
    }

    // ---- fabric-backed scheduling ----

    #[test]
    fn fabric_scheduler_matches_model_scheduler_solo() {
        let model = StorageModel {
            variability_sigma: 0.15,
            ..StorageModel::ideal(3, 1e5)
        };
        for overlapped in [false, true] {
            let mut legacy = BurstScheduler::new(&model, overlapped);
            let fabric = crate::Fabric::new(model);
            let mut shared = BurstScheduler::on_fabric(fabric.tenant("solo"), overlapped);
            let mut lc = 0.0;
            let mut sc = 0.0;
            for step in 1..=3u32 {
                lc += 2.5;
                sc += 2.5;
                let (bl, cl) = legacy.submit(step, lc, &mut reqs(5, 30_000), 150_000);
                let (bs, cs) = shared.submit(step, sc, &mut reqs(5, 30_000), 150_000);
                assert_eq!(bl, bs, "step {step} (ov={overlapped})");
                assert_eq!(cl, cs);
                lc = cl;
                sc = cs;
            }
            let (bl, cl) = legacy.submit_read(4, lc + 1.0, &mut read_reqs(3, 30_000), 90_000);
            let (bs, cs) = shared.submit_read(4, sc + 1.0, &mut read_reqs(3, 30_000), 90_000);
            assert_eq!(bl, bs);
            assert_eq!(cl, cs);
            assert_eq!(legacy.stall_time(), shared.stall_time());
            let wall = shared.seal(cs);
            assert_eq!(wall, legacy.finish(cl), "sealed wall == legacy wall");
            let stats = fabric.tenant_stats();
            assert_eq!(
                stats[0].shared_wall, stats[0].solo_wall,
                "solo slowdown is 1"
            );
            assert_eq!(stats[0].slowdown(), 1.0);
        }
    }

    #[test]
    fn fabric_shadow_reports_exact_solo_wall_under_contention() {
        // Two tenants on one server; each tenant's TenantStats.solo_wall
        // must equal a true legacy solo run of the same burst sequence.
        let model = StorageModel::ideal(1, 100.0);
        let solo_wall = {
            let mut s = BurstScheduler::new(&model, false);
            let (_, c) = s.submit(1, 1.0, &mut reqs(1, 900), 900);
            s.finish(c)
        };
        let fabric = crate::Fabric::new(model);
        let ha = fabric.tenant("a");
        let hb = fabric.tenant("b");
        std::thread::scope(|sc| {
            for h in [ha, hb] {
                sc.spawn(move || {
                    let mut s = BurstScheduler::on_fabric(h, false);
                    let (_, c) = s.submit(1, 1.0, &mut reqs(1, 900), 900);
                    s.seal(c);
                });
            }
        });
        for st in fabric.tenant_stats() {
            assert_eq!(st.solo_wall, solo_wall, "shadow replay is exact");
            // 900 B at a shared 100 B/s server: drain takes 18s not 9s.
            assert!((st.shared_wall - 19.0).abs() < 1e-9);
            assert!(
                st.slowdown() > 1.8 && st.slowdown() < 1.95,
                "{}",
                st.slowdown()
            );
        }
    }

    #[test]
    fn known_solo_pricing_matches_the_cold_shadow_bit_for_bit() {
        // Price a clone group cold (exact shadow replay), then re-price
        // the identical workload with the memoized wall handed over via
        // SoloPricing::Known: every reported stat must be bit-identical.
        let model = StorageModel {
            variability_sigma: 0.1,
            ..StorageModel::ideal(2, 1000.0)
        };
        let drive = |mut s: BurstScheduler| {
            let mut clock = 0.0;
            for step in 1..=3u32 {
                clock += 2.0;
                let (_, c) = s.submit(step, clock, &mut reqs(3, 700 + step as u64), 2100);
                clock = c;
            }
            s.seal(clock)
        };
        let cold = crate::Fabric::new(model);
        let group = cold.tenant_clones(&["m_t0", "m_t1", "m_t2"]);
        drive(BurstScheduler::on_fabric(group, false));
        let cold_stats = cold.tenant_stats();
        let memoized_wall = cold_stats[0].solo_wall;
        assert!(memoized_wall > 0.0);

        let warm = crate::Fabric::new(model);
        let mut group = warm.tenant_clones(&["m_t0", "m_t1", "m_t2"]);
        group.set_solo_pricing(crate::SoloPricing::Known(memoized_wall));
        drive(BurstScheduler::on_fabric(group, false));
        let warm_stats = warm.tenant_stats();
        assert_eq!(cold_stats, warm_stats, "memo hit must be bit-identical");
    }

    #[test]
    fn fabric_staging_backpressure_counts_as_staging_wait() {
        let model = StorageModel::ideal(1, 100.0);
        let fabric = crate::Fabric::new(model).with_staging(1000);
        let ha = fabric.tenant("a");
        let hb = fabric.tenant("b");
        let waits: Vec<(f64, f64)> = std::thread::scope(|sc| {
            [ha, hb]
                .into_iter()
                .map(|h| {
                    sc.spawn(move || {
                        let mut s = BurstScheduler::on_fabric(h, true);
                        let (_, c) = s.submit(1, 0.0, &mut reqs(1, 1000), 1000);
                        s.seal(c);
                        (s.staging_wait(), s.write_stall())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // One of the two handoffs waited 10s for pool space; the wait is
        // visible both as write stall and specifically as staging wait.
        let total_staging: f64 = waits.iter().map(|w| w.0).sum();
        assert!((total_staging - 10.0).abs() < 1e-9, "{waits:?}");
        for (staging, write) in waits {
            assert!(write >= staging);
        }
    }
}
