//! Byte accounting at the paper's (timestep, level, task) granularity.
//!
//! Every write the plotfile and MACSio writers perform is recorded here.
//! The model crate consumes these records to build the Eq. (1)/(2)
//! samples: `y = data_output(i)`, `i = (time step, level, task)`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one output record in the AMR hierarchy.
///
/// MACSio has no level concept; its records use `level = 0`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct IoKey {
    /// Simulation output step (the paper's `output counter`).
    pub step: u32,
    /// AMR refinement level.
    pub level: u32,
    /// MPI task (rank) id.
    pub task: u32,
}

/// Kind of bytes written.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum IoKind {
    /// Field data (Cell_D files, MACSio part payloads).
    Data,
    /// Headers and per-level metadata (Header, Cell_H, job_info, MACSio
    /// root files).
    Metadata,
}

/// Aggregated byte counts per `(key, kind)`.
///
/// Writes and reads are tracked in separate planes: `record` feeds the
/// Eq. (1)/(2) write samples, `record_read` the restart/analysis read
/// side. Both store *logical* bytes, so read totals are backend- and
/// codec-invariant like the write totals.
#[derive(Default, Debug)]
pub struct IoTracker {
    records: Mutex<BTreeMap<(IoKey, IoKind), Record>>,
    read_records: Mutex<BTreeMap<(IoKey, IoKind), Record>>,
}

#[derive(Default, Debug, Clone, Copy, Serialize, Deserialize)]
struct Record {
    bytes: u64,
    files: u64,
}

impl IoTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` written for `key`, counting one file.
    pub fn record(&self, key: IoKey, kind: IoKind, bytes: u64) {
        let mut map = self.records.lock();
        let r = map.entry((key, kind)).or_default();
        r.bytes += bytes;
        r.files += 1;
    }

    /// Total bytes across everything.
    pub fn total_bytes(&self) -> u64 {
        self.records.lock().values().map(|r| r.bytes).sum()
    }

    /// Total bytes of one kind.
    pub fn total_bytes_of(&self, kind: IoKind) -> u64 {
        self.records
            .lock()
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, r)| r.bytes)
            .sum()
    }

    /// Total number of files written.
    pub fn total_files(&self) -> u64 {
        self.records.lock().values().map(|r| r.files).sum()
    }

    /// Bytes per output step (data + metadata), ordered by step.
    pub fn bytes_per_step(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for ((key, _), r) in self.records.lock().iter() {
            *out.entry(key.step).or_insert(0) += r.bytes;
        }
        out
    }

    /// Cumulative bytes after each output step, ordered by step — the
    /// paper's Fig. 5 dependent variable.
    pub fn cumulative_per_step(&self) -> Vec<(u32, u64)> {
        let mut acc = 0u64;
        self.bytes_per_step()
            .into_iter()
            .map(|(s, b)| {
                acc += b;
                (s, acc)
            })
            .collect()
    }

    /// Bytes per AMR level, ordered by level — the Fig. 7 decomposition.
    pub fn bytes_per_level(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for ((key, _), r) in self.records.lock().iter() {
            *out.entry(key.level).or_insert(0) += r.bytes;
        }
        out
    }

    /// Cumulative bytes per level after each step: `(step, level) -> bytes
    /// so far` — the Fig. 7 series.
    pub fn cumulative_per_level_step(&self) -> BTreeMap<u32, Vec<(u32, u64)>> {
        // level -> Vec<(step, cumulative bytes)>
        let mut per_level_step: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
        for ((key, _), r) in self.records.lock().iter() {
            *per_level_step
                .entry(key.level)
                .or_default()
                .entry(key.step)
                .or_insert(0) += r.bytes;
        }
        per_level_step
            .into_iter()
            .map(|(level, steps)| {
                let mut acc = 0u64;
                let series = steps
                    .into_iter()
                    .map(|(s, b)| {
                        acc += b;
                        (s, acc)
                    })
                    .collect();
                (level, series)
            })
            .collect()
    }

    /// Bytes per task for one `(step, level)` — the Fig. 8 view. The result
    /// is indexed densely from task 0 to the largest task seen; tasks that
    /// wrote nothing hold 0 (AMReX writes no file for them).
    pub fn bytes_per_task(&self, step: u32, level: u32) -> Vec<u64> {
        let map = self.records.lock();
        let mut max_task = 0u32;
        let mut any = false;
        for ((key, _), _) in map.iter() {
            max_task = max_task.max(key.task);
            any = true;
        }
        if !any {
            return Vec::new();
        }
        let mut out = vec![0u64; max_task as usize + 1];
        for ((key, _), r) in map.iter() {
            if key.step == step && key.level == level {
                out[key.task as usize] += r.bytes;
            }
        }
        out
    }

    /// Like [`IoTracker::bytes_per_task`] but restricted to one kind —
    /// e.g. `Data` only, excluding rank 0's metadata attribution.
    pub fn bytes_per_task_of(&self, step: u32, level: u32, kind: IoKind) -> Vec<u64> {
        let map = self.records.lock();
        let mut max_task = 0u32;
        let mut any = false;
        for ((key, _), _) in map.iter() {
            max_task = max_task.max(key.task);
            any = true;
        }
        if !any {
            return Vec::new();
        }
        let mut out = vec![0u64; max_task as usize + 1];
        for ((key, k), r) in map.iter() {
            if key.step == step && key.level == level && *k == kind {
                out[key.task as usize] += r.bytes;
            }
        }
        out
    }

    /// Sorted list of steps with any output.
    pub fn steps(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.records.lock().keys().map(|(k, _)| k.step).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted list of levels with any output.
    pub fn levels(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.records.lock().keys().map(|(k, _)| k.level).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Flat export of all records as `(key, kind, bytes, files)` for
    /// serialization.
    pub fn export(&self) -> Vec<(IoKey, IoKind, u64, u64)> {
        self.records
            .lock()
            .iter()
            .map(|((k, kind), r)| (*k, *kind, r.bytes, r.files))
            .collect()
    }

    // ---------------------------------------------------------------- reads

    /// Records `bytes` read back for `key`, counting one chunk read.
    pub fn record_read(&self, key: IoKey, kind: IoKind, bytes: u64) {
        let mut map = self.read_records.lock();
        let r = map.entry((key, kind)).or_default();
        r.bytes += bytes;
        r.files += 1;
    }

    /// Total logical bytes read back across everything.
    pub fn total_read_bytes(&self) -> u64 {
        self.read_records.lock().values().map(|r| r.bytes).sum()
    }

    /// Total logical bytes read back of one kind.
    pub fn total_read_bytes_of(&self, kind: IoKind) -> u64 {
        self.read_records
            .lock()
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, r)| r.bytes)
            .sum()
    }

    /// Number of chunk reads recorded.
    pub fn total_read_records(&self) -> u64 {
        self.read_records.lock().values().map(|r| r.files).sum()
    }

    /// Logical bytes read back per output step, ordered by step.
    pub fn read_bytes_per_step(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for ((key, _), r) in self.read_records.lock().iter() {
            *out.entry(key.step).or_insert(0) += r.bytes;
        }
        out
    }

    /// Logical bytes read back per AMR level, ordered by level — the
    /// read-plane mirror of `bytes_per_level`. Selective by-level
    /// analysis reads land exactly one key here, which is what tests of
    /// the selection read plane pin.
    pub fn read_bytes_per_level(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for ((key, _), r) in self.read_records.lock().iter() {
            *out.entry(key.level).or_insert(0) += r.bytes;
        }
        out
    }

    /// Flat export of all read records as `(key, kind, bytes, reads)`.
    pub fn export_reads(&self) -> Vec<(IoKey, IoKind, u64, u64)> {
        self.read_records
            .lock()
            .iter()
            .map(|((k, kind), r)| (*k, *kind, r.bytes, r.files))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(step: u32, level: u32, task: u32) -> IoKey {
        IoKey { step, level, task }
    }

    #[test]
    fn totals_accumulate() {
        let t = IoTracker::new();
        t.record(key(0, 0, 0), IoKind::Data, 100);
        t.record(key(0, 0, 0), IoKind::Data, 50);
        t.record(key(0, 0, 0), IoKind::Metadata, 10);
        assert_eq!(t.total_bytes(), 160);
        assert_eq!(t.total_bytes_of(IoKind::Data), 150);
        assert_eq!(t.total_bytes_of(IoKind::Metadata), 10);
        assert_eq!(t.total_files(), 3);
    }

    #[test]
    fn per_step_and_cumulative() {
        let t = IoTracker::new();
        t.record(key(0, 0, 0), IoKind::Data, 10);
        t.record(key(2, 0, 0), IoKind::Data, 20);
        t.record(key(2, 1, 0), IoKind::Data, 5);
        let per = t.bytes_per_step();
        assert_eq!(per[&0], 10);
        assert_eq!(per[&2], 25);
        assert_eq!(t.cumulative_per_step(), vec![(0, 10), (2, 35)]);
    }

    #[test]
    fn per_level_decomposition() {
        let t = IoTracker::new();
        t.record(key(0, 0, 0), IoKind::Data, 10);
        t.record(key(0, 1, 0), IoKind::Data, 20);
        t.record(key(1, 1, 1), IoKind::Data, 30);
        let per = t.bytes_per_level();
        assert_eq!(per[&0], 10);
        assert_eq!(per[&1], 50);
        let series = t.cumulative_per_level_step();
        assert_eq!(series[&1], vec![(0, 20), (1, 50)]);
    }

    #[test]
    fn per_task_dense_with_gaps() {
        let t = IoTracker::new();
        t.record(key(3, 2, 0), IoKind::Data, 7);
        t.record(key(3, 2, 4), IoKind::Data, 9);
        t.record(key(3, 1, 2), IoKind::Data, 100); // other level
        let v = t.bytes_per_task(3, 2);
        assert_eq!(v, vec![7, 0, 0, 0, 9]);
        assert_eq!(t.bytes_per_task(9, 9), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn steps_levels_sorted_unique() {
        let t = IoTracker::new();
        t.record(key(5, 1, 0), IoKind::Data, 1);
        t.record(key(1, 0, 0), IoKind::Data, 1);
        t.record(key(5, 0, 0), IoKind::Data, 1);
        assert_eq!(t.steps(), vec![1, 5]);
        assert_eq!(t.levels(), vec![0, 1]);
    }

    #[test]
    fn empty_tracker_queries() {
        let t = IoTracker::new();
        assert_eq!(t.total_bytes(), 0);
        assert!(t.bytes_per_step().is_empty());
        assert!(t.cumulative_per_step().is_empty());
        assert!(t.bytes_per_task(0, 0).is_empty());
        assert_eq!(t.total_read_bytes(), 0);
        assert!(t.read_bytes_per_step().is_empty());
    }

    #[test]
    fn read_plane_is_separate_from_write_plane() {
        let t = IoTracker::new();
        t.record(key(1, 0, 0), IoKind::Data, 100);
        t.record_read(key(1, 0, 0), IoKind::Data, 40);
        t.record_read(key(2, 0, 1), IoKind::Metadata, 7);
        assert_eq!(t.total_bytes(), 100, "writes unaffected by reads");
        assert_eq!(t.total_read_bytes(), 47);
        assert_eq!(t.total_read_bytes_of(IoKind::Data), 40);
        assert_eq!(t.total_read_bytes_of(IoKind::Metadata), 7);
        assert_eq!(t.total_read_records(), 2);
        let per = t.read_bytes_per_step();
        assert_eq!(per[&1], 40);
        assert_eq!(per[&2], 7);
        assert_eq!(t.export_reads().len(), 2);
        assert_eq!(t.export().len(), 1);
    }

    #[test]
    fn read_bytes_group_by_level() {
        let t = IoTracker::new();
        t.record_read(key(1, 0, 0), IoKind::Data, 10);
        t.record_read(key(1, 1, 0), IoKind::Data, 20);
        t.record_read(key(1, 1, 3), IoKind::Data, 5);
        let per = t.read_bytes_per_level();
        assert_eq!(per[&0], 10);
        assert_eq!(per[&1], 25);
        assert_eq!(per.len(), 2);
        // A by-level selective read touches exactly one level key.
        let t2 = IoTracker::new();
        t2.record_read(key(1, 1, 0), IoKind::Data, 20);
        assert_eq!(
            t2.read_bytes_per_level()
                .keys()
                .copied()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }
}
