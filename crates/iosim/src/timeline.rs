//! Burst timelines: when I/O happened, not just how much.
//!
//! The paper describes AMR output as a "burst buffer traditional pattern":
//! compute for a while, then a synchronized write burst per plot step.
//! `BurstTimeline` records each burst so the dynamic characteristics —
//! duty cycle, peak and mean bandwidth, burstiness — can be reported
//! (`io_burstiness` example and the `ablations` bench).

use serde::{Deserialize, Serialize};

/// One recorded I/O burst (a plot-step write phase).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Output step that triggered the burst.
    pub step: u32,
    /// Simulated time the burst began.
    pub t_start: f64,
    /// Simulated time the last write completed.
    pub t_end: f64,
    /// Payload bytes written in the burst.
    pub bytes: u64,
}

impl Burst {
    /// Burst duration in seconds.
    pub fn duration(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }

    /// Achieved bandwidth during the burst (bytes/second).
    pub fn bandwidth(&self) -> f64 {
        let d = self.duration();
        if d > 0.0 {
            self.bytes as f64 / d
        } else {
            0.0
        }
    }
}

/// An append-only sequence of bursts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BurstTimeline {
    bursts: Vec<Burst>,
}

impl BurstTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a burst.
    ///
    /// # Panics
    /// Panics if the burst ends before it starts.
    pub fn push(&mut self, burst: Burst) {
        assert!(
            burst.t_end >= burst.t_start,
            "BurstTimeline: burst ends before it starts"
        );
        self.bursts.push(burst);
    }

    /// All bursts in insertion order.
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// Number of bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True when no bursts were recorded.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total bytes across all bursts.
    pub fn total_bytes(&self) -> u64 {
        self.bursts.iter().map(|b| b.bytes).sum()
    }

    /// Fraction of the covered wall time spent inside bursts (0 when the
    /// timeline is empty): the I/O duty cycle. Low duty cycle = "bursty".
    pub fn duty_cycle(&self) -> f64 {
        if self.bursts.is_empty() {
            return 0.0;
        }
        let span_start = self
            .bursts
            .iter()
            .map(|b| b.t_start)
            .fold(f64::INFINITY, f64::min);
        let span_end = self.bursts.iter().map(|b| b.t_end).fold(0.0, f64::max);
        let span = span_end - span_start;
        if span <= 0.0 {
            return 1.0;
        }
        let busy: f64 = self.bursts.iter().map(Burst::duration).sum();
        (busy / span).min(1.0)
    }

    /// Highest single-burst bandwidth.
    pub fn peak_bandwidth(&self) -> f64 {
        self.bursts.iter().map(Burst::bandwidth).fold(0.0, f64::max)
    }

    /// Mean bandwidth over the full covered span (bytes / total span).
    pub fn mean_bandwidth(&self) -> f64 {
        if self.bursts.is_empty() {
            return 0.0;
        }
        let span_start = self
            .bursts
            .iter()
            .map(|b| b.t_start)
            .fold(f64::INFINITY, f64::min);
        let span_end = self.bursts.iter().map(|b| b.t_end).fold(0.0, f64::max);
        let span = span_end - span_start;
        if span > 0.0 {
            self.total_bytes() as f64 / span
        } else {
            0.0
        }
    }

    /// Peak-to-mean bandwidth ratio; `>= 1`, larger = burstier.
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean_bandwidth();
        if mean > 0.0 {
            self.peak_bandwidth() / mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(step: u32, t0: f64, t1: f64, bytes: u64) -> Burst {
        Burst {
            step,
            t_start: t0,
            t_end: t1,
            bytes,
        }
    }

    #[test]
    fn burst_metrics() {
        let b = burst(0, 1.0, 3.0, 200);
        assert_eq!(b.duration(), 2.0);
        assert_eq!(b.bandwidth(), 100.0);
        assert_eq!(burst(0, 1.0, 1.0, 5).bandwidth(), 0.0);
    }

    #[test]
    fn duty_cycle_reflects_gaps() {
        let mut tl = BurstTimeline::new();
        tl.push(burst(0, 0.0, 1.0, 100)); // busy 1s
        tl.push(burst(1, 9.0, 10.0, 100)); // busy 1s, span 10s
        assert!((tl.duty_cycle() - 0.2).abs() < 1e-12);
        assert_eq!(tl.total_bytes(), 200);
    }

    #[test]
    fn burstiness_of_spiky_vs_steady() {
        let mut spiky = BurstTimeline::new();
        spiky.push(burst(0, 0.0, 0.1, 1000));
        spiky.push(burst(1, 10.0, 10.1, 1000));
        let mut steady = BurstTimeline::new();
        steady.push(burst(0, 0.0, 5.0, 1000));
        steady.push(burst(1, 5.0, 10.1, 1000));
        assert!(spiky.burstiness() > steady.burstiness());
        assert!(spiky.duty_cycle() < steady.duty_cycle());
    }

    #[test]
    fn empty_timeline_is_benign() {
        let tl = BurstTimeline::new();
        assert_eq!(tl.duty_cycle(), 0.0);
        assert_eq!(tl.peak_bandwidth(), 0.0);
        assert_eq!(tl.mean_bandwidth(), 0.0);
        assert!(tl.is_empty());
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_burst_panics() {
        BurstTimeline::new().push(burst(0, 2.0, 1.0, 1));
    }
}
