//! The part-size model: Eq. (3) of the paper.
//!
//! `part_size = f * 8 * Nx * Ny / nprocs` bytes, where the correction
//! factor `f` absorbs the plot-variable count, refined-level contribution,
//! and format differences. The paper finds `f ~ [23, 25]` for the Sedov
//! cases; [`fit_f`] recovers the factor empirically from measured
//! first-dump output.

use serde::{Deserialize, Serialize};

/// The paper's reported range for `f` (Sedov, `derive_plot_vars=ALL`).
pub const PAPER_F_RANGE: (f64, f64) = (23.0, 25.0);

/// Eq. (3): part size in bytes for correction factor `f`, an `nx` by `ny`
/// level-0 mesh, and `nprocs` tasks.
pub fn part_size(f: f64, nx: i64, ny: i64, nprocs: usize) -> u64 {
    assert!(f > 0.0, "part_size: non-positive f");
    assert!(nprocs > 0, "part_size: zero ranks");
    (f * 8.0 * nx as f64 * ny as f64 / nprocs as f64).round() as u64
}

/// Inverts Eq. (3): the correction factor implied by a measured per-rank
/// first-dump byte count.
pub fn fit_f(measured_rank_bytes: f64, nx: i64, ny: i64, nprocs: usize) -> f64 {
    assert!(nprocs > 0, "fit_f: zero ranks");
    measured_rank_bytes * nprocs as f64 / (8.0 * nx as f64 * ny as f64)
}

/// The paper's worked constant: `1550000 ~ 23.65 * 512^2 * 8 / 32` for
/// the case4 pivot (512^2 mesh, 32 tasks).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Case4Constant;

impl Case4Constant {
    /// The initial data size the paper fixes for case4.
    pub const INITIAL_DATA_SIZE: u64 = 1_550_000;

    /// The implied correction factor.
    pub fn implied_f() -> f64 {
        fit_f(Self::INITIAL_DATA_SIZE as f64, 512, 512, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_matches_paper_worked_example() {
        // part_size = 23.65 * 512^2 * 8 / 32 ~ 1550000 (paper Section IV.B).
        let ps = part_size(23.65, 512, 512, 32);
        let rel = (ps as f64 - 1_550_000.0).abs() / 1_550_000.0;
        assert!(rel < 0.01, "part_size {ps}");
    }

    #[test]
    fn implied_f_is_in_paper_range() {
        let f = Case4Constant::implied_f();
        assert!(
            (PAPER_F_RANGE.0..=PAPER_F_RANGE.1).contains(&f),
            "implied f = {f}"
        );
    }

    #[test]
    fn fit_inverts_model() {
        let f0 = 24.2;
        let ps = part_size(f0, 1024, 1024, 64) as f64;
        let f1 = fit_f(ps, 1024, 1024, 64);
        // part_size rounds to whole bytes, so the inversion is exact only
        // to that rounding.
        assert!((f0 - f1).abs() < 1e-5);
    }

    #[test]
    fn part_size_scales_inversely_with_ranks() {
        let a = part_size(24.0, 512, 512, 32);
        let b = part_size(24.0, 512, 512, 64);
        assert!((a as f64 / b as f64 - 2.0).abs() < 1e-6);
    }
}
