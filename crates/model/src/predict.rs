//! Predictive model of the calibration parameters — the paper's stated
//! follow-up ("predictive I/O sizes ... could potentially benefit from
//! machine-learning approaches as more data becomes available").
//!
//! A deliberately simple, fully deterministic learner: ordinary least
//! squares on the feature vector `(1, cfl, max_level, log2(n_cell))`
//! predicting the calibrated `dataset_growth` (and `f`) from completed
//! calibrations, so new AMR configurations get a proxy setup without
//! running the simulation first.

use serde::{Deserialize, Serialize};

/// One training observation: inputs and their calibrated parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// `castro.cfl`.
    pub cfl: f64,
    /// `amr.max_level`.
    pub max_level: usize,
    /// Level-0 cells per side.
    pub n_cell: i64,
    /// Calibrated growth factor.
    pub dataset_growth: f64,
    /// Calibrated Eq. (3) correction factor.
    pub f: f64,
}

/// Linear predictor over `(1, cfl, max_level, log2 n_cell)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrowthPredictor {
    /// Coefficients for `dataset_growth`.
    pub growth_coefs: [f64; 4],
    /// Coefficients for `f`.
    pub f_coefs: [f64; 4],
    /// Number of observations used.
    pub n_obs: usize,
}

fn features(cfl: f64, max_level: usize, n_cell: i64) -> [f64; 4] {
    [1.0, cfl, max_level as f64, (n_cell as f64).log2()]
}

/// Solves the 4x4 normal equations `X^T X beta = X^T y` by Gaussian
/// elimination with partial pivoting; a ridge term keeps degenerate
/// designs (e.g. constant features) solvable.
#[allow(clippy::needless_range_loop)] // textbook index form across row borrows
fn least_squares(xs: &[[f64; 4]], ys: &[f64]) -> [f64; 4] {
    let mut ata = [[0.0f64; 4]; 4];
    let mut aty = [0.0f64; 4];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..4 {
            for j in 0..4 {
                ata[i][j] += x[i] * x[j];
            }
            aty[i] += x[i] * y;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-9; // ridge
    }
    // Gaussian elimination.
    let mut m = [[0.0f64; 5]; 4];
    for i in 0..4 {
        m[i][..4].copy_from_slice(&ata[i]);
        m[i][4] = aty[i];
    }
    for col in 0..4 {
        let pivot = (col..4)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .expect("rows");
        m.swap(col, pivot);
        let d = m[col][col];
        assert!(d.abs() > 1e-30, "singular normal equations");
        for j in col..5 {
            m[col][j] /= d;
        }
        for row in 0..4 {
            if row != col {
                let factor = m[row][col];
                for j in col..5 {
                    m[row][j] -= factor * m[col][j];
                }
            }
        }
    }
    [m[0][4], m[1][4], m[2][4], m[3][4]]
}

impl GrowthPredictor {
    /// Fits the predictor to calibration observations.
    ///
    /// # Panics
    /// Panics with fewer than 4 observations (under-determined).
    pub fn fit(observations: &[Observation]) -> Self {
        assert!(
            observations.len() >= 4,
            "GrowthPredictor::fit: need at least 4 observations"
        );
        let xs: Vec<[f64; 4]> = observations
            .iter()
            .map(|o| features(o.cfl, o.max_level, o.n_cell))
            .collect();
        let g: Vec<f64> = observations.iter().map(|o| o.dataset_growth).collect();
        let f: Vec<f64> = observations.iter().map(|o| o.f).collect();
        Self {
            growth_coefs: least_squares(&xs, &g),
            f_coefs: least_squares(&xs, &f),
            n_obs: observations.len(),
        }
    }

    /// Predicted growth factor for a configuration (clamped to the
    /// paper's plausible band `[0.99, 1.10]`).
    pub fn predict_growth(&self, cfl: f64, max_level: usize, n_cell: i64) -> f64 {
        let x = features(cfl, max_level, n_cell);
        let raw: f64 = x.iter().zip(&self.growth_coefs).map(|(a, b)| a * b).sum();
        raw.clamp(0.99, 1.10)
    }

    /// Predicted Eq. (3) correction factor (clamped positive).
    pub fn predict_f(&self, cfl: f64, max_level: usize, n_cell: i64) -> f64 {
        let x = features(cfl, max_level, n_cell);
        let raw: f64 = x.iter().zip(&self.f_coefs).map(|(a, b)| a * b).sum();
        raw.max(1.0)
    }

    /// Mean absolute prediction error of growth over a held-out set.
    pub fn growth_mae(&self, observations: &[Observation]) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        observations
            .iter()
            .map(|o| (self.predict_growth(o.cfl, o.max_level, o.n_cell) - o.dataset_growth).abs())
            .sum::<f64>()
            / observations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic truth mirroring the paper's monotonicity: growth rises
    /// with CFL and level count.
    fn synth(cfl: f64, max_level: usize, n_cell: i64) -> Observation {
        Observation {
            cfl,
            max_level,
            n_cell,
            dataset_growth: 1.0 + 0.01 * cfl + 0.002 * max_level as f64,
            f: 20.0 + cfl + 0.5 * max_level as f64,
        }
    }

    fn grid() -> Vec<Observation> {
        let mut out = Vec::new();
        for &cfl in &[0.3, 0.4, 0.5, 0.6] {
            for &maxl in &[2usize, 3, 4] {
                for &n in &[256i64, 512] {
                    out.push(synth(cfl, maxl, n));
                }
            }
        }
        out
    }

    #[test]
    fn recovers_linear_truth_exactly() {
        let obs = grid();
        let p = GrowthPredictor::fit(&obs);
        for o in &obs {
            let g = p.predict_growth(o.cfl, o.max_level, o.n_cell);
            assert!((g - o.dataset_growth).abs() < 1e-6, "{g}");
            let f = p.predict_f(o.cfl, o.max_level, o.n_cell);
            assert!((f - o.f).abs() < 1e-4, "{f}");
        }
        assert!(p.growth_mae(&obs) < 1e-6);
    }

    #[test]
    fn interpolates_unseen_configurations() {
        let p = GrowthPredictor::fit(&grid());
        // cfl = 0.45, maxl = 3 was never observed exactly at n=384.
        let truth = synth(0.45, 3, 384);
        let g = p.predict_growth(0.45, 3, 384);
        assert!((g - truth.dataset_growth).abs() < 1e-4, "{g}");
    }

    #[test]
    fn predictions_keep_paper_monotonicity() {
        let p = GrowthPredictor::fit(&grid());
        let low = p.predict_growth(0.3, 2, 512);
        let hi_cfl = p.predict_growth(0.6, 2, 512);
        let hi_lvl = p.predict_growth(0.3, 4, 512);
        assert!(hi_cfl > low);
        assert!(hi_lvl > low);
    }

    #[test]
    fn clamps_extrapolation() {
        let p = GrowthPredictor::fit(&grid());
        assert!(p.predict_growth(10.0, 40, 512) <= 1.10);
        assert!(p.predict_growth(-10.0, 0, 2) >= 0.99);
        assert!(p.predict_f(-100.0, 0, 2) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_observations_panics() {
        GrowthPredictor::fit(&[synth(0.3, 2, 64)]);
    }
}
