//! Error metrics for model-vs-measurement comparison.

/// Root-mean-square error between two equal-length series.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    assert!(!a.is_empty(), "rmse: empty input");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Mean absolute percentage error (relative to `reference`), in percent.
/// Reference entries of zero are skipped.
pub fn mape(reference: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(reference.len(), predicted.len(), "mape: length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&r, &p) in reference.iter().zip(predicted) {
        if r != 0.0 {
            sum += ((p - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Relative error of the final entries: `(pred_last - ref_last)/ref_last`.
pub fn final_rel_err(reference: &[f64], predicted: &[f64]) -> f64 {
    match (reference.last(), predicted.last()) {
        (Some(&r), Some(&p)) if r != 0.0 => (p - r) / r,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_percentage() {
        let m = mape(&[100.0, 200.0], &[110.0, 180.0]);
        assert!((m - 10.0).abs() < 1e-12);
        // Zero references are skipped.
        assert_eq!(mape(&[0.0, 100.0], &[5.0, 100.0]), 0.0);
    }

    #[test]
    fn final_error_sign() {
        assert!((final_rel_err(&[10.0, 100.0], &[0.0, 110.0]) - 0.1).abs() < 1e-12);
        assert!(final_rel_err(&[10.0, 100.0], &[0.0, 90.0]) < 0.0);
        assert_eq!(final_rel_err(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
