//! Listing 1 of the paper: the functional mapping `g` from AMReX-Castro
//! inputs to a MACSio invocation.

use crate::partsize::part_size;
use macsio::{FileMode, Interface, MacsioConfig};
use serde::{Deserialize, Serialize};

/// The AMReX-Castro inputs of Table I (the model's domain).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AmrInputs {
    /// `amr.max_step`.
    pub max_step: u64,
    /// `amr.n_cell` (level-0 cells per direction).
    pub n_cell: (i64, i64),
    /// `amr.max_level`.
    pub max_level: usize,
    /// `amr.plot_int`.
    pub plot_int: u64,
    /// `castro.cfl`.
    pub cfl: f64,
    /// MPI tasks (`jsrun -n`).
    pub nprocs: usize,
}

/// Calibrated model parameters (the "runtime" quantities of Listing 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TranslationModel {
    /// Eq. (3) correction factor.
    pub f: f64,
    /// Per-dump growth multiplier.
    pub dataset_growth: f64,
    /// Simulated seconds between dumps (platform-dependent degree of
    /// freedom for dynamic studies).
    pub compute_time: f64,
    /// Extra metadata bytes per task per dump.
    pub meta_size: u64,
    /// In-situ compression ratio of the modeled run (logical / physical;
    /// 1.0 without compression). The proxy replicates the *physical* I/O
    /// workload, so Eq. (3)'s part size shrinks by this factor — the
    /// regression feature [`crate::regression::fit_bytes_with_ratio`]
    /// learns it from backend × codec sweep samples.
    pub compression_ratio: f64,
}

impl Default for TranslationModel {
    /// The paper's recommended starting point: `f` mid-range,
    /// `dataset_growth` just above 1, no compression.
    fn default() -> Self {
        Self {
            f: 24.0,
            dataset_growth: 1.01,
            compute_time: 0.0,
            meta_size: 0,
            compression_ratio: 1.0,
        }
    }
}

/// The paper's Appendix A guidance for an initial `dataset_growth` guess:
/// within `[1.0, 1.02]`, increasing with both CFL and the number of AMR
/// levels (interpolating the Fig. 10 calibrations).
pub fn default_growth_guess(cfl: f64, max_level: usize) -> f64 {
    let cfl_term = ((cfl - 0.3) / 0.3).clamp(0.0, 1.0);
    let level_term = ((max_level as f64 - 2.0) / 2.0).clamp(0.0, 1.0);
    1.0 + 0.02 * (0.5 * cfl_term + 0.5 * level_term)
}

/// Listing 1: builds the MACSio invocation equivalent to an AMReX run.
///
/// A calibrated `compression_ratio > 1` divides the Eq. (3) part size:
/// the proxy reproduces the physical (post-compression) byte stream the
/// storage system actually absorbs.
pub fn translate(inputs: &AmrInputs, model: &TranslationModel) -> MacsioConfig {
    assert!(
        model.compression_ratio >= 1.0,
        "translate: compression ratio must be >= 1"
    );
    let num_dumps = (inputs.max_step / inputs.plot_int.max(1)).max(1) as u32;
    let logical = part_size(model.f, inputs.n_cell.0, inputs.n_cell.1, inputs.nprocs);
    MacsioConfig {
        interface: Interface::Miftmpl,
        parallel_file_mode: FileMode::Mif(inputs.nprocs),
        num_dumps,
        part_size: ((logical as f64 / model.compression_ratio).round() as u64).max(1),
        avg_num_parts: 1.0,
        vars_per_part: 1,
        compute_time: model.compute_time,
        meta_size: model.meta_size,
        dataset_growth: model.dataset_growth,
        nprocs: inputs.nprocs,
        seed: 0x4D_41_43,
        io_backend: Default::default(),
        compression: Default::default(),
        mode: Default::default(),
        read_pattern: Default::default(),
        scenario: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case4() -> AmrInputs {
        AmrInputs {
            max_step: 200,
            n_cell: (512, 512),
            max_level: 4,
            plot_int: 1,
            cfl: 0.4,
            nprocs: 32,
        }
    }

    #[test]
    fn translation_matches_listing1_shape() {
        let cfg = translate(&case4(), &TranslationModel::default());
        assert_eq!(cfg.interface, Interface::Miftmpl);
        assert_eq!(cfg.parallel_file_mode, FileMode::Mif(32));
        assert_eq!(cfg.num_dumps, 200);
        assert_eq!(cfg.avg_num_parts, 1.0);
        assert_eq!(cfg.vars_per_part, 1);
        assert_eq!(cfg.nprocs, 32);
        // Eq. (3) with f = 24: 24*8*512^2/32.
        assert_eq!(cfg.part_size, 1_572_864);
    }

    #[test]
    fn num_dumps_is_steps_over_plot_int() {
        let mut inputs = case4();
        inputs.max_step = 500;
        inputs.plot_int = 20;
        let cfg = translate(&inputs, &TranslationModel::default());
        assert_eq!(cfg.num_dumps, 25);
    }

    #[test]
    fn growth_guess_monotone_in_cfl_and_levels() {
        let g_low = default_growth_guess(0.3, 2);
        let g_cfl = default_growth_guess(0.6, 2);
        let g_lvl = default_growth_guess(0.3, 4);
        let g_both = default_growth_guess(0.6, 4);
        assert_eq!(g_low, 1.0);
        assert!(g_cfl > g_low);
        assert!(g_lvl > g_low);
        assert!(g_both > g_cfl.max(g_lvl));
        // Stays inside the paper's stated [1.0, 1.02] band.
        assert!(g_both <= 1.02 + 1e-12);
    }

    #[test]
    fn translated_config_validates() {
        translate(&case4(), &TranslationModel::default()).validate();
    }

    #[test]
    fn compression_ratio_divides_part_size() {
        let base = translate(&case4(), &TranslationModel::default());
        let compressed = translate(
            &case4(),
            &TranslationModel {
                compression_ratio: 4.0,
                ..TranslationModel::default()
            },
        );
        assert_eq!(compressed.part_size, base.part_size.div_ceil(4));
        compressed.validate();
        // Everything else is untouched.
        assert_eq!(compressed.num_dumps, base.num_dumps);
        assert_eq!(compressed.nprocs, base.nprocs);
    }
}
