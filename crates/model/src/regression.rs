//! Ordinary least-squares linear regression.
//!
//! The paper applies linear regression to the cumulative `(x, y)` samples
//! to separate the near-linear runs (L0-dominated) from the non-linear
//! family driven by refinement (Figs. 5-7).

use serde::{Deserialize, Serialize};

/// A fitted line `y = intercept + slope * x` with its goodness of fit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Fits `y = a + b x` by least squares.
///
/// # Panics
/// Panics when fewer than 2 samples are given or all x are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    assert!(xs.len() >= 2, "linear_fit: need at least 2 samples");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "linear_fit: degenerate x values");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0 // constant y is fit perfectly by slope ~ 0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// A fitted hyperplane `y = intercept + sum(coeffs[j] * x[j])` with its
/// goodness of fit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiFit {
    /// One coefficient per feature.
    pub coeffs: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

impl MultiFit {
    /// Predicts `y` for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "MultiFit: feature mismatch");
        self.intercept + self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }
}

/// Fits `y = a + b . x` over multiple features by ordinary least squares
/// (normal equations, Gaussian elimination with partial pivoting — the
/// feature counts here are tiny). Used to learn compression ratio as a
/// regression feature alongside the Eq. (1) cumulative term.
///
/// # Panics
/// Panics when sample counts mismatch, there are fewer samples than
/// `nfeatures + 1`, or the design matrix is singular.
pub fn multi_linear_fit(rows: &[Vec<f64>], ys: &[f64]) -> MultiFit {
    assert_eq!(rows.len(), ys.len(), "multi_linear_fit: length mismatch");
    let n = rows.len();
    assert!(n >= 2, "multi_linear_fit: need at least 2 samples");
    let k = rows[0].len();
    assert!(k >= 1, "multi_linear_fit: need at least 1 feature");
    assert!(rows.iter().all(|r| r.len() == k), "ragged feature rows");
    assert!(n > k, "multi_linear_fit: need more samples than features");

    // Augmented design: column 0 is the intercept.
    let d = k + 1;
    let mut ata = vec![vec![0.0f64; d]; d];
    let mut aty = vec![0.0f64; d];
    for (row, &y) in rows.iter().zip(ys) {
        let mut aug = Vec::with_capacity(d);
        aug.push(1.0);
        aug.extend_from_slice(row);
        for i in 0..d {
            aty[i] += aug[i] * y;
            for j in 0..d {
                ata[i][j] += aug[i] * aug[j];
            }
        }
    }
    // Solve (A^T A) beta = A^T y.
    for col in 0..d {
        let pivot = (col..d)
            .max_by(|&a, &b| ata[a][col].abs().total_cmp(&ata[b][col].abs()))
            .expect("non-empty");
        assert!(
            ata[pivot][col].abs() > 1e-12,
            "multi_linear_fit: singular design matrix"
        );
        ata.swap(col, pivot);
        aty.swap(col, pivot);
        let pivot_row = ata[col].clone();
        for row in 0..d {
            if row == col {
                continue;
            }
            let factor = ata[row][col] / pivot_row[col];
            for (a, p) in ata[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *a -= factor * p;
            }
            aty[row] -= factor * aty[col];
        }
    }
    let beta: Vec<f64> = (0..d).map(|i| aty[i] / ata[i][i]).collect();

    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (row, &y) in rows.iter().zip(ys) {
        let pred = beta[0] + row.iter().zip(&beta[1..]).map(|(v, c)| v * c).sum::<f64>();
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r2 = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else {
        1.0
    };
    MultiFit {
        coeffs: beta[1..].to_vec(),
        intercept: beta[0],
        r2,
    }
}

/// Fits physical output bytes against the Eq. (1) cumulative term and the
/// inverse compression ratio: `physical = a + b * (x / ratio)` — the
/// compression-aware extension of the paper's linear family. Samples come
/// from backend × codec sweeps (`x` per Eq. (1), `ratio = logical /
/// physical` per run).
pub fn fit_bytes_with_ratio(xs: &[f64], ratios: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ratios.len(), "fit_bytes_with_ratio: mismatch");
    assert!(
        ratios.iter().all(|&r| r >= 1.0),
        "fit_bytes_with_ratio: ratios must be >= 1"
    );
    let scaled: Vec<f64> = xs.iter().zip(ratios).map(|(&x, &r)| x / r).collect();
    linear_fit(&scaled, ys)
}

/// Fits restart-read wall-clock against physical read volume:
/// `read_wall = a + b * physical_read_bytes` — the read plane's second
/// regression target next to the Eq. (1) write-bytes family. `1 / b` is
/// the effective restart bandwidth the proxy achieved, `a` the per-phase
/// fixed cost (index fetches, file opens). Samples come from restart
/// sweeps (`RunSummary::{physical_read_bytes, read_wall}`); non-finite
/// samples (idealized zero-latency models) are skipped rather than
/// ingested as fake zeros.
///
/// # Panics
/// Panics when fewer than 2 finite samples remain or all x are identical.
pub fn fit_read_time(physical_read_bytes: &[f64], read_walls: &[f64]) -> LinearFit {
    assert_eq!(
        physical_read_bytes.len(),
        read_walls.len(),
        "fit_read_time: length mismatch"
    );
    let (xs, ys): (Vec<f64>, Vec<f64>) = physical_read_bytes
        .iter()
        .zip(read_walls)
        .filter(|(&x, &y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    linear_fit(&xs, &ys)
}

/// Fits selective-analysis-read wall-clock against *touched* physical
/// bytes: `selective_read_wall = a + b * touched_physical_bytes` — the
/// analysis plane's regression target, fitted across read patterns and
/// layouts ({raw, reorganized} × {level, field, box} from
/// `analysis_sweep` summaries:
/// `RunSummary::{selective_physical_read_bytes, selective_read_wall}`).
/// `1 / b` is the effective selective-read bandwidth, `a` the per-query
/// fixed cost (index/directory fetches, file opens). A layout change
/// that helps shows up as the reorganized samples sitting below the raw
/// fit line at equal logical volume — which is how "how much does reorg
/// buy each read pattern" becomes a number.
///
/// Non-finite samples and zero-byte samples (empty selections, which
/// carry no bandwidth information) are skipped rather than ingested as
/// fake zeros.
///
/// # Panics
/// Panics when fewer than 2 usable samples remain or all x are
/// identical.
pub fn fit_selective_read(touched_physical_bytes: &[f64], selective_walls: &[f64]) -> LinearFit {
    assert_eq!(
        touched_physical_bytes.len(),
        selective_walls.len(),
        "fit_selective_read: length mismatch"
    );
    let (xs, ys): (Vec<f64>, Vec<f64>) = touched_physical_bytes
        .iter()
        .zip(selective_walls)
        .filter(|(&x, &y)| x.is_finite() && y.is_finite() && x > 0.0)
        .map(|(&x, &y)| (x, y))
        .unzip();
    linear_fit(&xs, &ys)
}

/// Fits streamed-transfer wall-clock against network bytes:
/// `net_wall = a + b * net_bytes` — the network plane's regression
/// target, fitted from `RunSummary::{net_bytes, net_wall}` across a
/// streaming sweep. `1 / b` is the effective link bandwidth actually
/// achieved (fair-shared across streamed tenants when a fabric link is
/// attached), `a` the accumulated per-transfer latency — the same
/// intercept/slope split `fit_read_time` gives the storage plane, but
/// priced on the interconnect instead of the servers. Storage-backend
/// rows (net_bytes == 0) carry no link information and are skipped, so
/// a mixed campaign can be fed in unfiltered.
///
/// # Panics
/// Panics when fewer than 2 usable samples remain or all x are
/// identical.
pub fn fit_stream_time(net_bytes: &[f64], net_walls: &[f64]) -> LinearFit {
    assert_eq!(
        net_bytes.len(),
        net_walls.len(),
        "fit_stream_time: length mismatch"
    );
    let (xs, ys): (Vec<f64>, Vec<f64>) = net_bytes
        .iter()
        .zip(net_walls)
        .filter(|(&x, &y)| x.is_finite() && y.is_finite() && x > 0.0)
        .map(|(&x, &y)| (x, y))
        .unzip();
    linear_fit(&xs, &ys)
}

/// Fits a power law `y = c * x^p` by regressing in log-log space.
/// Requires strictly positive data.
pub fn powerlaw_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "powerlaw_fit: data must be positive"
    );
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let fit = linear_fit(&lx, &ly);
    (fit.intercept.exp(), fit.slope, fit.r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_lowers_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 25.0 } else { -25.0 })
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r2 < 0.95);
        assert!((fit.slope - 2.0).abs() < 0.2);
    }

    #[test]
    fn constant_y_has_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn powerlaw_recovers_exponent() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x.powf(1.5)).collect();
        let (c, p, r2) = powerlaw_fit(&xs, &ys);
        assert!((c - 4.0).abs() < 1e-9);
        assert!((p - 1.5).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_fit_recovers_plane() {
        // y = 1 + 2a + 3b, exactly.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..6 {
            for b in 0..6 {
                rows.push(vec![a as f64, b as f64]);
                ys.push(1.0 + 2.0 * a as f64 + 3.0 * b as f64);
            }
        }
        let fit = multi_linear_fit(&rows, &ys);
        assert!((fit.intercept - 1.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.coeffs[0] - 2.0).abs() < 1e-9);
        assert!((fit.coeffs[1] - 3.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(&[2.0, 2.0]) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn multi_fit_matches_simple_fit_on_one_feature() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let simple = linear_fit(&xs, &ys);
        let multi = multi_linear_fit(&rows, &ys);
        assert!((multi.coeffs[0] - simple.slope).abs() < 1e-9);
        assert!((multi.intercept - simple.intercept).abs() < 1e-9);
    }

    #[test]
    fn ratio_feature_recovers_compression_law() {
        // physical = logical / ratio with logical = 400 * x: samples at
        // three ratios collapse onto one line in x / ratio.
        let mut xs = Vec::new();
        let mut ratios = Vec::new();
        let mut ys = Vec::new();
        for step in 1..=8 {
            for ratio in [1.0, 2.0, 7.5] {
                let x = step as f64 * 1024.0;
                xs.push(x);
                ratios.push(ratio);
                ys.push(400.0 * x / ratio);
            }
        }
        let fit = fit_bytes_with_ratio(&xs, &ratios, &ys);
        assert!((fit.slope - 400.0).abs() < 1e-6, "{fit:?}");
        assert!(fit.intercept.abs() < 1e-6);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn read_time_fit_recovers_bandwidth_and_open_cost() {
        // read_wall = 0.02 + bytes / 5e7, with two non-finite samples
        // (ideal-model artifacts) that must be skipped.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for mb in [1u64, 4, 16, 64, 256] {
            let bytes = (mb * 1_000_000) as f64;
            xs.push(bytes);
            ys.push(0.02 + bytes / 5e7);
        }
        xs.push(f64::INFINITY);
        ys.push(1.0);
        xs.push(1.0e6);
        ys.push(f64::NAN);
        let fit = fit_read_time(&xs, &ys);
        assert!((1.0 / fit.slope - 5e7).abs() / 5e7 < 1e-9, "{fit:?}");
        assert!((fit.intercept - 0.02).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selective_read_fit_recovers_bandwidth_and_skips_empty_queries() {
        // Samples across patterns and layouts: wall = open cost + bytes
        // at 2e7 B/s, with a zero-byte empty selection and a NaN thrown
        // in — both must be skipped, not ingested.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for bytes in [5e4, 2e5, 1e6, 4e6, 2e7] {
            xs.push(bytes);
            ys.push(0.005 + bytes / 2e7);
        }
        xs.push(0.0);
        ys.push(0.0); // empty selection: no bandwidth information
        xs.push(3e5);
        ys.push(f64::NAN);
        let fit = fit_selective_read(&xs, &ys);
        assert!((1.0 / fit.slope - 2e7).abs() / 2e7 < 1e-9, "{fit:?}");
        assert!((fit.intercept - 0.005).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stream_fit_recovers_link_bandwidth_from_a_mixed_campaign() {
        // Streamed rows pay a fixed per-transfer latency total plus
        // bytes over a 12.5 GB/s link; storage rows report net_bytes
        // == 0 and must be skipped rather than dragging the intercept.
        let link = 12.5e9;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for bytes in [1e7, 5e7, 2e8, 1e9, 8e9] {
            xs.push(bytes);
            ys.push(0.002 + bytes / link);
        }
        xs.push(0.0);
        ys.push(0.0); // a storage-backend row from the same campaign
        let fit = fit_stream_time(&xs, &ys);
        assert!((1.0 / fit.slope - link).abs() / link < 1e-9, "{fit:?}");
        assert!((fit.intercept - 0.002).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn multi_fit_rejects_degenerate_features() {
        // A feature identical to the intercept column.
        let rows = vec![vec![1.0], vec![1.0], vec![1.0]];
        multi_linear_fit(&rows, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_few_samples_panics() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn identical_x_panics() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
