//! Ordinary least-squares linear regression.
//!
//! The paper applies linear regression to the cumulative `(x, y)` samples
//! to separate the near-linear runs (L0-dominated) from the non-linear
//! family driven by refinement (Figs. 5-7).

use serde::{Deserialize, Serialize};

/// A fitted line `y = intercept + slope * x` with its goodness of fit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Fits `y = a + b x` by least squares.
///
/// # Panics
/// Panics when fewer than 2 samples are given or all x are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    assert!(xs.len() >= 2, "linear_fit: need at least 2 samples");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "linear_fit: degenerate x values");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0 // constant y is fit perfectly by slope ~ 0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Fits a power law `y = c * x^p` by regressing in log-log space.
/// Requires strictly positive data.
pub fn powerlaw_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "powerlaw_fit: data must be positive"
    );
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let fit = linear_fit(&lx, &ly);
    (fit.intercept.exp(), fit.slope, fit.r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_lowers_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 25.0 } else { -25.0 })
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!(fit.r2 < 0.95);
        assert!((fit.slope - 2.0).abs() < 0.2);
    }

    #[test]
    fn constant_y_has_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn powerlaw_recovers_exponent() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x.powf(1.5)).collect();
        let (c, p, r2) = powerlaw_fit(&xs, &ys);
        assert!((c - 4.0).abs() < 1e-9);
        assert!((p - 1.5).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn too_few_samples_panics() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn identical_x_panics() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
