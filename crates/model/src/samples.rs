//! Sample extraction: the paper's Eqs. (1) and (2).
//!
//! The independent variable is cumulative: `x = output_counter * ncells`
//! where `ncells = Nx * Ny` at level 0 and the output counter runs from 1
//! to the number of plot dumps. The dependent variable `y` is bytes at
//! the `(time step, level, task)` granularity of the tracker.

use iosim::IoTracker;
use serde::{Deserialize, Serialize};

/// One `(x, y)` sample of the cumulative model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Cumulative independent variable (Eq. 1).
    pub x: f64,
    /// Output bytes (Eq. 2), cumulative across steps.
    pub y: f64,
}

/// A labelled series of samples (one run of the campaign).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XySeries {
    /// Run label, e.g. `case4_cfl0.4_maxl4`.
    pub label: String,
    /// Samples ordered by output counter.
    pub points: Vec<Sample>,
}

impl XySeries {
    /// Builds the Eq. (1)/(2) cumulative series from a tracker: the k-th
    /// output event contributes `x = k * ncells_l0` and `y = ` total bytes
    /// of the first k events.
    pub fn from_tracker(label: impl Into<String>, tracker: &IoTracker, ncells_l0: i64) -> Self {
        let mut points = Vec::new();
        for (counter, (_step, cum_bytes)) in tracker.cumulative_per_step().iter().enumerate() {
            points.push(Sample {
                x: (counter as f64 + 1.0) * ncells_l0 as f64,
                y: *cum_bytes as f64,
            });
        }
        Self {
            label: label.into(),
            points,
        }
    }

    /// Per-step (non-cumulative) byte series, ordered by output counter.
    pub fn per_step_from_tracker(
        label: impl Into<String>,
        tracker: &IoTracker,
    ) -> (String, Vec<(u32, u64)>) {
        let series: Vec<(u32, u64)> = tracker.bytes_per_step().into_iter().collect();
        (label.into(), series)
    }

    /// Builds a series from raw `(x, y)` pairs — the bridge from the
    /// results-store query plane (`amrproxy::store::Query::xy`) and any
    /// other tabular source into the regression plane.
    pub fn from_pairs(label: impl Into<String>, pairs: &[(f64, f64)]) -> Self {
        Self {
            label: label.into(),
            points: pairs.iter().map(|&(x, y)| Sample { x, y }).collect(),
        }
    }

    /// Least-squares line over this series (`linear_fit`); requires at
    /// least two points.
    pub fn fit(&self) -> crate::LinearFit {
        crate::linear_fit(&self.xs(), &self.ys())
    }

    /// x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }

    /// y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// Final cumulative output size.
    pub fn final_bytes(&self) -> f64 {
        self.points.last().map(|p| p.y).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim::{IoKey, IoKind};

    fn tracker_with(steps: &[(u32, u64)]) -> IoTracker {
        let t = IoTracker::new();
        for &(step, bytes) in steps {
            t.record(
                IoKey {
                    step,
                    level: 0,
                    task: 0,
                },
                IoKind::Data,
                bytes,
            );
        }
        t
    }

    #[test]
    fn x_is_counter_times_ncells() {
        let t = tracker_with(&[(1, 100), (20, 150), (40, 200)]);
        let s = XySeries::from_tracker("run", &t, 1024);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.points[0].x, 1024.0);
        assert_eq!(s.points[1].x, 2048.0); // counter, not step number
        assert_eq!(s.points[2].x, 3072.0);
    }

    #[test]
    fn y_is_cumulative() {
        let t = tracker_with(&[(1, 100), (2, 150), (3, 200)]);
        let s = XySeries::from_tracker("run", &t, 4);
        assert_eq!(s.ys(), vec![100.0, 250.0, 450.0]);
        assert_eq!(s.final_bytes(), 450.0);
    }

    #[test]
    fn empty_tracker_gives_empty_series() {
        let t = IoTracker::new();
        let s = XySeries::from_tracker("run", &t, 4);
        assert!(s.points.is_empty());
        assert_eq!(s.final_bytes(), 0.0);
    }

    #[test]
    fn from_pairs_round_trips_and_fits() {
        let s = XySeries::from_pairs("store", &[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
        assert_eq!(s.label, "store");
        assert_eq!(s.xs(), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.ys(), vec![2.0, 4.0, 6.0]);
        let fit = s.fit();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!(fit.intercept.abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_step_series_is_not_cumulative() {
        let t = tracker_with(&[(1, 100), (2, 150)]);
        let (_, series) = XySeries::per_step_from_tracker("run", &t);
        assert_eq!(series, vec![(1, 100), (2, 150)]);
    }
}
