//! Calibration of the MACSio kernel against measured AMR output.
//!
//! Reproduces the paper's Fig. 9 procedure: fix the initial data size
//! from Eq. (3), then minimize the per-step output-size error over the
//! single `dataset_growth` parameter. A golden-section search plays the
//! role of the paper's manual convergence runs; every evaluation is
//! recorded so the convergence curves can be plotted. A two-parameter
//! variant alternates the `f` fit and the growth search (the "variational
//! problem with two parameters" of Section IV.B).

use crate::metrics::rmse;
use macsio::{dump::predicted_dump_bytes, MacsioConfig};
use serde::{Deserialize, Serialize};

/// One evaluation of the calibration objective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Candidate growth factor.
    pub dataset_growth: f64,
    /// RMSE of per-step bytes against the target.
    pub rmse: f64,
    /// The predicted per-step byte series for this candidate (one Fig. 9
    /// curve).
    pub predicted: Vec<u64>,
}

/// Result of a calibration run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Best growth factor found.
    pub dataset_growth: f64,
    /// Final Eq. (3) correction factor.
    pub f: f64,
    /// RMSE at the optimum.
    pub rmse: f64,
    /// All evaluations, in order (the convergence trace).
    pub trace: Vec<Evaluation>,
}

/// Predicted per-step byte series of a MACSio configuration.
pub fn predicted_series(cfg: &MacsioConfig) -> Vec<u64> {
    (0..cfg.num_dumps)
        .map(|k| predicted_dump_bytes(cfg, k))
        .collect()
}

fn objective(cfg: &MacsioConfig, growth: f64, target: &[f64]) -> (f64, Vec<u64>) {
    let mut cand = cfg.clone();
    cand.dataset_growth = growth;
    cand.num_dumps = target.len() as u32;
    let series = predicted_series(&cand);
    let pred: Vec<f64> = series.iter().map(|&b| b as f64).collect();
    (rmse(target, &pred), series)
}

/// Golden-section search for the growth factor minimizing per-step RMSE
/// against `target_per_step` (bytes per dump of the AMR run), within
/// `[lo, hi]`, evaluating at most `max_evals` candidates.
pub fn calibrate_growth(
    base: &MacsioConfig,
    target_per_step: &[f64],
    lo: f64,
    hi: f64,
    max_evals: usize,
) -> Calibration {
    assert!(lo > 0.0 && hi > lo, "calibrate_growth: bad bracket");
    assert!(
        target_per_step.len() >= 2,
        "calibrate_growth: need at least 2 steps"
    );
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut trace = Vec::new();
    let eval = |g: f64, trace: &mut Vec<Evaluation>| -> f64 {
        let (e, series) = objective(base, g, target_per_step);
        trace.push(Evaluation {
            dataset_growth: g,
            rmse: e,
            predicted: series,
        });
        e
    };
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = eval(c, &mut trace);
    let mut fd = eval(d, &mut trace);
    while trace.len() < max_evals && (b - a) > 1e-7 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = eval(c, &mut trace);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = eval(d, &mut trace);
        }
    }
    let best = trace
        .iter()
        .min_by(|x, y| x.rmse.total_cmp(&y.rmse))
        .expect("at least two evaluations")
        .clone();
    Calibration {
        dataset_growth: best.dataset_growth,
        f: f64::NAN, // single-parameter search leaves f untouched
        rmse: best.rmse,
        trace,
    }
}

/// Two-parameter calibration: alternate (1) scaling `part_size` so the
/// first predicted dump matches the first measured dump (the Eq. (3) `f`
/// fit), and (2) the golden-section growth search. Converges in a couple
/// of rounds because the parameters are nearly separable (f sets the
/// level, growth sets the shape).
pub fn calibrate_two_parameter(
    base: &MacsioConfig,
    target_per_step: &[f64],
    n_cell: (i64, i64),
    rounds: usize,
) -> Calibration {
    assert!(rounds >= 1, "calibrate_two_parameter: zero rounds");
    let mut cfg = base.clone();
    let mut trace = Vec::new();
    let mut best_growth = cfg.dataset_growth;
    let mut best_rmse = f64::INFINITY;
    for _ in 0..rounds {
        // (1) Fit part_size so dump 0 matches the target's first step.
        let mut probe = cfg.clone();
        probe.dataset_growth = best_growth;
        probe.num_dumps = 1;
        let predicted0 = predicted_dump_bytes(&probe, 0) as f64;
        let scale = target_per_step[0] / predicted0;
        cfg.part_size = ((cfg.part_size as f64) * scale).round().max(8.0) as u64;
        // (2) Growth search around the current optimum.
        let cal = calibrate_growth(&cfg, target_per_step, 0.995, 1.08, 24);
        best_growth = cal.dataset_growth;
        best_rmse = cal.rmse;
        trace.extend(cal.trace);
    }
    let f = crate::partsize::fit_f(cfg.part_size as f64, n_cell.0, n_cell.1, cfg.nprocs);
    Calibration {
        dataset_growth: best_growth,
        f,
        rmse: best_rmse,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macsio::{FileMode, Interface};

    fn base(nprocs: usize, part_size: u64) -> MacsioConfig {
        MacsioConfig {
            interface: Interface::Miftmpl,
            parallel_file_mode: FileMode::Mif(nprocs),
            num_dumps: 12,
            part_size,
            avg_num_parts: 1.0,
            vars_per_part: 1,
            compute_time: 0.0,
            meta_size: 0,
            dataset_growth: 1.0,
            nprocs,
            seed: 1,
            io_backend: Default::default(),
            compression: Default::default(),
            mode: Default::default(),
            read_pattern: Default::default(),
            scenario: None,
        }
    }

    /// A synthetic target produced by MACSio itself must be recovered.
    #[test]
    fn recovers_known_growth() {
        let truth = {
            let mut cfg = base(8, 100_000);
            cfg.dataset_growth = 1.0131;
            cfg
        };
        let target: Vec<f64> = predicted_series(&truth).iter().map(|&b| b as f64).collect();
        let cal = calibrate_growth(&base(8, 100_000), &target, 0.995, 1.08, 40);
        assert!(
            (cal.dataset_growth - 1.0131).abs() < 5e-4,
            "found {}",
            cal.dataset_growth
        );
        // The optimum fits the series almost exactly.
        assert!(cal.rmse < 0.01 * target[0]);
    }

    #[test]
    fn trace_converges_toward_target() {
        let truth = {
            let mut cfg = base(4, 50_000);
            cfg.dataset_growth = 1.02;
            cfg
        };
        let target: Vec<f64> = predicted_series(&truth).iter().map(|&b| b as f64).collect();
        let cal = calibrate_growth(&base(4, 50_000), &target, 0.995, 1.08, 30);
        // Last evaluations beat the first ones (Fig. 9 behaviour).
        let first = cal.trace.first().unwrap().rmse;
        assert!(cal.rmse <= first);
        assert!(cal.trace.len() >= 4);
    }

    #[test]
    fn two_parameter_fits_level_and_shape() {
        let truth = {
            let mut cfg = base(8, 123_456);
            cfg.dataset_growth = 1.015;
            cfg
        };
        let target: Vec<f64> = predicted_series(&truth).iter().map(|&b| b as f64).collect();
        // Start far away in part_size.
        let start = base(8, 400_000);
        let cal = calibrate_two_parameter(&start, &target, (512, 512), 3);
        assert!(
            (cal.dataset_growth - 1.015).abs() < 2e-3,
            "growth {}",
            cal.dataset_growth
        );
        assert!(cal.rmse < 0.05 * target[0], "rmse {}", cal.rmse);
        assert!(cal.f.is_finite() && cal.f > 0.0);
    }

    #[test]
    #[should_panic(expected = "bad bracket")]
    fn inverted_bracket_panics() {
        calibrate_growth(&base(1, 1000), &[1.0, 2.0], 1.1, 1.0, 10);
    }
}
