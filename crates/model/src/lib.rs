//! The paper's analytical model: from AMReX-Castro inputs to a calibrated
//! MACSio proxy invocation.
//!
//! * [`samples`] — Eqs. (1)/(2): cumulative `(x, y)` extraction from
//!   tracked I/O records.
//! * [`regression`] — the linear (and power-law) fits separating the
//!   L0-dominated linear family from refinement-driven non-linearity,
//!   plus a multi-feature OLS fit that learns compression ratio as a
//!   regression feature from backend × codec sweeps.
//! * [`partsize`] — Eq. (3): `part_size = f * 8 * Nx * Ny / nprocs`.
//! * [`mod@translate`] — Listing 1: the functional mapping `g` producing a
//!   MACSio command line from Table I inputs.
//! * [`calibrate`] — the Fig. 9 procedure: golden-section search over
//!   `dataset_growth` (and alternation with the `f` fit) minimizing
//!   per-step output-size RMSE.
//! * [`metrics`] — RMSE / MAPE / final-step error used throughout.

pub mod calibrate;
pub mod metrics;
pub mod partsize;
pub mod predict;
pub mod regression;
pub mod samples;
pub mod translate;

pub use calibrate::{
    calibrate_growth, calibrate_two_parameter, predicted_series, Calibration, Evaluation,
};
pub use metrics::{final_rel_err, mape, rmse};
pub use partsize::{fit_f, part_size, Case4Constant, PAPER_F_RANGE};
pub use predict::{GrowthPredictor, Observation};
pub use regression::{
    fit_bytes_with_ratio, fit_read_time, linear_fit, multi_linear_fit, powerlaw_fit, LinearFit,
    MultiFit,
};
pub use samples::{Sample, XySeries};
pub use translate::{default_growth_guess, translate, AmrInputs, TranslationModel};
