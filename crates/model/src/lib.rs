//! The paper's analytical model: from AMReX-Castro inputs to a calibrated
//! MACSio proxy invocation.
//!
//! * [`samples`] — Eqs. (1)/(2): cumulative `(x, y)` extraction from
//!   tracked I/O records.
//! * [`regression`] — the linear (and power-law) fits separating the
//!   L0-dominated linear family from refinement-driven non-linearity,
//!   plus a multi-feature OLS fit that learns compression ratio as a
//!   regression feature from backend × codec sweeps.
//! * [`partsize`] — Eq. (3): `part_size = f * 8 * Nx * Ny / nprocs`.
//! * [`mod@translate`] — Listing 1: the functional mapping `g` producing a
//!   MACSio command line from Table I inputs.
//! * [`calibrate`] — the Fig. 9 procedure: golden-section search over
//!   `dataset_growth` (and alternation with the `f` fit) minimizing
//!   per-step output-size RMSE.
//! * [`metrics`] — RMSE / MAPE / final-step error used throughout.
//!
//! The read plane has two regression targets of its own:
//! [`fit_read_time`] (restart wall vs physical read volume) and
//! [`fit_selective_read`] (selective analysis-read wall vs *touched*
//! physical bytes, across read patterns and raw/reorganized layouts).
//! The network plane adds a third: [`fit_stream_time`] (streamed
//! transfer wall vs network bytes — `1/slope` recovers the effective
//! link bandwidth, the intercept the accumulated transfer latency).
//!
//! **Layer position:** analysis layer — consumes tracker samples and
//! campaign summaries produced by `core`, emits calibrated `macsio`
//! configurations; no I/O of its own. Key types: [`XySeries`],
//! [`LinearFit`], [`Calibration`], [`TranslationModel`],
//! [`GrowthPredictor`].
//!
//! ```
//! use model::{fit_selective_read, linear_fit, part_size};
//!
//! // Eq. (3): part size for a 512^2 mesh over 32 ranks at f = 22.
//! assert_eq!(part_size(22.0, 512, 512, 32), 22 * 8 * 512 * 512 / 32);
//!
//! // The linear family: an exact line is recovered exactly.
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! let ys = [10.0, 20.0, 30.0, 40.0];
//! assert!((linear_fit(&xs, &ys).slope - 10.0).abs() < 1e-12);
//!
//! // Selective-read samples: wall = 1 ms fixed cost + bytes at 1 GB/s.
//! let bytes = [1e6, 4e6, 16e6];
//! let walls: Vec<f64> = bytes.iter().map(|b| 1e-3 + b / 1e9).collect();
//! let fit = fit_selective_read(&bytes, &walls);
//! assert!((1.0 / fit.slope - 1e9).abs() / 1e9 < 1e-9);
//! ```

pub mod calibrate;
pub mod metrics;
pub mod partsize;
pub mod predict;
pub mod regression;
pub mod samples;
pub mod translate;

pub use calibrate::{
    calibrate_growth, calibrate_two_parameter, predicted_series, Calibration, Evaluation,
};
pub use metrics::{final_rel_err, mape, rmse};
pub use partsize::{fit_f, part_size, Case4Constant, PAPER_F_RANGE};
pub use predict::{GrowthPredictor, Observation};
pub use regression::{
    fit_bytes_with_ratio, fit_read_time, fit_selective_read, fit_stream_time, linear_fit,
    multi_linear_fit, powerlaw_fit, LinearFit, MultiFit,
};
pub use samples::{Sample, XySeries};
pub use translate::{default_growth_guess, translate, AmrInputs, TranslationModel};
