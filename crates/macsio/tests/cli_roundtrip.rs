//! Property test: any valid MACSio configuration survives the
//! `command_line()` -> `parse_args()` round trip.

use io_engine::{ReadSelection, Scenario};
use macsio::{parse_args, FileMode, Interface, MacsioConfig, RunMode};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MacsioConfig> {
    (
        (
            prop_oneof![Just(Interface::Miftmpl), Just(Interface::Json)],
            1usize..64, // nprocs
            prop_oneof![(1usize..64).prop_map(FileMode::Mif), Just(FileMode::Sif)],
            1u32..50,         // num_dumps
            1u64..10_000_000, // part_size
            1u32..4,          // avg parts (whole, to survive text round trip)
            1usize..5,        // vars
            0u64..10_000,     // meta
            0.99f64..1.05,    // growth (printed in full precision)
        ),
        prop_oneof![
            Just(RunMode::Write),
            Just(RunMode::Restart),
            Just(RunMode::WriteRead)
        ],
        prop_oneof![
            Just(ReadSelection::Full),
            (0u32..3).prop_map(ReadSelection::Level),
            Just(ReadSelection::Field("root".to_string())),
            (0u32..4).prop_map(|t| ReadSelection::parse(&format!("box:0,{t}-{}", t + 2)).unwrap()),
        ],
        prop_oneof![
            Just(None),
            Just(Some(Scenario::write_only())),
            Just(Some(Scenario::write_restart())),
            (1u64..4).prop_map(|k| Some(Scenario::fail_restart(k))),
            (1u64..4).prop_map(|m| Some(Scenario::in_run_analysis(
                m,
                ReadSelection::Field("root".to_string())
            ))),
            Just(Some(Scenario::parse("write;readall").unwrap())),
        ],
    )
        .prop_map(
            |(
                (interface, nprocs, mode, dumps, part, avg, vars, meta, growth),
                run_mode,
                read_pattern,
                scenario,
            )| {
                MacsioConfig {
                    interface,
                    parallel_file_mode: mode,
                    num_dumps: dumps,
                    part_size: part,
                    avg_num_parts: avg as f64,
                    vars_per_part: vars,
                    compute_time: 0.25,
                    meta_size: meta,
                    dataset_growth: growth,
                    nprocs,
                    seed: MacsioConfig::default().seed,
                    io_backend: MacsioConfig::default().io_backend,
                    compression: MacsioConfig::default().compression,
                    mode: run_mode,
                    read_pattern,
                    scenario,
                }
            },
        )
}

proptest! {
    #[test]
    fn command_line_round_trips(cfg in arb_config()) {
        let line = cfg.command_line();
        // Strip the "jsrun -n N macsio" prefix into --nprocs form.
        let tokens: Vec<&str> = line.split_whitespace().collect();
        prop_assert_eq!(tokens[0], "jsrun");
        prop_assert_eq!(tokens[1], "-n");
        let mut args = vec!["--nprocs".to_string(), tokens[2].to_string()];
        args.extend(tokens[4..].iter().map(|s| s.to_string()));
        let parsed = parse_args(args.iter().map(String::as_str)).expect("round trip parses");

        prop_assert_eq!(parsed.interface, cfg.interface);
        prop_assert_eq!(parsed.num_dumps, cfg.num_dumps);
        prop_assert_eq!(parsed.part_size, cfg.part_size);
        prop_assert_eq!(parsed.vars_per_part, cfg.vars_per_part);
        prop_assert_eq!(parsed.meta_size, cfg.meta_size);
        prop_assert_eq!(parsed.nprocs, cfg.nprocs);
        prop_assert!((parsed.avg_num_parts - cfg.avg_num_parts).abs() < 1e-12);
        prop_assert!((parsed.dataset_growth - cfg.dataset_growth).abs() < 1e-12);
        prop_assert_eq!(parsed.mode, cfg.mode);
        prop_assert_eq!(parsed.read_pattern, cfg.read_pattern);
        prop_assert_eq!(parsed.scenario, cfg.scenario);
        // MIF counts are clamped to nprocs when printed.
        match (parsed.parallel_file_mode, cfg.parallel_file_mode) {
            (FileMode::Sif, FileMode::Sif) => {}
            (FileMode::Mif(a), FileMode::Mif(b)) => {
                prop_assert_eq!(a, b.min(cfg.nprocs));
            }
            other => prop_assert!(false, "mode mismatch {other:?}"),
        }
    }

    /// Parsed configurations always validate and produce the same byte
    /// predictions as the original.
    #[test]
    fn round_tripped_config_predicts_same_bytes(cfg in arb_config()) {
        let line = cfg.command_line();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let mut args = vec!["--nprocs".to_string(), tokens[2].to_string()];
        args.extend(tokens[4..].iter().map(|s| s.to_string()));
        let parsed = parse_args(args.iter().map(String::as_str)).unwrap();
        for dump in [0u32, 1, 2] {
            prop_assert_eq!(
                macsio::dump::predicted_dump_bytes(&parsed, dump),
                macsio::dump::predicted_dump_bytes(&MacsioConfig {
                    parallel_file_mode: parsed.parallel_file_mode,
                    ..cfg.clone()
                }, dump)
            );
        }
    }
}
