//! Backend-equivalence properties: the three I/O backends must agree on
//! the workload's byte accounting at the paper's `(step, level, task)`
//! granularity, while the aggregated backend strictly reduces the file
//! count and the deferred backend strictly reduces timed wall-clock.

use io_engine::BackendSpec;
use iosim::{IoTracker, MemFs, StorageModel, Vfs};
use macsio::{FileMode, MacsioConfig};
use proptest::prelude::*;

fn run_with(cfg: &MacsioConfig, backend: BackendSpec) -> (MemFs, IoTracker, macsio::MacsioReport) {
    let cfg = MacsioConfig {
        io_backend: backend,
        ..cfg.clone()
    };
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let report = macsio::run(&cfg, &fs, &tracker, None).expect("macsio run");
    (fs, tracker, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tracker's export — every `(step, level, task, kind)` record —
    /// is byte-identical across the three backends for the same workload.
    #[test]
    fn tracker_totals_are_backend_invariant(
        nprocs in 1usize..10,
        dumps in 1u32..5,
        part_size in 1_000u64..60_000,
        vars in 1usize..3,
        ratio in 1usize..6,
        workers in 1usize..3,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size,
            vars_per_part: vars,
            parallel_file_mode: FileMode::Mif(nprocs),
            ..Default::default()
        };
        let (_, t_fpp, _) = run_with(&cfg, BackendSpec::FilePerProcess);
        let (_, t_agg, _) = run_with(&cfg, BackendSpec::Aggregated(ratio));
        let (_, t_def, _) = run_with(&cfg, BackendSpec::Deferred(workers));

        let fpp = t_fpp.export();
        prop_assert!(!fpp.is_empty());
        prop_assert_eq!(&fpp, &t_agg.export(),
            "aggregated tracker must match file-per-process");
        prop_assert_eq!(&fpp, &t_def.export(),
            "deferred tracker must match file-per-process");
    }

    /// Physical bytes on the filesystem: deferred equals file-per-process
    /// exactly (same layout, different timing); aggregated adds only its
    /// index-table overhead on top of the same payload bytes.
    #[test]
    fn physical_bytes_differ_only_by_declared_overhead(
        nprocs in 1usize..8,
        dumps in 1u32..4,
        part_size in 1_000u64..40_000,
        ratio in 1usize..5,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size,
            parallel_file_mode: FileMode::Mif(nprocs),
            ..Default::default()
        };
        let (fs_fpp, _, r_fpp) = run_with(&cfg, BackendSpec::FilePerProcess);
        let (fs_def, _, r_def) = run_with(&cfg, BackendSpec::Deferred(1));
        let (fs_agg, t_agg, r_agg) = run_with(&cfg, BackendSpec::Aggregated(ratio));

        prop_assert_eq!(fs_fpp.total_bytes(), fs_def.total_bytes());
        prop_assert_eq!(r_fpp.total_bytes, r_def.total_bytes);
        // Aggregated payload = tracker bytes; physical = payload + index.
        let payload = t_agg.total_bytes();
        prop_assert_eq!(payload, fs_fpp.total_bytes());
        prop_assert!(fs_agg.total_bytes() >= payload);
        prop_assert_eq!(r_agg.total_bytes, fs_agg.total_bytes());
    }

    /// Aggregation strictly reduces the file count whenever the ratio
    /// exceeds one (and never increases it otherwise).
    #[test]
    fn aggregation_reduces_file_count(
        nprocs in 2usize..12,
        ratio in 2usize..6,
        dumps in 1u32..4,
    ) {
        let cfg = MacsioConfig {
            nprocs,
            num_dumps: dumps,
            part_size: 4_000,
            parallel_file_mode: FileMode::Mif(nprocs),
            ..Default::default()
        };
        let (_, _, r_fpp) = run_with(&cfg, BackendSpec::FilePerProcess);
        let (_, _, r_agg) = run_with(&cfg, BackendSpec::Aggregated(ratio));
        // fpp: nprocs data files + 1 root per dump.
        prop_assert_eq!(r_fpp.files_written, (nprocs as u64 + 1) * dumps as u64);
        // agg: ceil(nprocs/ratio) aggregators + 1 index per dump.
        let aggs = nprocs.div_ceil(ratio) as u64;
        prop_assert_eq!(r_agg.files_written, (aggs + 1) * dumps as u64);
        prop_assert!(r_agg.files_written < r_fpp.files_written);
    }
}

/// Unit check of the acceptance criterion: one step of an aggregated run
/// creates exactly `aggregators + 1` files.
#[test]
fn files_equal_aggregators_plus_one_per_step() {
    let cfg = MacsioConfig {
        nprocs: 16,
        num_dumps: 1,
        part_size: 2_000,
        parallel_file_mode: FileMode::Mif(16),
        io_backend: BackendSpec::Aggregated(4),
        ..Default::default()
    };
    let fs = MemFs::new();
    let tracker = IoTracker::new();
    let report = macsio::run(&cfg, &fs, &tracker, None).unwrap();
    assert_eq!(report.files_written, 4 + 1, "4 aggregators + 1 index");
    assert_eq!(fs.nfiles(), 5);
    let files = fs.list("/");
    assert!(files.iter().any(|f| f.ends_with("md.idx")), "{files:?}");
}

/// The deferred backend's overlapped drains finish the same byte volume
/// in less simulated wall-clock than the synchronous N-to-N path.
#[test]
fn deferred_overlap_beats_fpp_wall_clock() {
    let cfg = MacsioConfig {
        nprocs: 8,
        num_dumps: 6,
        part_size: 500_000,
        compute_time: 2.0,
        parallel_file_mode: FileMode::Mif(8),
        ..Default::default()
    };
    let storage = StorageModel::ideal(2, 1e6);
    let run = |backend| {
        let cfg = MacsioConfig {
            io_backend: backend,
            ..cfg.clone()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        let report = macsio::run(&cfg, &fs, &tracker, Some(&storage)).unwrap();
        (report.wall_time, tracker.total_bytes())
    };
    let (fpp_wall, fpp_bytes) = run(BackendSpec::FilePerProcess);
    let (def_wall, def_bytes) = run(BackendSpec::Deferred(1));
    assert_eq!(fpp_bytes, def_bytes, "same byte volume");
    assert!(
        def_wall < fpp_wall,
        "deferred {def_wall:.2}s must beat fpp {fpp_wall:.2}s"
    );
    // With compute phases longer than drains, nearly all I/O hides behind
    // compute: deferred wall approaches pure compute + one trailing drain.
    let compute_total = 6.0 * 2.0;
    assert!(def_wall < fpp_wall - 0.5 && def_wall >= compute_total);
}

/// Aggregation pays fewer metadata round trips: with per-file creation
/// latency dominating small writes, the aggregated burst is faster.
#[test]
fn aggregation_speeds_up_metadata_bound_bursts() {
    let cfg = MacsioConfig {
        nprocs: 64,
        num_dumps: 2,
        part_size: 1_000,
        parallel_file_mode: FileMode::Mif(64),
        ..Default::default()
    };
    let mut storage = StorageModel::ideal(4, 1e9);
    storage.metadata_latency = 0.05;
    let run = |backend| {
        let cfg = MacsioConfig {
            io_backend: backend,
            ..cfg.clone()
        };
        let fs = MemFs::with_retention(0);
        let tracker = IoTracker::new();
        macsio::run(&cfg, &fs, &tracker, Some(&storage))
            .unwrap()
            .wall_time
    };
    let fpp = run(BackendSpec::FilePerProcess);
    let agg = run(BackendSpec::Aggregated(16));
    assert!(agg < fpp, "agg {agg:.3}s must beat fpp {fpp:.3}s");
}
