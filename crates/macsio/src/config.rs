//! MACSio run configuration: the command-line surface of Table II.

use serde::{Deserialize, Serialize};

/// Output interface (MACSio `--interface`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interface {
    /// The `miftmpl` template interface: JSON object header with the bulk
    /// variable data appended as raw little-endian doubles (size-faithful
    /// to the nominal request size; see DESIGN.md on the substitution for
    /// json-cwx).
    Miftmpl,
    /// Pure-text JSON: every value formatted as text. Inflates bytes per
    /// value; used by the format-expansion ablation.
    Json,
}

impl Interface {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "miftmpl" | "json_binary" => Ok(Self::Miftmpl),
            "json" | "json_text" => Ok(Self::Json),
            other => Err(format!(
                "unknown interface '{other}' (expected miftmpl or json)"
            )),
        }
    }

    /// CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Miftmpl => "miftmpl",
            Self::Json => "json",
        }
    }
}

/// Parallel file mode (MACSio `--parallel_file_mode`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileMode {
    /// Multiple Independent Files over `n` file groups; ranks in a group
    /// take turns (baton passing) appending to the group's file. With
    /// `n == nprocs` this is the paper's N-to-N pattern.
    Mif(usize),
    /// Single shared file per dump.
    Sif,
}

impl FileMode {
    /// Number of files per dump for a world of `nprocs` ranks.
    pub fn files_per_dump(&self, nprocs: usize) -> usize {
        match self {
            FileMode::Mif(n) => (*n).min(nprocs).max(1),
            FileMode::Sif => 1,
        }
    }
}

/// Full MACSio configuration (Table II plus the execution context).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacsioConfig {
    /// Output interface (`--interface`).
    pub interface: Interface,
    /// File mode (`--parallel_file_mode MIF n | SIF`).
    pub parallel_file_mode: FileMode,
    /// Number of dumps to marshal (`--num_dumps`).
    pub num_dumps: u32,
    /// Nominal bytes of one variable on one mesh part (`--part_size`).
    pub part_size: u64,
    /// Average mesh parts per task (`--avg_num_parts`); fractional values
    /// give some ranks one extra part.
    pub avg_num_parts: f64,
    /// Variables per part (`--vars_per_part`).
    pub vars_per_part: usize,
    /// Simulated compute seconds between dumps (`--compute_time`).
    pub compute_time: f64,
    /// Additional metadata bytes per task per dump (`--meta_size`).
    pub meta_size: u64,
    /// Per-dump growth multiplier on the part size (`--dataset_growth`).
    pub dataset_growth: f64,
    /// MPI world size (`jsrun -n nprocs`).
    pub nprocs: usize,
    /// RNG seed for synthetic field data.
    pub seed: u64,
}

impl Default for MacsioConfig {
    fn default() -> Self {
        Self {
            interface: Interface::Miftmpl,
            parallel_file_mode: FileMode::Mif(usize::MAX), // clamped to nprocs
            num_dumps: 10,
            part_size: 80_000,
            avg_num_parts: 1.0,
            vars_per_part: 1,
            compute_time: 0.0,
            meta_size: 0,
            dataset_growth: 1.0,
            nprocs: 1,
            seed: 0x4D_41_43, // "MAC"
        }
    }
}

impl MacsioConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive sizes, growth, or process count.
    pub fn validate(&self) {
        assert!(self.nprocs > 0, "MacsioConfig: nprocs must be positive");
        assert!(self.part_size > 0, "MacsioConfig: part_size must be positive");
        assert!(
            self.avg_num_parts > 0.0,
            "MacsioConfig: avg_num_parts must be positive"
        );
        assert!(
            self.vars_per_part > 0,
            "MacsioConfig: vars_per_part must be positive"
        );
        assert!(
            self.dataset_growth > 0.0,
            "MacsioConfig: dataset_growth must be positive"
        );
        assert!(
            self.compute_time >= 0.0,
            "MacsioConfig: compute_time must be non-negative"
        );
    }

    /// Parts assigned to `rank`: `floor(avg)` everywhere plus one extra on
    /// the first `round((avg - floor(avg)) * nprocs)` ranks.
    pub fn parts_of_rank(&self, rank: usize) -> usize {
        let base = self.avg_num_parts.floor() as usize;
        let extra_ranks =
            ((self.avg_num_parts - base as f64) * self.nprocs as f64).round() as usize;
        base + usize::from(rank < extra_ranks)
    }

    /// Total parts across the world.
    pub fn total_parts(&self) -> usize {
        (0..self.nprocs).map(|r| self.parts_of_rank(r)).sum()
    }

    /// Nominal bytes of one variable at dump `k` (0-based) after growth.
    pub fn grown_part_size(&self, dump: u32) -> u64 {
        (self.part_size as f64 * self.dataset_growth.powi(dump as i32)).round() as u64
    }

    /// The equivalent `macsio` command line (for reports and job scripts).
    pub fn command_line(&self) -> String {
        let mode = match self.parallel_file_mode {
            FileMode::Mif(n) => format!("MIF {}", n.min(self.nprocs)),
            FileMode::Sif => "SIF".to_string(),
        };
        format!(
            "jsrun -n {} macsio --interface {} --parallel_file_mode {} --num_dumps {} \
             --part_size {} --avg_num_parts {} --vars_per_part {} --compute_time {} \
             --meta_size {} --dataset_growth {}",
            self.nprocs,
            self.interface.name(),
            mode,
            self.num_dumps,
            self.part_size,
            self.avg_num_parts,
            self.vars_per_part,
            self.compute_time,
            self.meta_size,
            self.dataset_growth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_parsing() {
        assert_eq!(Interface::parse("miftmpl").unwrap(), Interface::Miftmpl);
        assert_eq!(Interface::parse("json").unwrap(), Interface::Json);
        assert!(Interface::parse("silo").is_err());
    }

    #[test]
    fn file_mode_counts() {
        assert_eq!(FileMode::Mif(4).files_per_dump(16), 4);
        assert_eq!(FileMode::Mif(100).files_per_dump(16), 16);
        assert_eq!(FileMode::Sif.files_per_dump(16), 1);
    }

    #[test]
    fn fractional_parts_distribution() {
        let cfg = MacsioConfig {
            avg_num_parts: 2.5,
            nprocs: 4,
            ..Default::default()
        };
        // 2.5 * 4 = 10 parts: ranks 0,1 get 3; ranks 2,3 get 2.
        assert_eq!(cfg.parts_of_rank(0), 3);
        assert_eq!(cfg.parts_of_rank(1), 3);
        assert_eq!(cfg.parts_of_rank(2), 2);
        assert_eq!(cfg.parts_of_rank(3), 2);
        assert_eq!(cfg.total_parts(), 10);
    }

    #[test]
    fn whole_parts_distribution() {
        let cfg = MacsioConfig {
            avg_num_parts: 1.0,
            nprocs: 8,
            ..Default::default()
        };
        assert!((0..8).all(|r| cfg.parts_of_rank(r) == 1));
    }

    #[test]
    fn growth_compounds() {
        let cfg = MacsioConfig {
            part_size: 1000,
            dataset_growth: 1.1,
            ..Default::default()
        };
        assert_eq!(cfg.grown_part_size(0), 1000);
        assert_eq!(cfg.grown_part_size(1), 1100);
        assert_eq!(cfg.grown_part_size(2), 1210);
    }

    #[test]
    fn command_line_round_trips_the_paper_listing() {
        let cfg = MacsioConfig {
            nprocs: 32,
            part_size: 1_550_000,
            num_dumps: 10,
            dataset_growth: 1.013075,
            ..Default::default()
        };
        let cl = cfg.command_line();
        assert!(cl.contains("jsrun -n 32"));
        assert!(cl.contains("--parallel_file_mode MIF 32"));
        assert!(cl.contains("--part_size 1550000"));
        assert!(cl.contains("--dataset_growth 1.013075"));
    }

    #[test]
    #[should_panic(expected = "part_size")]
    fn zero_part_size_rejected() {
        MacsioConfig {
            part_size: 0,
            ..Default::default()
        }
        .validate();
    }
}
