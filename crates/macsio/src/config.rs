//! MACSio run configuration: the command-line surface of Table II.

use io_engine::{BackendSpec, CodecSpec, ReadSelection, Scenario};
use serde::{Deserialize, Serialize};

/// Output interface (MACSio `--interface`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interface {
    /// The `miftmpl` template interface: JSON object header with the bulk
    /// variable data appended as raw little-endian doubles (size-faithful
    /// to the nominal request size; see DESIGN.md on the substitution for
    /// json-cwx).
    Miftmpl,
    /// Pure-text JSON: every value formatted as text. Inflates bytes per
    /// value; used by the format-expansion ablation.
    Json,
}

impl Interface {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "miftmpl" | "json_binary" => Ok(Self::Miftmpl),
            "json" | "json_text" => Ok(Self::Json),
            other => Err(format!(
                "unknown interface '{other}' (expected miftmpl or json)"
            )),
        }
    }

    /// CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Miftmpl => "miftmpl",
            Self::Json => "json",
        }
    }
}

/// Parallel file mode (MACSio `--parallel_file_mode`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FileMode {
    /// Multiple Independent Files over `n` file groups; ranks in a group
    /// take turns (baton passing) appending to the group's file. With
    /// `n == nprocs` this is the paper's N-to-N pattern.
    Mif(usize),
    /// Single shared file per dump.
    Sif,
}

impl FileMode {
    /// The "one file group per rank" MIF mode (the paper's N-to-N
    /// pattern): the group count clamps to `nprocs` at run time.
    pub fn n_to_n() -> Self {
        FileMode::Mif(usize::MAX)
    }

    /// A MIF mode with a *normalized* group count: zero (a count MACSio
    /// itself rejects) becomes one group rather than a runtime surprise.
    pub fn mif(n: usize) -> Self {
        FileMode::Mif(n.max(1))
    }

    /// Number of files per dump for a world of `nprocs` ranks.
    pub fn files_per_dump(&self, nprocs: usize) -> usize {
        match self {
            FileMode::Mif(n) => (*n).min(nprocs).max(1),
            FileMode::Sif => 1,
        }
    }
}

// Hand-written serde: the default mode is `Mif(usize::MAX)` ("as many
// groups as ranks"), and serializing the raw sentinel would bake a
// platform-dependent integer into configs. The sentinel round-trips as
// the symbolic string `"MifAll"` instead.
impl Serialize for FileMode {
    fn to_value(&self) -> serde::Value {
        match self {
            FileMode::Sif => serde::Value::String("Sif".to_string()),
            FileMode::Mif(n) if *n == usize::MAX => serde::Value::String("MifAll".to_string()),
            FileMode::Mif(n) => {
                serde::Value::Object(vec![("Mif".to_string(), serde::Serialize::to_value(n))])
            }
        }
    }
}

impl Deserialize for FileMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(s) = v.as_str() {
            return match s {
                "Sif" => Ok(FileMode::Sif),
                "MifAll" => Ok(FileMode::n_to_n()),
                other => Err(serde::Error::custom(format!("unknown file mode '{other}'"))),
            };
        }
        if let Some(n) = v.get("Mif").and_then(serde::Value::as_u64) {
            return Ok(FileMode::mif(n as usize));
        }
        Err(serde::Error::custom("expected FileMode"))
    }
}

/// What a run does with its dumps (`--mode`): write them (the paper's
/// original proxy behaviour), write then restart-read the last dump, or
/// write then read every dump back (post-hoc analysis).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Write-only (default; the original proxy workload).
    #[default]
    Write,
    /// Write all dumps, then read the *last* dump back — the restart
    /// phase that dominates recovery time at scale.
    Restart,
    /// Write all dumps, then read *every* dump back (`wr`).
    WriteRead,
}

impl RunMode {
    /// Parses the CLI spelling: `write` | `restart` | `wr`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "write" | "w" => Ok(Self::Write),
            "restart" => Ok(Self::Restart),
            "wr" | "write_read" => Ok(Self::WriteRead),
            other => Err(format!(
                "unknown mode '{other}' (expected write, restart, or wr)"
            )),
        }
    }

    /// The canonical CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Write => "write",
            Self::Restart => "restart",
            Self::WriteRead => "wr",
        }
    }

    /// True when the run reads dumps back after writing.
    pub fn reads(&self) -> bool {
        !matches!(self, Self::Write)
    }
}

/// Full MACSio configuration (Table II plus the execution context).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MacsioConfig {
    /// Output interface (`--interface`).
    pub interface: Interface,
    /// File mode (`--parallel_file_mode MIF n | SIF`).
    pub parallel_file_mode: FileMode,
    /// Number of dumps to marshal (`--num_dumps`).
    pub num_dumps: u32,
    /// Nominal bytes of one variable on one mesh part (`--part_size`).
    pub part_size: u64,
    /// Average mesh parts per task (`--avg_num_parts`); fractional values
    /// give some ranks one extra part.
    pub avg_num_parts: f64,
    /// Variables per part (`--vars_per_part`).
    pub vars_per_part: usize,
    /// Simulated compute seconds between dumps (`--compute_time`).
    pub compute_time: f64,
    /// Additional metadata bytes per task per dump (`--meta_size`).
    pub meta_size: u64,
    /// Per-dump growth multiplier on the part size (`--dataset_growth`).
    pub dataset_growth: f64,
    /// MPI world size (`jsrun -n nprocs`).
    pub nprocs: usize,
    /// RNG seed for synthetic field data.
    pub seed: u64,
    /// I/O backend the dumps write through (`--io_backend`).
    pub io_backend: BackendSpec,
    /// In-situ compression codec applied to data puts (`--compression`).
    pub compression: CodecSpec,
    /// Write-only, restart, or write+read-back behaviour (`--mode`).
    pub mode: RunMode,
    /// What the read phase fetches (`--read_pattern`): the whole dump
    /// (default), one level (always 0 for MACSio's flat meshes), one
    /// field (path substring), or a `(level, task)` key box. Applies to
    /// the reads of `--mode restart|wr` and of a scenario's trailing
    /// `restart`/`readall` ops.
    pub read_pattern: ReadSelection,
    /// The run's workload program (`--scenario`): how dumps, mid-run
    /// failures/restarts, and analysis reads interleave. `None` compiles
    /// [`MacsioConfig::mode`] into its equivalent scenario (`write`,
    /// `write;restart`, `write;readall`), so `--mode` keeps working
    /// bit-identically. MACSio's flat dump stream has no checkpoint or
    /// reorganization plane, so `check@` ops and `,reorg` analysis
    /// suffixes are rejected at run time.
    pub scenario: Option<Scenario>,
}

impl Default for MacsioConfig {
    fn default() -> Self {
        Self {
            interface: Interface::Miftmpl,
            parallel_file_mode: FileMode::n_to_n(),
            num_dumps: 10,
            part_size: 80_000,
            avg_num_parts: 1.0,
            vars_per_part: 1,
            compute_time: 0.0,
            meta_size: 0,
            dataset_growth: 1.0,
            nprocs: 1,
            seed: 0x4D_41_43, // "MAC"
            io_backend: BackendSpec::default(),
            compression: CodecSpec::default(),
            mode: RunMode::default(),
            read_pattern: ReadSelection::default(),
            scenario: None,
        }
    }
}

impl MacsioConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive sizes, growth, or process count.
    pub fn validate(&self) {
        assert!(self.nprocs > 0, "MacsioConfig: nprocs must be positive");
        assert!(
            self.part_size > 0,
            "MacsioConfig: part_size must be positive"
        );
        assert!(
            self.avg_num_parts > 0.0,
            "MacsioConfig: avg_num_parts must be positive"
        );
        assert!(
            self.vars_per_part > 0,
            "MacsioConfig: vars_per_part must be positive"
        );
        assert!(
            self.dataset_growth > 0.0,
            "MacsioConfig: dataset_growth must be positive"
        );
        assert!(
            self.compute_time >= 0.0,
            "MacsioConfig: compute_time must be non-negative"
        );
    }

    /// Parts assigned to `rank`: `floor(avg)` everywhere plus one extra on
    /// the first `round((avg - floor(avg)) * nprocs)` ranks.
    pub fn parts_of_rank(&self, rank: usize) -> usize {
        let base = self.avg_num_parts.floor() as usize;
        let extra_ranks =
            ((self.avg_num_parts - base as f64) * self.nprocs as f64).round() as usize;
        base + usize::from(rank < extra_ranks)
    }

    /// Total parts across the world.
    pub fn total_parts(&self) -> usize {
        (0..self.nprocs).map(|r| self.parts_of_rank(r)).sum()
    }

    /// Nominal bytes of one variable at dump `k` (0-based) after growth.
    pub fn grown_part_size(&self, dump: u32) -> u64 {
        (self.part_size as f64 * self.dataset_growth.powi(dump as i32)).round() as u64
    }

    /// The equivalent `macsio` command line (for reports and job scripts).
    /// The backend selector is appended only when it differs from the
    /// default N-to-N path, keeping the paper's Listing 1 shape intact.
    pub fn command_line(&self) -> String {
        let mode = match self.parallel_file_mode {
            FileMode::Mif(n) => format!("MIF {}", n.min(self.nprocs)),
            FileMode::Sif => "SIF".to_string(),
        };
        let mut line = format!(
            "jsrun -n {} macsio --interface {} --parallel_file_mode {} --num_dumps {} \
             --part_size {} --avg_num_parts {} --vars_per_part {} --compute_time {} \
             --meta_size {} --dataset_growth {}",
            self.nprocs,
            self.interface.name(),
            mode,
            self.num_dumps,
            self.part_size,
            self.avg_num_parts,
            self.vars_per_part,
            self.compute_time,
            self.meta_size,
            self.dataset_growth
        );
        if self.io_backend != BackendSpec::default() {
            line.push_str(&format!(" --io_backend {}", self.io_backend.name()));
        }
        if self.compression != CodecSpec::default() {
            line.push_str(&format!(" --compression {}", self.compression.name()));
        }
        if self.mode != RunMode::default() {
            line.push_str(&format!(" --mode {}", self.mode.name()));
        }
        if self.read_pattern != ReadSelection::default() {
            line.push_str(&format!(" --read_pattern {}", self.read_pattern.name()));
        }
        if let Some(scenario) = &self.scenario {
            line.push_str(&format!(" --scenario {}", scenario.name()));
        }
        line
    }

    /// The scenario this run executes: [`MacsioConfig::scenario`] when
    /// set, otherwise [`MacsioConfig::mode`] compiled into its
    /// equivalent program (`write`, `write;restart`, `write;readall`).
    pub fn effective_scenario(&self) -> Scenario {
        if let Some(s) = &self.scenario {
            return s.clone();
        }
        match self.mode {
            RunMode::Write => Scenario::write_only(),
            RunMode::Restart => Scenario::write_restart(),
            RunMode::WriteRead => Scenario {
                ops: vec![io_engine::ScenarioOp::Write, io_engine::ScenarioOp::ReadAll],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_parsing() {
        assert_eq!(Interface::parse("miftmpl").unwrap(), Interface::Miftmpl);
        assert_eq!(Interface::parse("json").unwrap(), Interface::Json);
        assert!(Interface::parse("silo").is_err());
    }

    #[test]
    fn file_mode_counts() {
        assert_eq!(FileMode::Mif(4).files_per_dump(16), 4);
        assert_eq!(FileMode::Mif(100).files_per_dump(16), 16);
        assert_eq!(FileMode::Sif.files_per_dump(16), 1);
    }

    #[test]
    fn fractional_parts_distribution() {
        let cfg = MacsioConfig {
            avg_num_parts: 2.5,
            nprocs: 4,
            ..Default::default()
        };
        // 2.5 * 4 = 10 parts: ranks 0,1 get 3; ranks 2,3 get 2.
        assert_eq!(cfg.parts_of_rank(0), 3);
        assert_eq!(cfg.parts_of_rank(1), 3);
        assert_eq!(cfg.parts_of_rank(2), 2);
        assert_eq!(cfg.parts_of_rank(3), 2);
        assert_eq!(cfg.total_parts(), 10);
    }

    #[test]
    fn whole_parts_distribution() {
        let cfg = MacsioConfig {
            avg_num_parts: 1.0,
            nprocs: 8,
            ..Default::default()
        };
        assert!((0..8).all(|r| cfg.parts_of_rank(r) == 1));
    }

    #[test]
    fn growth_compounds() {
        let cfg = MacsioConfig {
            part_size: 1000,
            dataset_growth: 1.1,
            ..Default::default()
        };
        assert_eq!(cfg.grown_part_size(0), 1000);
        assert_eq!(cfg.grown_part_size(1), 1100);
        assert_eq!(cfg.grown_part_size(2), 1210);
    }

    #[test]
    fn command_line_round_trips_the_paper_listing() {
        let cfg = MacsioConfig {
            nprocs: 32,
            part_size: 1_550_000,
            num_dumps: 10,
            dataset_growth: 1.013075,
            ..Default::default()
        };
        let cl = cfg.command_line();
        assert!(cl.contains("jsrun -n 32"));
        assert!(cl.contains("--parallel_file_mode MIF 32"));
        assert!(cl.contains("--part_size 1550000"));
        assert!(cl.contains("--dataset_growth 1.013075"));
    }

    #[test]
    fn file_mode_serde_round_trip_is_portable() {
        use serde::{Deserialize as _, Serialize as _};
        // The default N-to-N sentinel must not serialize a raw usize::MAX.
        let default_mode = MacsioConfig::default().parallel_file_mode;
        let v = default_mode.to_value();
        assert_eq!(v.as_str(), Some("MifAll"), "symbolic, platform-portable");
        assert_eq!(FileMode::from_value(&v).unwrap(), default_mode);
        // Finite group counts and SIF round-trip exactly.
        for mode in [FileMode::Mif(7), FileMode::Sif] {
            assert_eq!(FileMode::from_value(&mode.to_value()).unwrap(), mode);
        }
    }

    #[test]
    fn default_config_serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        let cfg = MacsioConfig::default();
        let back = MacsioConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn mif_zero_normalizes_to_one() {
        assert_eq!(FileMode::mif(0), FileMode::Mif(1));
        assert_eq!(FileMode::mif(5), FileMode::Mif(5));
        // Deserializing a zero count also normalizes.
        use serde::Deserialize as _;
        let v = serde::Value::Object(vec![(
            "Mif".to_string(),
            serde::Value::Number(serde::Number::PosInt(0)),
        )]);
        assert_eq!(FileMode::from_value(&v).unwrap(), FileMode::Mif(1));
    }

    #[test]
    fn command_line_names_non_default_backend() {
        let mut cfg = MacsioConfig::default();
        assert!(!cfg.command_line().contains("--io_backend"));
        cfg.io_backend = BackendSpec::Aggregated(8);
        assert!(cfg.command_line().contains("--io_backend agg:8"));
    }

    #[test]
    fn command_line_names_non_default_codec() {
        let mut cfg = MacsioConfig::default();
        assert!(!cfg.command_line().contains("--compression"));
        cfg.compression = CodecSpec::LossyQuant(8);
        assert!(cfg.command_line().contains("--compression quant:8"));
    }

    #[test]
    fn run_mode_spellings_round_trip() {
        assert_eq!(RunMode::parse("write").unwrap(), RunMode::Write);
        assert_eq!(RunMode::parse("restart").unwrap(), RunMode::Restart);
        assert_eq!(RunMode::parse("wr").unwrap(), RunMode::WriteRead);
        assert!(RunMode::parse("read").is_err());
        for m in [RunMode::Write, RunMode::Restart, RunMode::WriteRead] {
            assert_eq!(RunMode::parse(m.name()).unwrap(), m);
        }
        assert!(!RunMode::Write.reads());
        assert!(RunMode::Restart.reads());
        assert!(RunMode::WriteRead.reads());
    }

    #[test]
    fn command_line_names_non_default_mode() {
        let mut cfg = MacsioConfig::default();
        assert!(!cfg.command_line().contains("--mode"));
        cfg.mode = RunMode::Restart;
        assert!(cfg.command_line().contains("--mode restart"));
    }

    #[test]
    fn command_line_names_non_default_read_pattern() {
        let mut cfg = MacsioConfig::default();
        assert!(!cfg.command_line().contains("--read_pattern"));
        cfg.mode = RunMode::Restart;
        cfg.read_pattern = ReadSelection::Field("macsio_json_00000".into());
        assert!(cfg
            .command_line()
            .contains("--read_pattern field:macsio_json_00000"));
    }

    #[test]
    fn modes_compile_to_scenarios_and_explicit_wins() {
        let mut cfg = MacsioConfig::default();
        assert_eq!(cfg.effective_scenario().name(), "write");
        cfg.mode = RunMode::Restart;
        assert_eq!(cfg.effective_scenario().name(), "write;restart");
        cfg.mode = RunMode::WriteRead;
        assert_eq!(cfg.effective_scenario().name(), "write;readall");
        cfg.scenario = Some(Scenario::fail_restart(2));
        assert_eq!(cfg.effective_scenario().name(), "write;fail@2;restart");
    }

    #[test]
    fn command_line_names_non_default_scenario() {
        let mut cfg = MacsioConfig::default();
        assert!(!cfg.command_line().contains("--scenario"));
        cfg.scenario = Some(Scenario::fail_restart(3));
        assert!(cfg
            .command_line()
            .contains("--scenario write;fail@3;restart"));
    }

    #[test]
    fn config_with_scenario_round_trips_serde() {
        use serde::{Deserialize as _, Serialize as _};
        let cfg = MacsioConfig {
            scenario: Some(Scenario::parse("write;analyze_every:2:field:root").unwrap()),
            ..Default::default()
        };
        let back = MacsioConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    #[should_panic(expected = "part_size")]
    fn zero_part_size_rejected() {
        MacsioConfig {
            part_size: 0,
            ..Default::default()
        }
        .validate();
    }
}
